//! Offline shim of `serde`.
//!
//! This workspace builds without network access, so the real serde cannot be
//! fetched. The code in this repository only ever serializes through
//! `serde_json`, which lets the shim collapse serde's data-model machinery
//! into a single owned JSON tree ([`Json`]) plus two object-safe-free traits:
//!
//! * [`Serialize`] — convert `self` into a [`Json`] tree;
//! * [`Deserialize`] — reconstruct `Self` from a [`Json`] tree.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the in-tree `serde_derive`
//! shim and targets these traits. The encoding follows real serde's JSON
//! conventions (structs as objects, unit variants as strings, data-carrying
//! variants as single-key objects) so output remains human-readable, but
//! cross-version compatibility with real serde is explicitly not a goal —
//! everything written by this shim is read back by it.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An owned JSON value.
///
/// Numbers keep three representations so that every integer width used in
/// the workspace (up to `u128`) round-trips exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Uint(u128),
    Float(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by deserialization (and by serialization of non-finite
/// floats, the one value JSON cannot represent).
#[derive(Debug, Clone)]
pub struct JsonError(String);

impl JsonError {
    pub fn msg(m: &str) -> Self {
        JsonError(m.to_string())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

pub trait Serialize {
    fn serialize_json(&self) -> Json;
}

pub trait Deserialize: Sized {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError>;
}

pub mod de {
    //! Mirror of `serde::de` for the one item the workspace imports from it.
    //!
    //! The shim's [`Deserialize`](crate::Deserialize) produces owned values,
    //! so `DeserializeOwned` is simply the same trait under serde's name.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Looks up `name` in a JSON object and deserializes it; used by the derive
/// macro for struct fields.
pub fn get_field<T: Deserialize>(fields: &[(String, Json)], name: &str) -> Result<T, JsonError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize_json(v),
        None => Err(JsonError(format!("missing field `{name}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self) -> Json {
        (**self).serialize_json()
    }
}

impl Serialize for bool {
    fn serialize_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::msg("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
                let n: i128 = match j {
                    Json::Int(n) => *n,
                    Json::Uint(n) => i128::try_from(*n)
                        .map_err(|_| JsonError::msg("integer out of range"))?,
                    _ => return Err(JsonError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| JsonError::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Json {
                Json::Uint(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
                let n: u128 = match j {
                    Json::Uint(n) => *n,
                    Json::Int(n) => u128::try_from(*n)
                        .map_err(|_| JsonError::msg("integer out of range"))?,
                    _ => return Err(JsonError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| JsonError::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, i128, isize);
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Json {
                Json::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
                match j {
                    Json::Float(f) => Ok(*f as $t),
                    Json::Int(n) => Ok(*n as $t),
                    Json::Uint(n) => Ok(*n as $t),
                    _ => Err(JsonError::msg("expected number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::String(s) => Ok(s.clone()),
            _ => Err(JsonError::msg("expected string")),
        }
    }
}

impl Serialize for char {
    fn serialize_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(JsonError::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Array(a) => a.iter().map(T::deserialize_json).collect(),
            _ => Err(JsonError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self) -> Json {
        match self {
            Some(v) => v.serialize_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self) -> Json {
        (**self).serialize_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        T::deserialize_json(j).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_json(&self) -> Json {
        (**self).serialize_json()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        T::deserialize_json(j).map(std::sync::Arc::new)
    }
}

impl Serialize for std::time::Duration {
    fn serialize_json(&self) -> Json {
        // Real serde's encoding: an object with whole seconds and the
        // sub-second nanosecond remainder.
        Json::Object(vec![
            ("secs".to_string(), Json::Uint(self.as_secs() as u128)),
            ("nanos".to_string(), Json::Uint(self.subsec_nanos() as u128)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_json(j: &Json) -> Result<Self, JsonError> {
        let fields = j.as_object().ok_or_else(|| JsonError::msg("expected object for Duration"))?;
        let secs: u64 = get_field(fields, "secs")?;
        let nanos: u32 = get_field(fields, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
