//! Offline shim of `proptest`.
//!
//! A deterministic random-testing harness exposing the subset of proptest
//! this workspace uses: the `proptest!` macro, `Strategy` with `prop_map`,
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `prop::collection::vec`, `Just`, `prop_oneof!` and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   reported by the ordinary assertion message;
//! * cases are generated from a fixed per-test seed (derived from the test's
//!   module path and name), so runs are reproducible without a regressions
//!   file. Set `PROPTEST_CASES` to override the default of 64 cases.

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs (env `PROPTEST_CASES`,
/// default 64 — deliberately lower than real proptest's 256 to keep the
/// whole suite fast).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// The RNG driving generation: xoshiro256++ seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Deterministic seed from a test identifier (FNV-1a over the name).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, span)`.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].gen(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Runs each test body against `cases()` generated inputs. `#[test]` (and
/// doc comments) written inside the macro are re-emitted onto the generated
/// zero-argument test function, exactly as real proptest does.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..$crate::cases() {
                let _ = case;
                $(let $parm = $crate::Strategy::gen(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Uniformly picks one of the listed strategies per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges, tuples, vec and map compose; all values respect bounds.
        #[test]
        fn composed_strategies_respect_bounds(
            x in -50i64..50,
            (a, b) in (0usize..4, prop::collection::vec(any::<u8>(), 1..5)),
            s in prop_oneof![Just(1u8), Just(2u8)],
            y in prop::collection::vec(-10i64..10, 0..8).prop_map(|v| v.len()),
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(a < 4);
            prop_assert!(!b.is_empty() && b.len() < 5);
            prop_assert!(s == 1 || s == 2);
            prop_assert!(y < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("some::test");
        let mut b = crate::TestRng::deterministic("some::test");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
