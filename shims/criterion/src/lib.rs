//! Offline shim of `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, the
//! `Criterion` builder, benchmark groups, `BenchmarkId` and `black_box`, so
//! the workspace's benches compile and run under `cargo bench` without the
//! real crate. Measurement is deliberately simple: after a short warm-up,
//! each benchmark closure is timed in batches for a bounded interval and the
//! best batch's mean ns/iteration is printed. There is no statistical
//! analysis, plotting, or HTML report — this harness answers "did the bench
//! link and roughly how fast is it", not "is this a significant regression".

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into().0, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &label, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    /// (iterations, elapsed) per measured batch.
    samples: Vec<(u64, Duration)>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        let batch_budget =
            self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch_iters = (batch_budget / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            self.samples.push((batch_iters, start.elapsed()));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        // Cap the configured times so a full `cargo bench` stays quick even
        // with real-criterion-sized configs like 2 s per measurement.
        warm_up_time: config.warm_up_time.min(Duration::from_millis(100)),
        measurement_time: config.measurement_time.min(Duration::from_millis(300)),
        sample_size: config.sample_size.min(10),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<45} (no samples)");
        return;
    }
    let best = bencher
        .samples
        .iter()
        .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
        .fold(f64::INFINITY, f64::min);
    let total: u64 = bencher.samples.iter().map(|(i, _)| i).sum();
    println!("{label:<45} {best:>12.1} ns/iter (best of {} batches, {total} iters)",
        bencher.samples.len());
}

/// `criterion_group!(name = g; config = …; targets = a, b)` or
/// `criterion_group!(g, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| count += 1));
        assert!(count > 0, "the benchmark closure must have been executed");

        let mut group = c.benchmark_group("group");
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
