//! Offline shim of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and poisoning
//! is transparently swallowed — a panicked critical section does not poison
//! the lock for everyone else, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take ownership of the std
    // guard (std's wait consumes and returns it).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: Some(e.into_inner()) }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guarded mutex and blocks until notified,
    /// reacquiring the lock before returning (parking_lot signature: the
    /// guard is updated in place rather than consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already taken");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate_threads() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut g = m.lock();
                while *g < 3 {
                    cv.wait(&mut g);
                }
                *g
            })
        };
        for _ in 0..3 {
            let (m, cv) = &*pair;
            *m.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }

    #[test]
    fn poisoned_lock_is_still_usable() {
        let m = Arc::new(Mutex::new(5i32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(7u8);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
