//! Offline shim of `rand` (0.8-style call surface).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, seeded via SplitMix64 exactly
//! like the real `SmallRng`'s quality expectations), the [`Rng`] extension
//! methods used in this workspace (`gen`, `gen_range`, `gen_bool`) and
//! [`SeedableRng::seed_from_u64`]. Distributions are uniform; integer ranges
//! use 64-bit rejection-free sampling via widening multiply, which is
//! bias-free for the range sizes used here for all practical purposes.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's stand-in
/// for `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, producing a `T`. Generic over the
/// element type (like the real `SampleRange<T>`) so that integer literals in
/// a range adopt the type expected at the call site.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply reduction.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Mirror of `rand::SeedableRng`, reduced to the one constructor in use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_by_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = rng.gen_range(-1i64..=5);
            assert!((-1..=5).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
