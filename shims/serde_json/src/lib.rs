//! Offline shim of `serde_json`.
//!
//! Implements the five entry points the workspace uses (`to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`) over the in-tree
//! serde shim's [`Json`] tree. The emitted text is ordinary JSON; the parser
//! accepts the full JSON grammar (escapes, exponents, big integers) so that
//! anything this crate writes — and hand-edited result files — read back.

pub use serde::{Json as Value, JsonError as Error};
use serde::{Deserialize, Json, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    // JSON has no NaN/Infinity; emit null like the real serde_json does.
    if !f.is_finite() {
        return "null".to_string();
    }
    // `{:?}` prints the shortest representation that round-trips; ensure the
    // output still looks like a JSON number (Debug prints `1.0` for integral
    // floats and `1e300` for large ones, both of which are valid JSON).
    format!("{f:?}")
}

fn write_json(j: &Json, pretty: bool, indent: usize, out: &mut String) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Uint(n) => out.push_str(&n.to_string()),
        Json::Float(f) => out.push_str(&float_repr(*f)),
        Json::String(s) => escape_into(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_json(item, pretty, indent + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_json(v, pretty, indent + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&value.serialize_json(), false, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_json(&value.serialize_json(), true, 0, &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::msg(&format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            self.pos -= 1; // compensate for the += 1 below
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
        } else if let Some(rest) = text.strip_prefix('-') {
            let _ = rest;
            text.parse::<i128>().map(Json::Int).map_err(|_| self.err("integer overflow"))
        } else {
            text.parse::<u128>().map(Json::Uint).map_err(|_| self.err("integer overflow"))
        }
    }
}

/// Parses `text` into the shim's JSON tree (`serde_json::Value`).
pub fn parse(text: &str) -> Result<Json> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    T::deserialize_json(&parse(text)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::msg("input is not utf-8"))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_floats_emit_null() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            write_json(&Json::Float(f), false, 0, &mut out);
            assert_eq!(out, "null");
            assert_eq!(parse(&out).unwrap(), Json::Null);
        }
    }

    #[test]
    fn roundtrip_scalars() {
        for (json, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Int(-7), "-7"),
            (Json::Uint(u128::MAX), &u128::MAX.to_string()),
            (Json::String("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            let mut out = String::new();
            write_json(&json, false, 0, &mut out);
            assert_eq!(out, text);
            assert_eq!(parse(&out).unwrap(), json);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::Object(vec![
            // Note: non-negative integers parse back as `Uint`, so use a
            // negative one to keep the raw-tree comparison representation-stable.
            ("xs".into(), Json::Array(vec![Json::Int(-1), Json::Float(2.5)])),
            ("s".into(), Json::String("hé\u{1F600}".into())),
        ]);
        for text in [to_string(&Shim(v.clone())).unwrap(), {
            let mut out = String::new();
            write_json(&v, true, 0, &mut out);
            out
        }] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    /// Wrapper to feed a raw tree through the Serialize-based API.
    struct Shim(Json);
    impl Serialize for Shim {
        fn serialize_json(&self) -> Json {
            self.0.clone()
        }
    }
}
