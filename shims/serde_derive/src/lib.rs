//! Offline shim of `serde_derive`.
//!
//! Generates implementations of the in-tree `serde` shim's `Serialize` /
//! `Deserialize` traits (which map values to and from an owned JSON tree)
//! for the type shapes this workspace actually uses: structs with named
//! fields, tuple structs, and enums with unit, newtype, tuple and
//! struct-like variants. Generics and `#[serde(...)]` attributes are not
//! supported; hitting either is a compile error rather than silent
//! misbehaviour.
//!
//! The implementation parses the raw `proc_macro::TokenStream` by hand —
//! `syn`/`quote` are unavailable offline — and emits code by formatting
//! strings and re-parsing them, which is entirely adequate for the small
//! grammar involved.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Splits a token stream on top-level commas, treating `<…>` nesting as one
/// level so types like `HashMap<K, V>` do not split a field in half.
fn split_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i64;
    for tt in ts {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    if parts.last().map(|p| p.is_empty()).unwrap_or(false) {
        parts.pop();
    }
    parts
}

/// Consumes leading attributes (`#[…]`) and a visibility (`pub`,
/// `pub(crate)`, …) from the front of a token slice, returning the rest.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' then [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

fn named_field_names(body: TokenStream) -> Vec<String> {
    split_commas(body)
        .iter()
        .map(|part| {
            let rest = skip_attrs_and_vis(part);
            match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = skip_attrs_and_vis(&tokens);
    let mut it = rest.iter();
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    let next = it.next();
    if let Some(TokenTree::Punct(p)) = next {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type {name})");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match next {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_commas(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match next {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: unexpected enum body {other:?}"),
            };
            let variants = split_commas(body)
                .iter()
                .map(|part| {
                    let rest = skip_attrs_and_vis(part);
                    let vname = match rest.first() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde shim derive: expected variant name, got {other:?}"),
                    };
                    let fields = match rest.get(1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Fields::Tuple(split_commas(g.stream()).len())
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Fields::Named(named_field_names(g.stream()))
                        }
                        // `Variant` or `Variant = discriminant`.
                        _ => Fields::Unit,
                    };
                    (vname, fields)
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for a `{other}` item"),
    }
}

fn gen_serialize_fields_obj(receiver: &str, names: &[String]) -> String {
    let mut s = String::from("{ let mut obj: Vec<(String, ::serde::Json)> = Vec::new(); ");
    for f in names {
        s.push_str(&format!(
            "obj.push((\"{f}\".to_string(), ::serde::Serialize::serialize_json(&{receiver}{f}))); "
        ));
    }
    s.push_str("::serde::Json::Object(obj) }");
    s
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let expr = match &fields {
                Fields::Unit => "::serde::Json::Null".to_string(),
                Fields::Named(names) => gen_serialize_fields_obj("self.", names),
                Fields::Tuple(1) => "::serde::Serialize::serialize_json(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_json(&self.{i})"))
                        .collect();
                    format!("::serde::Json::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn serialize_json(&self) -> ::serde::Json {{ {expr} }}\n                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Json::String(\"{v}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => ::serde::Json::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::serialize_json(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Json::Object(vec![(\"{v}\".to_string(), ::serde::Json::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let mut inner = String::from(
                            "{ let mut obj: Vec<(String, ::serde::Json)> = Vec::new(); ",
                        );
                        for f in names {
                            inner.push_str(&format!(
                                "obj.push((\"{f}\".to_string(), ::serde::Serialize::serialize_json({f}))); "
                            ));
                        }
                        inner.push_str("::serde::Json::Object(obj) }");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Json::Object(vec![(\"{v}\".to_string(), {inner})]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn serialize_json(&self) -> ::serde::Json {{ match self {{ {arms} }} }}\n                }}"
            )
        }
    };
    body.parse().expect("serde shim derive: generated Serialize impl must parse")
}

fn gen_deserialize_named(path: &str, names: &[String]) -> String {
    let inits: Vec<String> =
        names.iter().map(|f| format!("{f}: ::serde::get_field(fields, \"{f}\")?")).collect();
    format!(
        "{{ let fields = inner.as_object().ok_or_else(|| ::serde::JsonError::msg(\"expected object for {path}\"))?; Ok({path} {{ {} }}) }}",
        inits.join(", ")
    )
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let expr = match &fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(names) => {
                    let inner = gen_deserialize_named(&name, names);
                    format!("{{ let inner = j; {inner} }}")
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize_json(j)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::deserialize_json(arr.get({i}).ok_or_else(|| ::serde::JsonError::msg(\"missing tuple element\"))?)?")
                        })
                        .collect();
                    format!(
                        "{{ let arr = j.as_array().ok_or_else(|| ::serde::JsonError::msg(\"expected array for {name}\"))?; Ok({name}({})) }}",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn deserialize_json(j: &::serde::Json) -> ::core::result::Result<Self, ::serde::JsonError> {{ {expr} }}\n                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    Fields::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n")),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize_json(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_json(arr.get({i}).ok_or_else(|| ::serde::JsonError::msg(\"missing tuple element\"))?)?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let arr = inner.as_array().ok_or_else(|| ::serde::JsonError::msg(\"expected array for {name}::{v}\"))?; Ok({name}::{v}({})) }},\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let inner = gen_deserialize_named(&format!("{name}::{v}"), names);
                        tagged_arms.push_str(&format!("\"{v}\" => {inner},\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn deserialize_json(j: &::serde::Json) -> ::core::result::Result<Self, ::serde::JsonError> {{\n                        match j {{\n                            ::serde::Json::String(s) => match s.as_str() {{\n                                {unit_arms}\n                                other => Err(::serde::JsonError::msg(&format!(\"unknown variant {{other}} for {name}\"))),\n                            }},\n                            ::serde::Json::Object(o) if o.len() == 1 => {{\n                                let (tag, inner) = &o[0];\n                                let _ = inner;\n                                match tag.as_str() {{\n                                    {tagged_arms}\n                                    other => Err(::serde::JsonError::msg(&format!(\"unknown variant {{other}} for {name}\"))),\n                                }}\n                            }}\n                            _ => Err(::serde::JsonError::msg(\"expected string or single-key object for enum {name}\")),\n                        }}\n                    }}\n                }}"
            )
        }
    };
    body.parse().expect("serde shim derive: generated Deserialize impl must parse")
}
