//! Offline shim of `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer. The real crate
//! uses a custom vtable to avoid atomics for static data; this shim gets the
//! same O(1)-clone semantics from a two-variant representation: static
//! borrows stay pointers, owned data lives behind an `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Owned(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer. Does not allocate.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Owned(Arc::from(data)))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Owned(a) => a,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print like a byte-string literal, as the real crate does.
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Owned(Arc::from(v)))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes(Repr::Owned(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl serde::Serialize for Bytes {
    fn serialize_json(&self) -> serde::Json {
        serde::Json::Array(self.as_slice().iter().map(|b| serde::Json::Uint(*b as u128)).collect())
    }
}

impl serde::Deserialize for Bytes {
    fn deserialize_json(j: &serde::Json) -> Result<Self, serde::JsonError> {
        let v: Vec<u8> = serde::Deserialize::deserialize_json(j)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[..], b"abc");
    }

    #[test]
    fn clone_is_shallow_for_owned() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn debug_prints_byte_literal() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\"\n")), r#"b"a\"\n""#);
    }
}
