//! Offline shim of the `mio` crate: a thin, safe wrapper around Linux epoll.
//!
//! This workspace builds with no network access, so instead of the real
//! `mio` this crate hand-rolls the small subset of its API that
//! `doppel_service`'s reactor front-end needs: [`Poll`] / [`Registry`] for
//! readiness registration, [`Events`] / [`Event`] for the wait results,
//! [`Token`] to name registrations, [`Interest`] to pick directions, and an
//! eventfd-backed [`Waker`] for cross-thread wakeups.
//!
//! The syscall layer is declared directly against the C library (which every
//! Linux Rust binary already links) — no external crate is required. All
//! registrations are level-triggered, matching the reactor's
//! "drain-until-`WouldBlock`" structure; the waker's eventfd is the one
//! edge-triggered registration, so it never needs draining.

#[cfg(not(target_os = "linux"))]
compile_error!("the mio shim is Linux-only (epoll); gate reactor use on target_os = \"linux\"");

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

// ------------------------------------------------------------- syscall layer

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it;
/// other architectures use natural alignment (glibc's `__EPOLL_PACKED`).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------- public API

/// Names one registration; echoed back in every [`Event`] for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable readiness (includes peer hang-up, so a closed connection
    /// surfaces as a readable event whose `read` returns 0).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Writable readiness.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Combines two interests (mio's name for this; `|` also works).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True when this interest includes readable readiness.
    pub fn is_readable(&self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// True when this interest includes writable readiness.
    pub fn is_writable(&self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Owns the epoll file descriptor; closed exactly once on drop.
#[derive(Debug)]
struct EpollFd(RawFd);

impl Drop for EpollFd {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

/// A handle for (de)registering event sources; cheaply cloneable so set-up
/// code (and [`Waker`]) can hold one independently of the [`Poll`] loop.
#[derive(Clone, Debug)]
pub struct Registry {
    ep: Arc<EpollFd>,
}

impl Registry {
    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token.0 as u64 };
        cvt(unsafe { epoll_ctl(self.ep.0, op, fd, &mut ev) }).map(|_| ())
    }

    /// Starts delivering `interest` events for `source` under `token`
    /// (level-triggered).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), interest.0, token)
    }

    /// Replaces the interest set of an existing registration.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), interest.0, token)
    }

    /// Stops delivering events for `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), 0, Token(0))
    }
}

/// The event loop core: an epoll instance to wait on.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll { registry: Registry { ep: Arc::new(EpollFd(fd)) } })
    }

    /// The registration handle for this poll instance.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` waits indefinitely), filling `events`. A signal
    /// interruption returns with an empty event set rather than an error.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.len = 0;
        let timeout_ms: c_int = match timeout {
            // Round up so a 1 µs timeout still sleeps rather than spins.
            Some(t) => t.as_millis().min(i32::MAX as u128).max(u128::from(!t.is_zero())) as c_int,
            None => -1,
        };
        let n = unsafe {
            epoll_wait(
                self.registry.ep.0,
                events.buf.as_mut_ptr(),
                events.buf.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(())
    }
}

/// A buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Creates a buffer that can carry up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)], len: 0 }
    }

    /// True when the last poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| Event { events: raw.events, token: raw.data })
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = Event;
    type IntoIter = Box<dyn Iterator<Item = Event> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// One readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    events: u32,
    token: u64,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        Token(self.token as usize)
    }

    /// Readable — includes error and hang-up conditions, so the handler's
    /// `read` call observes the failure/EOF itself.
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }

    /// Writable.
    pub fn is_writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// An error condition was signalled for the source.
    pub fn is_error(&self) -> bool {
        self.events & EPOLLERR != 0
    }
}

/// Wakes a [`Poll`] from any thread: an edge-triggered eventfd registration
/// that fires the given token. Never needs draining — each `wake` edge is a
/// fresh event, and the counter cannot realistically overflow.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a waker delivering `token` to `registry`'s poll loop.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let mut ev = EpollEvent { events: EPOLLIN | EPOLLET, data: token.0 as u64 };
        if let Err(e) = cvt(unsafe { epoll_ctl(registry.ep.0, EPOLL_CTL_ADD, fd, &mut ev) }) {
            unsafe { close(fd) };
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Makes the next (or current) poll return with this waker's token.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let ret =
            unsafe { write(self.fd, std::ptr::addr_of!(one).cast::<c_void>(), 8) };
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// Raw fds are just integers; sending them across threads is sound, and every
// operation here is a single syscall the kernel serialises.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    const LISTENER: Token = Token(1);
    const CLIENT: Token = Token(2);
    const WAKE: Token = Token(3);

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poll = Poll::new().unwrap();
        poll.registry().register(&listener, LISTENER, Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no events before a connection arrives");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert!(tokens.contains(&LISTENER), "connect must make the listener readable");
        assert!(events.iter().all(|e| !e.is_error()));
    }

    #[test]
    fn stream_readiness_tracks_interest_and_reregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry().register(&client, CLIENT, Interest::READABLE).unwrap();

        // Nothing to read yet.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        // Adding WRITABLE reports immediately (fresh socket, empty buffer).
        poll.registry()
            .reregister(&client, CLIENT, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == CLIENT && e.is_writable()));

        // Incoming bytes report readable.
        poll.registry().reregister(&client, CLIENT, Interest::READABLE).unwrap();
        server_side.write_all(b"x").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == CLIENT && e.is_readable()));

        // After deregistering, the same condition reports nothing.
        poll.registry().deregister(&client).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn waker_wakes_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), WAKE).unwrap());

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake().unwrap();
        });

        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == WAKE && e.is_readable()));
        handle.join().unwrap();

        // Repeated wakes keep producing events (edge per write).
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == WAKE));
    }

    #[test]
    fn interest_combinators() {
        let rw = Interest::READABLE | Interest::WRITABLE;
        assert!(rw.is_readable() && rw.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
        assert!(!Interest::READABLE.is_writable());
    }
}
