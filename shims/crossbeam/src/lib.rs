//! Offline shim of `crossbeam`, reduced to `utils::CachePadded`.

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so that two `CachePadded`
    /// values never share a cache line (128 covers adjacent-line
    /// prefetching on modern x86 and the 128-byte lines on some ARM parts,
    /// matching the real crossbeam's choice).
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded").field("value", &self.value).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn alignment_and_deref() {
            let x = CachePadded::new(3u64);
            assert_eq!(*x, 3);
            assert_eq!(std::mem::align_of_val(&x), 128);
            let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
            let a = &*arr[0] as *const u8 as usize;
            let b = &*arr[1] as *const u8 as usize;
            assert!(b - a >= 128);
        }
    }
}
