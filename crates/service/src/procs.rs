//! Built-in procedure packs.
//!
//! A *pack* is a plain function that registers a family of procedures into a
//! [`ProcRegistry`]; `doppel-server --procs kv,rubis` composes packs at
//! startup. This module ships the `kv` pack — generic typed key/value
//! procedures over the flat store, enough to run the INCR microbenchmark
//! family and to migrate ad-hoc `Submit` statement lists to named
//! invocations. The `rubis` pack lives in `doppel_rubis::procs` (the service
//! crate cannot depend on the application crates).

use doppel_common::{Args, ProcRegistry};
use std::sync::Arc;

/// Names of the procedures [`register_kv`] adds, for `--help` output and
/// tests.
pub const KV_PROCS: &[&str] = &["kv.get", "kv.put", "kv.add", "kv.max", "kv.set_insert"];

/// Registers the `kv` pack: typed key/value procedures over any table.
///
/// | name            | args                      | result              |
/// |-----------------|---------------------------|---------------------|
/// | `kv.get`        | `key`                     | `[value]` or `[]`   |
/// | `kv.put`        | `key, value`              | `[]`                |
/// | `kv.add`        | `key, int n` (splittable) | `[]`                |
/// | `kv.max`        | `key, int n` (splittable) | `[]`                |
/// | `kv.set_insert` | `key, int e` (splittable) | `[]`                |
pub fn register_kv(reg: &mut ProcRegistry) {
    reg.register_read_only("kv.get", |ctx, args| {
        let k = args.get_key(0)?;
        Ok(match ctx.get(k)? {
            Some(v) => Args::new().value(v),
            None => Args::new(),
        })
    });
    reg.register("kv.put", |ctx, args| {
        let k = args.get_key(0)?;
        let v = args.get_value(1)?.clone();
        ctx.put(k, v)?;
        Ok(Args::new())
    });
    reg.register("kv.add", |ctx, args| {
        ctx.add(args.get_key(0)?, args.get_int(1)?)?;
        Ok(Args::new())
    });
    reg.register("kv.max", |ctx, args| {
        ctx.max(args.get_key(0)?, args.get_int(1)?)?;
        Ok(Args::new())
    });
    reg.register("kv.set_insert", |ctx, args| {
        ctx.set_insert(args.get_key(0)?, args.get_int(1)?)?;
        Ok(Args::new())
    });
}

/// A fresh shared registry holding only the `kv` pack.
pub fn kv_registry() -> Arc<ProcRegistry> {
    let mut reg = ProcRegistry::new();
    register_kv(&mut reg);
    Arc::new(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, TransactionService};
    use doppel_common::{Engine, Key, Value};

    #[test]
    fn kv_pack_names_match_registry() {
        let reg = kv_registry();
        assert_eq!(reg.names(), KV_PROCS);
        assert!(reg.is_read_only(reg.lookup("kv.get").unwrap()));
        assert!(!reg.is_read_only(reg.lookup("kv.add").unwrap()));
    }

    #[test]
    fn kv_procs_execute_through_the_service_and_count_stats() {
        let reg = kv_registry();
        let engine = Arc::new(doppel_occ::OccEngine::new(1, 64));
        engine.load(Key::raw(1), Value::Int(0));
        let service = TransactionService::start(engine.clone(), ServiceConfig::default());
        let mut client = service.client();

        let add = reg.lookup("kv.add").unwrap();
        for _ in 0..5 {
            let call = reg.call(add, Args::new().key(Key::raw(1)).int(3));
            assert!(client.execute(call).is_ok());
        }
        let put = reg.call_by_name("kv.put", Args::new().key(Key::raw(2)).value(Value::from("row"))).unwrap();
        assert!(client.execute(put).is_ok());

        let get = reg.call_by_name("kv.get", Args::new().key(Key::raw(1))).unwrap();
        assert!(client.execute(Arc::clone(&get) as _).is_ok());
        let result = get.take_result().expect("get produced a result");
        assert_eq!(result.get_value(0).unwrap(), &Value::Int(15));

        // Missing record → empty result, still a commit.
        let miss = reg.call_by_name("kv.get", Args::new().key(Key::raw(404))).unwrap();
        assert!(client.execute(Arc::clone(&miss) as _).is_ok());
        assert!(miss.take_result().expect("result captured").is_empty());

        service.shutdown();
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(15)));

        // Per-procedure outcome counters were maintained by the service.
        let stats = reg.stats();
        let add_stats = stats.iter().find(|s| s.name == "kv.add").unwrap();
        assert_eq!(add_stats.commits, 5);
        assert_eq!(add_stats.invocations, 5);
        assert_eq!(add_stats.aborts, 0);
        let get_stats = stats.iter().find(|s| s.name == "kv.get").unwrap();
        assert_eq!(get_stats.commits, 2);
    }
}
