//! `doppel-server`: serve a Doppel (or baseline) engine over TCP.
//!
//! ```text
//! doppel-server --engine doppel --port 7777 --workers 4
//! ```
//!
//! Prints one `listening on <addr>` line to stdout once ready, then serves
//! until killed (or until `--seconds N` elapses, for scripted runs). See the
//! README's "Architecture & serving" section for the wire protocol.

use doppel_service::{Server, ServerEngine, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

struct Flags {
    engine: String,
    host: String,
    port: u16,
    workers: usize,
    shards: usize,
    phase_ms: u64,
    queue_depth: usize,
    batch_max: usize,
    seconds: Option<f64>,
    durable_dir: Option<String>,
}

fn usage() -> ! {
    println!(
        "doppel-server: serve a transactional engine over TCP\n\n\
         Usage: doppel-server [FLAGS]\n\n\
         Flags:\n\
           --engine NAME    doppel | occ | 2pl | atomic (default doppel)\n\
           --host ADDR      bind address (default 127.0.0.1)\n\
           --port N         TCP port; 0 picks an ephemeral port (default 7777)\n\
           --workers N      worker threads / cores (default 4)\n\
           --shards N       store shard count (default 1024)\n\
           --phase-ms MS    Doppel phase length in milliseconds (default 20)\n\
           --queue-depth N  per-core submission queue cap (default 1024)\n\
           --batch N        max procedures dequeued per batch (default 64)\n\
           --seconds S      exit after S seconds (default: run until killed)\n\
           --durable DIR    write-ahead log directory (recovers it first)\n\
           --help           print this message"
    );
    std::process::exit(0);
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        engine: "doppel".into(),
        host: "127.0.0.1".into(),
        port: 7777,
        workers: 4,
        shards: 1024,
        phase_ms: 20,
        queue_depth: 1024,
        batch_max: 64,
        seconds: None,
        durable_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("--{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--engine" => flags.engine = value("engine"),
            "--host" => flags.host = value("host"),
            "--port" => flags.port = value("port").parse().expect("--port expects a port number"),
            "--workers" => {
                flags.workers = value("workers").parse().expect("--workers expects an integer")
            }
            "--shards" => flags.shards = value("shards").parse().expect("--shards expects an integer"),
            "--phase-ms" => {
                flags.phase_ms = value("phase-ms").parse().expect("--phase-ms expects an integer")
            }
            "--queue-depth" => {
                flags.queue_depth =
                    value("queue-depth").parse().expect("--queue-depth expects an integer")
            }
            "--batch" => flags.batch_max = value("batch").parse().expect("--batch expects an integer"),
            "--seconds" => {
                flags.seconds = Some(value("seconds").parse().expect("--seconds expects a number"))
            }
            "--durable" => flags.durable_dir = Some(value("durable")),
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    flags
}

fn main() {
    let flags = parse_flags();
    let engine = ServerEngine::build(&flags.engine, flags.workers, flags.phase_ms, flags.shards)
        .unwrap_or_else(|| {
            eprintln!("unknown engine {:?} (doppel | occ | 2pl | atomic)", flags.engine);
            std::process::exit(2);
        });

    // Durability: recover the directory into the fresh store, then attach
    // the log so every commit (and Doppel merged delta) is logged.
    if let Some(dir) = &flags.durable_dir {
        let report = doppel_wal::recover_into(engine.engine.as_ref(), dir)
            .unwrap_or_else(|e| {
                eprintln!("recovery of {dir} failed: {e}");
                std::process::exit(1);
            });
        if report.log_records() > 0 || report.checkpoint_records > 0 {
            eprintln!(
                "recovered {} checkpoint records + {} log records from {dir}",
                report.checkpoint_records,
                report.log_records()
            );
        }
        let wal = doppel_wal::Wal::open(dir, doppel_common::DurabilityConfig::default().from_env())
            .unwrap_or_else(|e| {
                eprintln!("cannot open WAL in {dir}: {e}");
                std::process::exit(1);
            });
        engine.engine.attach_commit_sink(Arc::new(wal));
    }

    let config = ServiceConfig {
        queue_depth: flags.queue_depth,
        batch_max: flags.batch_max,
        ..ServiceConfig::default()
    };
    let engine_name = engine.engine.name();
    let server = Server::start(engine, config, (flags.host.as_str(), flags.port))
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {}:{}: {e}", flags.host, flags.port);
            std::process::exit(1);
        });

    // The one line scripts parse; flush so a piped parent sees it promptly.
    println!("listening on {} (engine={engine_name}, workers={})", server.local_addr(), flags.workers);
    use std::io::Write;
    std::io::stdout().flush().ok();

    match flags.seconds {
        Some(s) => std::thread::sleep(Duration::from_secs_f64(s)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    server.shutdown();
    let stats = server.service().stats();
    eprintln!(
        "served {} commits, {} conflicts, {} enqueued, {} busy rejections",
        stats.commits, stats.conflicts, stats.queue_enqueued, stats.queue_busy_rejections
    );
}
