//! The shard-side half of cross-shard two-phase commit.
//!
//! A [`Participant`] lives inside every `doppel-server` and answers the
//! `Prepare`/`Decide` wire messages the shard router sends for transactions
//! whose statements are *not* all commutative (those take the coordination-
//! free fast path instead; see [`crate::shard`]).
//!
//! **Prepare** locks every key the shard-local slice touches in a
//! participant-level lock table, validates that the writes will apply
//! cleanly (type checks against the live store), reads the slice's `Get`
//! statements under those locks, force-logs the write set as a durable
//! prepare record in the shard's WAL, and only then votes yes. A lock
//! conflict or validation failure votes no with nothing acquired.
//!
//! **Decide(commit)** applies the prepared writes as one ordinary engine
//! transaction that *also* writes a marker key
//! (`Key::new(Table::TxnMarker, txid, 0)`), so the data writes and the
//! applied-indicator land atomically and durably inside the engine's own
//! commit record. Only after the engine commit does the participant log the
//! decide record and release the locks. A re-delivered commit checks the
//! marker first: present means the writes already landed, so the decision is
//! (re-)acknowledged without re-applying — exactly-once effects under
//! arbitrary re-delivery, including across a crash between prepare and
//! decide (the prepare record surfaces the transaction as *in-doubt* on
//! restart, the recovered write set re-locks its keys, and the coordinator's
//! retried decide completes it).
//!
//! **Decide(abort)** logs the decision, drops the prepared writes and
//! releases the locks; nothing ever touched the store.

use crate::service::{ReplySink, TransactionService};
use crate::wire::{ServerMsg, WireAbort, WireDone, WireStmt};
use doppel_common::{Engine, Key, Op, RequestId, ServiceReply, SubmitError, Table, Value};
use doppel_wal::{InDoubtTxn, Wal};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The marker key a committed distributed transaction writes on each
/// participating shard (atomically with its data writes).
pub fn marker_key(txid: u64) -> Key {
    Key::new(Table::TxnMarker, txid, 0)
}

struct Prepared {
    /// The shard-local write set, in statement order.
    writes: Vec<(Key, Op)>,
    /// Every key the prepare locked (writes and reads).
    locked: Vec<Key>,
}

#[derive(Default)]
struct Inner {
    /// Key → owning txid. Prepared transactions hold their keys until the
    /// decision arrives, which is what isolates the slow path from itself.
    locks: HashMap<Key, u64>,
    prepared: HashMap<u64, Prepared>,
}

/// Per-shard two-phase-commit state: the lock table, the prepared (and
/// recovered in-doubt) transactions, and the durable vote log.
pub struct Participant {
    engine: Arc<dyn Engine>,
    /// The shard's WAL, shared with the engine's commit sink so prepare and
    /// decide records interleave with ordinary commits in one log. `None`
    /// on a volatile server: 2PC still works, it just cannot survive a
    /// restart.
    vote_log: Option<Arc<Wal>>,
    inner: Mutex<Inner>,
    prepares: AtomicU64,
    votes_no: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    recovered: AtomicU64,
    /// Crash hook for the 2PC recovery tests: when the environment variable
    /// `DOPPEL_TWOPC_CRASH=before-decide` is set at construction, the
    /// process exits the moment a `Decide` arrives — after voting, before
    /// the decision is logged or applied. That is precisely the in-doubt
    /// window recovery must close.
    crash_before_decide: bool,
}

impl Participant {
    /// A participant over `engine`, logging votes to `vote_log` and holding
    /// the locks of `in_doubt` transactions recovered from that log.
    pub fn new(
        engine: Arc<dyn Engine>,
        vote_log: Option<Arc<Wal>>,
        in_doubt: Vec<InDoubtTxn>,
    ) -> Participant {
        let p = Participant {
            engine,
            vote_log,
            inner: Mutex::default(),
            prepares: AtomicU64::new(0),
            votes_no: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            recovered: AtomicU64::new(in_doubt.len() as u64),
            crash_before_decide: std::env::var("DOPPEL_TWOPC_CRASH")
                .is_ok_and(|v| v == "before-decide"),
        };
        let mut inner = p.inner.lock();
        for txn in in_doubt {
            let locked: Vec<Key> = txn.writes.iter().map(|(k, _)| *k).collect();
            for k in &locked {
                inner.locks.insert(*k, txn.txid);
            }
            inner.prepared.insert(txn.txid, Prepared { writes: txn.writes, locked });
        }
        drop(inner);
        p
    }

    /// Phase one: lock, validate, read, force-log, vote. Returns the `Get`
    /// results (slice order) on a yes-vote, `None` on a no-vote.
    pub fn prepare(&self, txid: u64, stmts: &[WireStmt]) -> Option<Vec<Option<Value>>> {
        let mut inner = self.inner.lock();
        if inner.prepared.contains_key(&txid) {
            // Re-delivered prepare (the router timed out on the vote): the
            // locks and the logged write set are already in place — just
            // re-read and re-vote.
            drop(inner);
            self.prepares.fetch_add(1, Ordering::Relaxed);
            return self.run_slice(stmts).map(|(_, values)| values);
        }
        // Try-lock every touched key; back out completely on conflict.
        let mut acquired = Vec::new();
        for stmt in stmts {
            let k = match stmt {
                WireStmt::Get(k) | WireStmt::Write(k, _) => *k,
            };
            match inner.locks.get(&k) {
                Some(&owner) if owner != txid => {
                    for a in acquired {
                        inner.locks.remove(&a);
                    }
                    self.votes_no.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Some(_) => {}
                None => {
                    inner.locks.insert(k, txid);
                    acquired.push(k);
                }
            }
        }
        // Dry-run the slice so the decide-time apply cannot fail on a type
        // mismatch (a participant must not vote yes for writes it may be
        // unable to perform), and so `Get`s observe statement order.
        let Some((writes, values)) = self.run_slice(stmts) else {
            for a in acquired {
                inner.locks.remove(&a);
            }
            self.votes_no.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        inner.prepared.insert(txid, Prepared { writes: writes.clone(), locked: acquired });
        drop(inner);

        // Durable vote: the prepare record must hit the disk before the
        // yes-vote can reach the coordinator.
        if let Some(wal) = &self.vote_log {
            wal.log_prepare(txid, &writes);
        }
        self.prepares.fetch_add(1, Ordering::Relaxed);
        Some(values)
    }

    /// Dry-runs a slice in statement order over an overlay of the live
    /// store: validates that every write applies cleanly and computes the
    /// `Get` results with the slice's *own preceding writes* visible —
    /// the semantics a direct execution of the statement list would have.
    /// `None` when some write cannot apply (type mismatch).
    #[allow(clippy::type_complexity)]
    fn run_slice(&self, stmts: &[WireStmt]) -> Option<(Vec<(Key, Op)>, Vec<Option<Value>>)> {
        let mut overlay: HashMap<Key, Option<Value>> = HashMap::new();
        let mut writes = Vec::new();
        let mut values = Vec::new();
        for stmt in stmts {
            match stmt {
                WireStmt::Get(k) => {
                    let cur = overlay
                        .entry(*k)
                        .or_insert_with(|| self.engine.global_get(*k));
                    values.push(cur.clone());
                }
                WireStmt::Write(k, op) => {
                    let cur = overlay
                        .entry(*k)
                        .or_insert_with(|| self.engine.global_get(*k));
                    match op.apply_to(cur.as_ref()) {
                        Ok(next) => *cur = Some(next),
                        Err(_) => return None,
                    }
                    writes.push((*k, op.clone()));
                }
            }
        }
        Some((writes, values))
    }

    /// True when the decide-crash hook is armed (test instrumentation).
    pub fn crash_before_decide(&self) -> bool {
        self.crash_before_decide
    }

    /// Phase two, abort: log the decision, release the locks, forget the
    /// writes. Idempotent — an unknown txid is a re-delivery and simply
    /// re-acknowledged.
    pub fn decide_abort(&self, txid: u64) {
        let mut inner = self.inner.lock();
        let Some(p) = inner.prepared.remove(&txid) else { return };
        for k in p.locked {
            inner.locks.remove(&k);
        }
        drop(inner);
        if let Some(wal) = &self.vote_log {
            wal.log_decide(txid, false);
        }
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Phase two, commit. Drives the apply through `service` (the engine's
    /// ordinary submission path) and replies via `sender` when it completes:
    ///
    /// * prepared and not yet applied → submit `{writes + marker}` as one
    ///   transaction; on commit, log the decide, release the locks and send
    ///   `Done(Ok(tid))`; on a (retryable) abort, keep everything and report
    ///   the abort so the coordinator re-delivers.
    /// * marker already in the store (crash after apply, or re-delivery) →
    ///   log the decide if an entry is still open, release, `Done(Ok(0))`.
    /// * unknown txid, no marker → this shard never voted yes (or lost a
    ///   volatile prepare): report a non-retryable abort.
    pub fn decide_commit(
        self: &Arc<Self>,
        service: &Arc<TransactionService>,
        id: u64,
        txid: u64,
        sender_send: impl Fn(&ServerMsg) + Send + Sync + Clone + 'static,
    ) {
        let applied = self.engine.global_get(marker_key(txid)).is_some();
        let prepared = {
            let inner = self.inner.lock();
            inner.prepared.get(&txid).map(|p| p.writes.clone())
        };
        match (prepared, applied) {
            (_, true) => {
                // Effects are already in the store; close the bookkeeping.
                self.finish_commit(txid);
                sender_send(&ServerMsg::Done(WireDone {
                    id,
                    result: Ok(0),
                    deferred: false,
                    values: Vec::new(),
                    proc_result: None,
                }));
            }
            (Some(writes), false) => {
                let mut stmts: Vec<WireStmt> =
                    writes.into_iter().map(|(k, op)| WireStmt::Write(k, op)).collect();
                stmts.push(WireStmt::Write(marker_key(txid), Op::Put(Value::Int(1))));
                let proc = Arc::new(crate::server::RemoteProcedure::new(stmts));
                let me = Arc::clone(self);
                let send = sender_send.clone();
                let sink: ReplySink = Arc::new(move |reply| match reply {
                    ServiceReply::Deferred(rid) => send(&ServerMsg::Deferred { id: rid.0 }),
                    ServiceReply::Done(c) => {
                        let result = match c.result {
                            Ok(tid) => {
                                me.finish_commit(txid);
                                Ok(tid.0)
                            }
                            // Keep the prepared entry: the coordinator
                            // re-delivers the decide until the apply lands.
                            Err(e) => Err(WireAbort::from_error(&e)),
                        };
                        send(&ServerMsg::Done(WireDone {
                            id: c.request.0,
                            result,
                            deferred: c.deferred,
                            values: Vec::new(),
                            proc_result: None,
                        }));
                    }
                });
                match service.submit(RequestId(id), proc, sink) {
                    Ok(_) => {}
                    Err(SubmitError::Busy) => {
                        sender_send(&ServerMsg::Rejected { id, busy: true })
                    }
                    Err(SubmitError::Shutdown) => {
                        sender_send(&ServerMsg::Rejected { id, busy: false })
                    }
                }
            }
            (None, false) => {
                // Never prepared here (or the prepare was volatile and lost):
                // committing blind would not be exactly-once, so refuse.
                sender_send(&ServerMsg::Done(WireDone {
                    id,
                    result: Err(WireAbort::UserAbort),
                    deferred: false,
                    values: Vec::new(),
                    proc_result: None,
                }));
            }
        }
    }

    /// Closes a committed transaction's bookkeeping: decide record, lock
    /// release, entry removal. Safe to call when the entry is already gone.
    fn finish_commit(&self, txid: u64) {
        let mut inner = self.inner.lock();
        let Some(p) = inner.prepared.remove(&txid) else { return };
        for k in p.locked {
            inner.locks.remove(&k);
        }
        drop(inner);
        if let Some(wal) = &self.vote_log {
            wal.log_decide(txid, true);
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Telemetry scalars for the `GetStats` bundle.
    pub fn scalars(&self) -> Vec<(String, u64)> {
        let pending = self.inner.lock().prepared.len() as u64;
        vec![
            ("twopc_prepares".into(), self.prepares.load(Ordering::Relaxed)),
            ("twopc_vote_no".into(), self.votes_no.load(Ordering::Relaxed)),
            ("twopc_commits".into(), self.commits.load(Ordering::Relaxed)),
            ("twopc_aborts".into(), self.aborts.load(Ordering::Relaxed)),
            ("twopc_in_doubt".into(), pending),
            ("twopc_recovered".into(), self.recovered.load(Ordering::Relaxed)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::Op;

    fn occ() -> Arc<dyn Engine> {
        Arc::new(doppel_occ::OccEngine::new(1, 16))
    }

    #[test]
    fn prepare_locks_conflicting_prepares_vote_no() {
        let p = Participant::new(occ(), None, Vec::new());
        let stmts = vec![WireStmt::Write(Key::raw(1), Op::Add(5))];
        assert!(p.prepare(10, &stmts).is_some(), "first prepare votes yes");
        assert!(p.prepare(11, &stmts).is_none(), "conflicting prepare votes no");
        // A disjoint prepare is fine.
        assert!(p.prepare(12, &[WireStmt::Write(Key::raw(2), Op::Add(1))]).is_some());
        // Abort releases the lock.
        p.decide_abort(10);
        assert!(p.prepare(11, &stmts).is_some(), "lock released on abort");
    }

    #[test]
    fn prepare_validates_writes_and_reads_under_locks() {
        let engine = occ();
        engine.load(Key::raw(1), Value::from("text"));
        engine.load(Key::raw(2), Value::Int(7));
        let p = Participant::new(engine, None, Vec::new());
        // Add on a string record cannot apply: the shard must vote no, not
        // vote yes and fail at decide time.
        assert!(p.prepare(1, &[WireStmt::Write(Key::raw(1), Op::Add(5))]).is_none());
        // No lock may survive the failed prepare.
        assert!(p.prepare(2, &[WireStmt::Get(Key::raw(1))]).is_some());
        p.decide_abort(2);
        // Gets come back in slice order.
        let vals = p
            .prepare(3, &[WireStmt::Get(Key::raw(2)), WireStmt::Get(Key::raw(99))])
            .expect("read-only prepare");
        assert_eq!(vals, vec![Some(Value::Int(7)), None]);
    }

    #[test]
    fn in_doubt_seeding_holds_locks_until_decided() {
        let p = Participant::new(
            occ(),
            None,
            vec![InDoubtTxn { txid: 42, writes: vec![(Key::raw(5), Op::Add(9))] }],
        );
        assert_eq!(p.scalars().iter().find(|(n, _)| n == "twopc_in_doubt").unwrap().1, 1);
        // The recovered transaction's key is locked against new prepares.
        assert!(p.prepare(50, &[WireStmt::Write(Key::raw(5), Op::Add(1))]).is_none());
        p.decide_abort(42);
        assert!(p.prepare(50, &[WireStmt::Write(Key::raw(5), Op::Add(1))]).is_some());
    }
}
