//! Scale-out serving: the shard router.
//!
//! A [`ShardRouter`] fronts a cluster of `doppel-server` processes that
//! jointly serve one logical store, hash-partitioned by
//! [`doppel_common::ShardMap`]. The router is a client-side coordinator — it
//! owns one pipelined [`RemoteClient`] connection per shard and speaks the
//! ordinary framed wire protocol, so the servers need no knowledge of each
//! other.
//!
//! Routing, per transaction:
//!
//! * **Single-shard** — every statement's key lives on one shard: forward the
//!   statement list verbatim and relay the outcome. No overhead beyond one
//!   hash per key.
//! * **Commutative fast path** — every statement is a splittable commutative
//!   write ([`doppel_common::fast_path_op`]): fan the per-shard slices out as
//!   *independent* transactions with **no coordination round**. This is the
//!   paper's insight applied across processes: operations that commute can be
//!   applied as disjoint slices and merged later, so shards never need to
//!   agree on ordering — exactly like split-phase per-core slices inside one
//!   engine. Each slice is atomic and durable on its shard; a slice rejected
//!   by backpressure is retried (safe: it was never applied). The fan-out is
//!   *not* serializable with concurrent readers of multiple shards — the same
//!   trade split-phase reads make, and why any transaction containing a read
//!   takes the slow path.
//! * **Two-phase commit slow path** — anything else (reads, `Put`s, mixed
//!   cross-shard writes): prepare on every participant (which locks the keys,
//!   force-logs the write set to the shard's WAL and votes), then decide.
//!   Commit decisions are re-delivered through reconnects
//!   ([`RemoteClient::connect_retry`]) until every participant acknowledges,
//!   so a shard that crashes between prepare and decide completes the
//!   transaction after restart (see [`crate::twopc`]).

use crate::client::{RemoteClient, RemoteOutcome, RemoteTxn};
use crate::wire::{WireAbort, WireStmt};
use crate::TelemetrySnapshot;
use doppel_common::{fast_path_op, Key, Op, ShardMap, Value};
use std::io;
use std::time::{Duration, Instant};

/// Final result of a routed transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardOutcome {
    /// Every shard committed its slice.
    Committed {
        /// `Get` results in statement order (empty on the fast path, which
        /// by construction carries no reads).
        values: Vec<Option<Value>>,
        /// True when any slice was stash-deferred before committing.
        deferred: bool,
    },
    /// The transaction aborted (slow path: all participants were told to
    /// abort; nothing was applied anywhere).
    Aborted {
        /// Why.
        code: WireAbort,
    },
    /// Backpressure outlasted the router's retries.
    Rejected,
}

impl ShardOutcome {
    /// True when the transaction committed everywhere.
    pub fn is_committed(&self) -> bool {
        matches!(self, ShardOutcome::Committed { .. })
    }

    /// The committed `Get` results, when committed.
    pub fn values(&self) -> Option<&[Option<Value>]> {
        match self {
            ShardOutcome::Committed { values, .. } => Some(values),
            _ => None,
        }
    }
}

/// How many transactions each routing path has carried.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Transactions whose keys all lived on one shard.
    pub direct: u64,
    /// Cross-shard transactions fanned out coordination-free.
    pub fast_path: u64,
    /// Cross-shard transactions that needed two-phase commit.
    pub two_phase: u64,
}

struct Shard {
    addr: String,
    client: RemoteClient,
}

/// A client-side coordinator over one connection per shard.
pub struct ShardRouter {
    map: ShardMap,
    shards: Vec<Shard>,
    force_two_phase: bool,
    decide_deadline: Duration,
    txid_tag: u64,
    txid_seq: u64,
    routes: RouteStats,
}

/// How one transaction will execute.
enum Plan {
    Direct(usize),
    Fast(Vec<(usize, Vec<WireStmt>)>),
    TwoPhase,
}

/// One in-flight slice of a fan-out (fast path or direct), with enough kept
/// to resubmit it after a backpressure rejection.
struct Part {
    shard: usize,
    id: u64,
    stmts: Vec<WireStmt>,
}

/// Bounded backpressure retries: commutative slices and direct submissions
/// are safe to resubmit (a rejected submission was never applied), but the
/// router must not spin forever against a wedged server.
const BUSY_RETRIES: u32 = 10_000;

impl ShardRouter {
    /// Connects to a cluster, one address per shard. The shard map is the
    /// address list's order and length: every router (and every restart)
    /// must use the same list.
    pub fn connect(addrs: &[impl AsRef<str>]) -> io::Result<ShardRouter> {
        Self::connect_with(addrs, None)
    }

    /// [`ShardRouter::connect`] retrying each shard until `deadline`
    /// (cluster start-up races; see [`RemoteClient::connect_retry`]).
    pub fn connect_retry(addrs: &[impl AsRef<str>], deadline: Duration) -> io::Result<ShardRouter> {
        Self::connect_with(addrs, Some(deadline))
    }

    fn connect_with(
        addrs: &[impl AsRef<str>],
        deadline: Option<Duration>,
    ) -> io::Result<ShardRouter> {
        if addrs.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shard addresses"));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let addr = addr.as_ref().to_string();
            let client = match deadline {
                Some(d) => RemoteClient::connect_retry(addr.as_str(), d)?,
                None => RemoteClient::connect(addr.as_str()).map_err(|e| {
                    io::Error::new(e.kind(), format!("connect to {addr} failed: {e}"))
                })?,
            };
            shards.push(Shard { addr, client });
        }
        // Distributed txids must be unique across routers and across router
        // restarts: marker keys and vote-log records are keyed by them.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let txid_tag = nanos ^ ((std::process::id() as u64) << 32);
        Ok(ShardRouter {
            map: ShardMap::new(shards.len()),
            shards,
            force_two_phase: false,
            decide_deadline: Duration::from_secs(30),
            txid_tag,
            txid_seq: 0,
            routes: RouteStats::default(),
        })
    }

    /// The keyspace partitioning this router uses.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-path transaction counts so far.
    pub fn routes(&self) -> RouteStats {
        self.routes
    }

    /// Forces every multi-statement write transaction through the two-phase
    /// slow path, commutative or not — the baseline the fast path is
    /// measured against.
    pub fn force_two_phase(&mut self, on: bool) {
        self.force_two_phase = on;
    }

    /// How long commit decisions are re-delivered (through reconnects)
    /// before the router gives up. Defaults to 30 s.
    pub fn decide_deadline(&mut self, deadline: Duration) {
        self.decide_deadline = deadline;
    }

    fn fresh_txid(&mut self) -> u64 {
        self.txid_seq += 1;
        self.txid_tag.wrapping_add(self.txid_seq)
    }

    /// Partitions `stmts` by owning shard (statement order preserved within
    /// each slice) and picks the execution path.
    fn plan(&self, stmts: &[WireStmt]) -> Plan {
        let slices = self.plan_slices(stmts);
        let any_write = stmts.iter().any(|s| matches!(s, WireStmt::Write(..)));
        if self.force_two_phase && any_write {
            return Plan::TwoPhase;
        }
        if slices.len() <= 1 {
            return Plan::Direct(slices.first().map_or(0, |(s, _)| *s));
        }
        let all_fast =
            stmts.iter().all(|s| matches!(s, WireStmt::Write(_, op) if fast_path_op(op)));
        if all_fast {
            Plan::Fast(slices)
        } else {
            Plan::TwoPhase
        }
    }

    /// Executes one transaction through whichever path it plans to.
    pub fn execute(&mut self, txn: &RemoteTxn) -> io::Result<ShardOutcome> {
        let mut out = self.execute_many(std::slice::from_ref(txn))?;
        Ok(out.pop().expect("one outcome per transaction"))
    }

    /// Executes a batch, pipelining the single-shard and fast-path
    /// transactions: every slice of every such transaction is queued onto
    /// its shard's connection before *any* flush, so each shard sees the
    /// whole batch in one read and the shards' group commits overlap instead
    /// of serializing. Slow-path transactions run after the batch,
    /// sequentially (two-phase commit is a round-trip protocol). Outcomes
    /// come back in submission order.
    pub fn execute_many(&mut self, txns: &[RemoteTxn]) -> io::Result<Vec<ShardOutcome>> {
        // Phase A: queue every pipelinable slice, remembering each
        // transaction's parts; slow-path transactions are deferred.
        let mut pending: Vec<Option<Vec<Part>>> = Vec::with_capacity(txns.len());
        let mut touched = vec![false; self.shards.len()];
        for txn in txns {
            match self.plan(txn.stmts()) {
                Plan::Direct(shard) => {
                    self.routes.direct += 1;
                    let stmts = txn.stmts().to_vec();
                    let id = self.shards[shard].client.queue_stmts(stmts.clone())?;
                    touched[shard] = true;
                    pending.push(Some(vec![Part { shard, id, stmts }]));
                }
                Plan::Fast(slices) => {
                    self.routes.fast_path += 1;
                    let mut parts = Vec::with_capacity(slices.len());
                    for (shard, stmts) in slices {
                        let id = self.shards[shard].client.queue_stmts(stmts.clone())?;
                        touched[shard] = true;
                        parts.push(Part { shard, id, stmts });
                    }
                    pending.push(Some(parts));
                }
                Plan::TwoPhase => {
                    self.routes.two_phase += 1;
                    pending.push(None);
                }
            }
        }
        for (shard, touched) in touched.into_iter().enumerate() {
            if touched {
                self.shards[shard].client.flush()?;
            }
        }

        // Phase B: collect, in submission order. Parts rejected by
        // backpressure (or aborted retryably) are resubmitted — commutative
        // slices and whole direct transactions are safe to retry.
        let mut outcomes = Vec::with_capacity(txns.len());
        for (txn, parts) in txns.iter().zip(pending) {
            let Some(parts) = parts else {
                outcomes.push(self.two_phase(txn.stmts())?);
                continue;
            };
            outcomes.push(self.collect_parts(parts)?);
        }
        Ok(outcomes)
    }

    /// Waits for every part of one fanned-out transaction, retrying
    /// backpressure, and merges the outcome.
    fn collect_parts(&mut self, parts: Vec<Part>) -> io::Result<ShardOutcome> {
        let mut values = Vec::new();
        let mut deferred = false;
        let mut aborted: Option<WireAbort> = None;
        let mut rejected = false;
        for part in parts {
            let Part { shard, mut id, stmts } = part;
            let mut attempts = 0;
            loop {
                match self.shards[shard].client.wait(id)? {
                    RemoteOutcome::Committed { values: v, deferred: d, .. } => {
                        values.extend(v);
                        deferred |= d;
                        break;
                    }
                    RemoteOutcome::Aborted { code, .. } if code.is_retryable() => {
                        id = self.shards[shard].client.submit_stmts(stmts.clone())?;
                    }
                    RemoteOutcome::Aborted { code, .. } => {
                        aborted = Some(code);
                        break;
                    }
                    RemoteOutcome::Rejected { busy: true } if attempts < BUSY_RETRIES => {
                        attempts += 1;
                        std::thread::sleep(Duration::from_micros(100));
                        id = self.shards[shard].client.submit_stmts(stmts.clone())?;
                    }
                    RemoteOutcome::Rejected { .. } => {
                        rejected = true;
                        break;
                    }
                }
            }
        }
        if let Some(code) = aborted {
            return Ok(ShardOutcome::Aborted { code });
        }
        if rejected {
            return Ok(ShardOutcome::Rejected);
        }
        Ok(ShardOutcome::Committed { values, deferred })
    }

    /// The slow path: prepare everywhere, merge the votes, decide.
    fn two_phase(&mut self, stmts: &[WireStmt]) -> io::Result<ShardOutcome> {
        let slices = match self.plan_slices(stmts) {
            s if s.is_empty() => return Ok(ShardOutcome::Committed { values: Vec::new(), deferred: false }),
            s => s,
        };
        let txid = self.fresh_txid();

        // Phase one: pipeline the prepares, then gather the votes.
        let mut prepare_ids = Vec::with_capacity(slices.len());
        for (shard, slice) in &slices {
            let id = self.shards[*shard].client.send_prepare(txid, slice.clone())?;
            prepare_ids.push((*shard, id));
        }
        let mut votes = Vec::with_capacity(prepare_ids.len());
        for (shard, id) in prepare_ids {
            let (ok, vals) = self.shards[shard].client.wait_vote(id)?;
            votes.push((shard, ok, vals));
        }

        if votes.iter().any(|(_, ok, _)| !ok) {
            // Abort the yes-voters (no-voters hold nothing).
            for (shard, ok, _) in &votes {
                if *ok {
                    let id = self.shards[*shard].client.send_decide(txid, false)?;
                    self.shards[*shard].client.wait(id)?;
                }
            }
            return Ok(ShardOutcome::Aborted { code: WireAbort::LockBusy });
        }

        // Merge the Get results back into statement order: each shard's vote
        // carries its slice's reads in slice order.
        let mut per_shard: Vec<(usize, std::vec::IntoIter<Option<Value>>)> =
            votes.iter().map(|(s, _, v)| (*s, v.clone().into_iter())).collect();
        let mut values = Vec::new();
        for stmt in stmts {
            if let WireStmt::Get(k) = stmt {
                let owner = self.map.shard_of(*k);
                let vals =
                    per_shard.iter_mut().find(|(s, _)| *s == owner).map(|(_, it)| it.next());
                values.push(vals.flatten().flatten());
            }
        }

        // Phase two: the decision is logged on each participant; commit
        // delivery is retried through reconnects until acknowledged, so a
        // participant crash after its yes-vote only delays the commit.
        for (shard, _, _) in &votes {
            self.deliver_commit(*shard, txid)?;
        }
        Ok(ShardOutcome::Committed { values, deferred: false })
    }

    /// Partition only (no path decision) — used by the slow path.
    fn plan_slices(&self, stmts: &[WireStmt]) -> Vec<(usize, Vec<WireStmt>)> {
        let mut slices: Vec<(usize, Vec<WireStmt>)> = Vec::new();
        for stmt in stmts {
            let k = match stmt {
                WireStmt::Get(k) | WireStmt::Write(k, _) => *k,
            };
            let s = self.map.shard_of(k);
            match slices.iter_mut().find(|(sh, _)| *sh == s) {
                Some((_, v)) => v.push(stmt.clone()),
                None => slices.push((s, vec![stmt.clone()])),
            }
        }
        slices
    }

    /// Delivers a commit decision until the participant acknowledges it,
    /// reconnecting (with backoff) if the shard is down — the recovery path
    /// for a participant that crashed between its vote and the decision.
    fn deliver_commit(&mut self, shard: usize, txid: u64) -> io::Result<()> {
        let start = Instant::now();
        loop {
            let attempt = (|| {
                let id = self.shards[shard].client.send_decide(txid, true)?;
                self.shards[shard].client.wait(id)
            })();
            match attempt {
                Ok(RemoteOutcome::Committed { .. }) => return Ok(()),
                Ok(RemoteOutcome::Aborted { code, .. }) if !code.is_retryable() => {
                    // The participant refused a commit it never prepared:
                    // unrecoverable protocol state (e.g. a volatile shard
                    // restarted and forgot its vote).
                    return Err(io::Error::other(format!(
                        "shard {shard} ({}) cannot commit txid {txid:#x}: {code:?}",
                        self.shards[shard].addr
                    )));
                }
                // Retryable abort / backpressure: re-deliver below.
                Ok(_) => {}
                Err(_) => {
                    // Connection died (participant crash?). Reconnect within
                    // what remains of the deadline and re-deliver.
                    let remaining = self.decide_deadline.saturating_sub(start.elapsed());
                    let addr = self.shards[shard].addr.clone();
                    self.shards[shard].client =
                        RemoteClient::connect_retry(addr.as_str(), remaining)?;
                }
            }
            if start.elapsed() >= self.decide_deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "commit decision for txid {txid:#x} undeliverable to shard {shard} ({}) within {:?}",
                        self.shards[shard].addr, self.decide_deadline
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Labels `key` split on its owning shard (Doppel-served shards only;
    /// others acknowledge and ignore).
    pub fn label_split(&mut self, key: Key, op: Op) -> io::Result<()> {
        let shard = self.map.shard_of(key);
        self.shards[shard].client.label_split(key, op)
    }

    /// Pings every shard.
    pub fn ping_all(&mut self) -> io::Result<()> {
        for shard in &mut self.shards {
            shard.client.ping()?;
        }
        Ok(())
    }

    /// Per-shard telemetry snapshots, in shard order.
    pub fn stats_all(&mut self) -> io::Result<Vec<TelemetrySnapshot>> {
        self.shards.iter_mut().map(|s| s.client.stats()).collect()
    }

    /// The cluster view: every shard's snapshot folded into one (scalars
    /// sum, histograms merge; see [`TelemetrySnapshot::merge`]).
    pub fn stats_merged(&mut self) -> io::Result<TelemetrySnapshot> {
        let mut merged = TelemetrySnapshot::default();
        for snap in self.stats_all()? {
            merged.merge(&snap);
        }
        Ok(merged)
    }
}
