//! The TCP front-end: `doppel-server`.
//!
//! Two interchangeable front-ends accept the same wire protocol:
//!
//! * [`FrontEnd::Reactor`] (the default) — a small poller pool multiplexes
//!   every connection over epoll; see [`crate::reactor`].
//! * [`FrontEnd::Threaded`] — the original two-OS-threads-per-connection
//!   design (a reader decoding frames, a writer draining replies), kept as a
//!   baseline and for environments where a blocking stack is preferable.
//!
//! Both share the dispatch path ([`dispatch_client_msg`]) and the bounded
//! per-connection reply queue ([`crate::reactor::Outbox`]), so the ordering
//! guarantees are identical: replies are written in completion order, which
//! is exactly what the `Deferred` → `Done` protocol expresses, and a client
//! that stops reading its replies is shed rather than allowed to grow server
//! memory without bound.

use crate::reactor::{self, Outbox, OutboxSender, Reactor, ReactorConfig, Recv};
use crate::service::{ReplySink, ServiceConfig, TransactionService};
use crate::twopc::Participant;
use crate::wire::{decode_client, read_frame_into, ClientMsg, ServerMsg, WireAbort, WireDone, WireStmt};
use doppel_common::{
    DoppelConfig, Engine, Op, Procedure, ProcRegistry, RegisteredCall, RequestId, ServiceReply,
    SubmitError, Tx, TxError, Value,
};
use doppel_db::DoppelDb;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A transaction received over the wire, executable by any engine.
///
/// `Get` results are captured on every (re-)execution — Doppel may stash and
/// replay the procedure — so the values shipped with the completion are the
/// ones observed by the run that actually committed.
pub struct RemoteProcedure {
    stmts: Vec<WireStmt>,
    reads: parking_lot::Mutex<Vec<Option<Value>>>,
}

impl RemoteProcedure {
    /// Wraps a statement list.
    pub fn new(stmts: Vec<WireStmt>) -> Self {
        RemoteProcedure { stmts, reads: parking_lot::Mutex::new(Vec::new()) }
    }

    /// Takes the `Get` results of the last completed execution.
    pub fn take_values(&self) -> Vec<Option<Value>> {
        std::mem::take(&mut *self.reads.lock())
    }
}

impl Procedure for RemoteProcedure {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        // Reuse the previous execution's value buffer: Doppel may stash and
        // re-run this procedure several times, and the service replays it on
        // conflicts — each run would otherwise allocate a fresh vector.
        let mut vals = std::mem::take(&mut *self.reads.lock());
        vals.clear();
        for stmt in &self.stmts {
            match stmt {
                WireStmt::Get(k) => vals.push(tx.get(*k)?),
                WireStmt::Write(k, op) => {
                    // Ordered inserts carry the *executing* core, exactly as
                    // the direct path's `Tx::oput` / `Tx::topk_insert` fill
                    // it in — a remote client cannot know which core will
                    // run its procedure.
                    let op = match op.clone() {
                        Op::OPut { order, payload, .. } => {
                            Op::OPut { order, core: tx.core(), payload }
                        }
                        Op::TopKInsert { order, payload, k: cap, .. } => {
                            Op::TopKInsert { order, core: tx.core(), payload, k: cap }
                        }
                        other => other,
                    };
                    tx.write_op(*k, op)?;
                }
            }
        }
        *self.reads.lock() = vals;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "remote"
    }

    fn is_read_only(&self) -> bool {
        self.stmts.iter().all(|s| matches!(s, WireStmt::Get(_)))
    }
}

/// An engine prepared for serving: the trait object the service drives, the
/// concrete Doppel handle (when the engine is Doppel) for control operations
/// the [`Engine`] trait does not expose (split labelling), and the
/// stored-procedure registry `InvokeProc` messages dispatch against.
pub struct ServerEngine {
    /// The engine behind the service.
    pub engine: Arc<dyn Engine>,
    /// Set when `engine` is a Doppel database.
    pub doppel: Option<Arc<DoppelDb>>,
    /// Registered procedures served to `InvokeProc` clients (empty by
    /// default: such a server answers every invocation with `UnknownProc`
    /// but still serves raw statement lists).
    pub procs: Arc<ProcRegistry>,
    /// Durable vote log for cross-shard two-phase commit (normally the same
    /// [`doppel_wal::Wal`] attached as the engine's commit sink, so prepare
    /// and decide records interleave with ordinary commit records). `None`
    /// disables durable voting: 2PC still works but forgets prepared
    /// transactions on restart.
    pub vote_log: Option<Arc<doppel_wal::Wal>>,
    /// In-doubt transactions recovered from the vote log: prepared (voted
    /// yes) but with no decision on record. Their keys are re-locked at
    /// startup until the coordinator re-delivers the decision.
    pub in_doubt: Vec<doppel_wal::InDoubtTxn>,
    /// Run the adaptive contention controller alongside the coordinator
    /// (Doppel engines only): a [`doppel_tuner::Tuner`] thread that learns
    /// split labels and phase length from live telemetry, replacing manual
    /// `--hint-items` labelling.
    pub adaptive: bool,
}

impl ServerEngine {
    /// Wraps a started Doppel database.
    pub fn doppel(db: Arc<DoppelDb>) -> Self {
        ServerEngine {
            engine: db.clone(),
            doppel: Some(db),
            procs: Arc::default(),
            vote_log: None,
            in_doubt: Vec::new(),
            adaptive: false,
        }
    }

    /// Wraps any other engine.
    pub fn other(engine: Arc<dyn Engine>) -> Self {
        ServerEngine {
            engine,
            doppel: None,
            procs: Arc::default(),
            vote_log: None,
            in_doubt: Vec::new(),
            adaptive: false,
        }
    }

    /// Enables (or disables) the adaptive contention controller. Only
    /// meaningful for Doppel engines; ignored otherwise.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Attaches a procedure registry (built by registering procedure packs).
    pub fn with_procs(mut self, procs: Arc<ProcRegistry>) -> Self {
        self.procs = procs;
        self
    }

    /// Attaches the durable two-phase-commit vote log.
    pub fn with_vote_log(mut self, wal: Arc<doppel_wal::Wal>) -> Self {
        self.vote_log = Some(wal);
        self
    }

    /// Seeds recovered in-doubt transactions (see [`doppel_wal::Recovered::in_doubt`]).
    pub fn with_in_doubt(mut self, in_doubt: Vec<doppel_wal::InDoubtTxn>) -> Self {
        self.in_doubt = in_doubt;
        self
    }

    /// Builds an engine by name (`doppel`, `occ`, `2pl`, `atomic`), mirroring
    /// the benchmark crate's engine table but constructed here because the
    /// server cannot depend on the benchmark crate.
    pub fn build(name: &str, workers: usize, phase_ms: u64, shards: usize) -> Option<ServerEngine> {
        Self::build_with_tuner(name, workers, phase_ms, shards, doppel_common::TunerConfig::default())
    }

    /// [`ServerEngine::build`] with an explicit adaptive-tuner configuration
    /// for the Doppel engine (baselines have nothing to tune and ignore it).
    pub fn build_with_tuner(
        name: &str,
        workers: usize,
        phase_ms: u64,
        shards: usize,
        tuner: doppel_common::TunerConfig,
    ) -> Option<ServerEngine> {
        match name.to_ascii_lowercase().as_str() {
            "doppel" => {
                let config = DoppelConfig {
                    workers,
                    store_shards: shards,
                    phase_len: Duration::from_millis(phase_ms.max(1)),
                    tuner,
                    ..DoppelConfig::default()
                };
                Some(ServerEngine::doppel(Arc::new(DoppelDb::start(config))))
            }
            "occ" => Some(ServerEngine::other(Arc::new(doppel_occ::OccEngine::new(workers, shards)))),
            "2pl" | "twopl" => {
                Some(ServerEngine::other(Arc::new(doppel_twopl::TwoplEngine::new(workers, shards))))
            }
            "atomic" => Some(ServerEngine::other(Arc::new(doppel_atomic::AtomicEngine::new(workers)))),
            _ => None,
        }
    }
}

/// Which connection-handling machinery serves the listener.
#[derive(Clone, Debug)]
pub enum FrontEnd {
    /// Two OS threads per connection (the original front-end): a blocking
    /// reader and a writer draining the bounded reply queue.
    Threaded {
        /// Per-connection write-queue budget in bytes (overflow sheds the
        /// connection).
        write_queue_bytes: usize,
    },
    /// Epoll reactor: a poller pool multiplexes every connection.
    Reactor(ReactorConfig),
}

impl FrontEnd {
    /// The threaded front-end with the default write-queue budget.
    pub fn threaded() -> FrontEnd {
        FrontEnd::Threaded { write_queue_bytes: reactor::DEFAULT_WRITE_QUEUE_BYTES }
    }

    /// The reactor front-end with default tuning.
    pub fn reactor() -> FrontEnd {
        FrontEnd::Reactor(ReactorConfig::default())
    }
}

impl Default for FrontEnd {
    fn default() -> Self {
        FrontEnd::reactor()
    }
}

/// Front-end health counters, shared by both front-ends.
#[derive(Default)]
pub struct NetStats {
    accept_errors: AtomicU64,
    conns_accepted: AtomicU64,
    conns_shed: AtomicU64,
    decode_errors: AtomicU64,
}

impl NetStats {
    pub(crate) fn note_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_conn_accepted(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_conn_shed(&self) {
        self.conns_shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_shed: self.conns_shed.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the front-end health counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// `accept(2)` failures (e.g. `EMFILE`) plus connection-thread spawn
    /// failures; each is followed by a short back-off, never a busy spin.
    pub accept_errors: u64,
    /// Connections successfully accepted.
    pub conns_accepted: u64,
    /// Connections disconnected because their reply queue overflowed (the
    /// client stopped reading) or a reply could not be framed.
    pub conns_shed: u64,
    /// Connections dropped for sending bytes that do not decode as the wire
    /// protocol (including hostile length prefixes).
    pub decode_errors: u64,
}

/// What every connection handler needs to dispatch client messages, shared
/// across both front-ends.
pub(crate) struct ConnShared {
    pub(crate) service: Arc<TransactionService>,
    pub(crate) doppel: Option<Arc<DoppelDb>>,
    pub(crate) procs: Arc<ProcRegistry>,
    pub(crate) net: Arc<NetStats>,
    pub(crate) twopc: Arc<Participant>,
    pub(crate) tuner: Option<doppel_tuner::TunerWatch>,
}

/// Dispatches one decoded client message: submits to the service with a
/// reply sink that encodes completions into the connection's outbox, or
/// answers control messages directly. Used verbatim by both front-ends.
pub(crate) fn dispatch_client_msg(shared: &ConnShared, msg: ClientMsg, sender: &OutboxSender) {
    match msg {
        ClientMsg::Submit { id, stmts } => {
            let proc = Arc::new(RemoteProcedure::new(stmts));
            let sink: ReplySink = {
                let out = sender.clone();
                let proc = Arc::clone(&proc);
                Arc::new(move |reply| out.send(&reply_to_msg(reply, &proc)))
            };
            match shared.service.submit(RequestId(id), proc, sink) {
                Ok(_) => {}
                Err(SubmitError::Busy) => sender.send(&ServerMsg::Rejected { id, busy: true }),
                Err(SubmitError::Shutdown) => {
                    sender.send(&ServerMsg::Rejected { id, busy: false })
                }
            }
        }
        ClientMsg::InvokeProc { id, proc, args } => {
            let Some(call) = shared.procs.call_by_name(&proc, args) else {
                // Typed rejection: the name is not registered on this server
                // (the client sees a non-retryable abort).
                sender.send(&ServerMsg::Done(WireDone {
                    id,
                    result: Err(WireAbort::UnknownProc),
                    deferred: false,
                    values: Vec::new(),
                    proc_result: None,
                }));
                return;
            };
            let sink: ReplySink = {
                let out = sender.clone();
                let call = Arc::clone(&call);
                Arc::new(move |reply| out.send(&reply_to_call_msg(reply, &call)))
            };
            match shared.service.submit(RequestId(id), call, sink) {
                Ok(_) => {}
                Err(SubmitError::Busy) => sender.send(&ServerMsg::Rejected { id, busy: true }),
                Err(SubmitError::Shutdown) => {
                    sender.send(&ServerMsg::Rejected { id, busy: false })
                }
            }
        }
        ClientMsg::LabelSplit { id, key, op } => {
            if let Some(db) = &shared.doppel {
                db.label_split(key, op.kind());
            }
            sender.send(&ServerMsg::Ack { id });
        }
        ClientMsg::Ping { id } => {
            sender.send(&ServerMsg::Ack { id });
        }
        ClientMsg::GetStats { id } => {
            sender.send(&ServerMsg::Stats {
                id,
                snapshot: Box::new(telemetry_snapshot(shared)),
            });
        }
        ClientMsg::Prepare { id, txid, stmts } => match shared.twopc.prepare(txid, &stmts) {
            Some(values) => sender.send(&ServerMsg::Vote { id, txid, ok: true, values }),
            None => sender.send(&ServerMsg::Vote { id, txid, ok: false, values: Vec::new() }),
        },
        ClientMsg::Decide { id, txid, commit } => {
            if shared.twopc.crash_before_decide() {
                // Test instrumentation: die in the in-doubt window — after
                // the durable yes-vote, before the decision lands.
                std::process::exit(86);
            }
            if commit {
                let out = sender.clone();
                shared.twopc.decide_commit(&shared.service, id, txid, move |msg| out.send(msg));
            } else {
                shared.twopc.decide_abort(txid);
                sender.send(&ServerMsg::Ack { id });
            }
        }
    }
}

/// Assembles the full telemetry bundle: engine counters, engine-side and
/// service-side metric registries, network counters, the current phase and
/// the per-procedure table — everything a `GetStats` reply ships.
pub(crate) fn telemetry_snapshot(shared: &ConnShared) -> crate::TelemetrySnapshot {
    let mut snap = crate::TelemetrySnapshot::default();
    snap.absorb_stats(&shared.service.stats());
    snap.absorb_metrics(shared.service.telemetry().snapshot());
    if let Some(reg) = shared.service.engine().telemetry() {
        snap.absorb_metrics(reg.snapshot());
    }
    let net = shared.net.snapshot();
    snap.scalars.push(("accept_errors".into(), net.accept_errors));
    snap.scalars.push(("conns_accepted".into(), net.conns_accepted));
    snap.scalars.push(("conns_shed".into(), net.conns_shed));
    snap.scalars.push(("decode_errors".into(), net.decode_errors));
    snap.scalars.push(("trace_events".into(), doppel_telemetry::trace::events_recorded()));
    snap.scalars.extend(shared.twopc.scalars());
    snap.phase = match &shared.doppel {
        Some(db) => match db.current_phase() {
            doppel_db::Phase::Joined => "joined".into(),
            doppel_db::Phase::Split => "split".into(),
        },
        None => "-".into(),
    };
    snap.procs = shared.procs.stats();
    if let Some(watch) = &shared.tuner {
        let status = watch.status();
        snap.tuner = Some(crate::TunerSnapshot {
            epochs: status.epochs,
            phase_len_us: status.phase_len.as_micros().min(u64::MAX as u128) as u64,
            split_keys: status.split_keys,
            decisions: status.decisions,
        });
    }
    snap
}

/// How long the accept loop should sleep after `err`, or `None` for errors
/// that need no back-off. Per-connection failures (the peer aborted its own
/// handshake) carry no risk of spinning; resource exhaustion (`EMFILE`,
/// `ENFILE`, `ENOMEM`) absolutely does — `accept(2)` fails instantly without
/// consuming the pending connection, so a loop that just `continue`s pins a
/// core until a descriptor frees up.
pub(crate) fn accept_backoff(err: &io::Error) -> Option<Duration> {
    match err.kind() {
        io::ErrorKind::WouldBlock
        | io::ErrorKind::Interrupted
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionReset => None,
        _ => Some(Duration::from_millis(10)),
    }
}

/// The two front-ends' runtime state.
enum Runtime {
    Threaded(Arc<ConnRegistry>),
    Reactor(Reactor),
}

/// A running `doppel-server`: a listener plus the transaction service it
/// feeds. Dropping (or [`Server::shutdown`]) closes connections, drains the
/// service and shuts the engine down.
pub struct Server {
    service: Arc<TransactionService>,
    doppel: Option<Arc<DoppelDb>>,
    procs: Arc<ProcRegistry>,
    net: Arc<NetStats>,
    twopc: Arc<Participant>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: parking_lot::Mutex<Option<JoinHandle<()>>>,
    runtime: Runtime,
    tuner: parking_lot::Mutex<Option<doppel_tuner::TunerHandle>>,
    tuner_watch: Option<doppel_tuner::TunerWatch>,
}

/// Live-connection registry (threaded front-end only): each connection's
/// stream clone is held only while its handler runs (the handler deregisters
/// itself on exit), so a long-running server does not leak one descriptor
/// per connection ever accepted. `shutdown` closes whatever is still live.
#[derive(Default)]
struct ConnRegistry {
    streams: parking_lot::Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, stream);
        id
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    fn close_all(&self) {
        for (_, conn) in self.streams.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Server {
    /// Binds `bind_addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `engine` through a [`TransactionService`] behind the
    /// default front-end (the epoll reactor).
    pub fn start(
        engine: ServerEngine,
        config: ServiceConfig,
        bind_addr: impl ToSocketAddrs,
    ) -> io::Result<Server> {
        Server::start_with(engine, config, bind_addr, FrontEnd::default())
    }

    /// [`Server::start`] with an explicit front-end choice.
    pub fn start_with(
        engine: ServerEngine,
        config: ServiceConfig,
        bind_addr: impl ToSocketAddrs,
        front_end: FrontEnd,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let service = TransactionService::start(Arc::clone(&engine.engine), config);
        let stop = Arc::new(AtomicBool::new(false));
        let net: Arc<NetStats> = Arc::default();

        // Feed the registry's per-procedure contention hints to Doppel's
        // classifier as manual split labels (paper §5.5): records the
        // procedure packs know are contended start split instead of waiting
        // for the conflict counters to notice.
        if let Some(db) = &engine.doppel {
            for (_, key, kind) in engine.procs.contention_hints() {
                db.label_split(*key, *kind);
            }
        }

        let twopc = Arc::new(Participant::new(
            Arc::clone(&engine.engine),
            engine.vote_log.clone(),
            engine.in_doubt,
        ));

        // Close the loop: the tuner thread samples the engine's telemetry
        // each epoch and drives split labels / phase length / classifier
        // thresholds through the database's `TuneSink` hooks.
        let tuner = match (&engine.doppel, engine.adaptive) {
            (Some(db), true) => {
                let registry = db
                    .telemetry()
                    .unwrap_or_else(|| Arc::new(doppel_telemetry::Registry::new()));
                Some(doppel_tuner::TunerHandle::spawn(
                    db.config().tuner.clone(),
                    Arc::clone(db) as Arc<dyn doppel_common::TuneSink>,
                    registry,
                ))
            }
            _ => None,
        };
        let tuner_watch = tuner.as_ref().map(|t| t.watch());

        let shared = Arc::new(ConnShared {
            service: Arc::clone(&service),
            doppel: engine.doppel.clone(),
            procs: Arc::clone(&engine.procs),
            net: Arc::clone(&net),
            twopc: Arc::clone(&twopc),
            tuner: tuner_watch.clone(),
        });

        let runtime = match &front_end {
            FrontEnd::Threaded { .. } => Runtime::Threaded(Arc::default()),
            FrontEnd::Reactor(config) => {
                Runtime::Reactor(Reactor::start(Arc::clone(&shared), config.clone())?)
            }
        };

        let accept = {
            let stop = Arc::clone(&stop);
            let net = Arc::clone(&net);
            let sink: AcceptSink = match &runtime {
                Runtime::Threaded(conns) => {
                    let write_queue_bytes = match front_end {
                        FrontEnd::Threaded { write_queue_bytes } => write_queue_bytes,
                        FrontEnd::Reactor(_) => unreachable!(),
                    };
                    let conns = Arc::clone(conns);
                    Box::new(move |stream| {
                        spawn_threaded_conn(stream, &shared, &conns, write_queue_bytes)
                    })
                }
                Runtime::Reactor(reactor) => {
                    let assign = reactor.handle();
                    Box::new(move |stream| {
                        assign.assign(stream);
                        Ok(())
                    })
                }
            };
            std::thread::Builder::new()
                .name("doppel-accept".into())
                .spawn(move || accept_loop(listener, stop, net, sink))?
        };

        Ok(Server {
            service,
            doppel: engine.doppel,
            procs: engine.procs,
            net,
            twopc,
            addr,
            stop,
            accept: parking_lot::Mutex::new(Some(accept)),
            runtime,
            tuner: parking_lot::Mutex::new(tuner),
            tuner_watch,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener (statistics, direct submission).
    pub fn service(&self) -> &Arc<TransactionService> {
        &self.service
    }

    /// The concrete Doppel database, when serving one.
    pub fn doppel(&self) -> Option<&Arc<DoppelDb>> {
        self.doppel.as_ref()
    }

    /// The stored-procedure registry (per-procedure statistics live here).
    pub fn procs(&self) -> &Arc<ProcRegistry> {
        &self.procs
    }

    /// Front-end health counters (accepts, accept errors, shed connections,
    /// protocol errors).
    pub fn net_stats(&self) -> NetStatsSnapshot {
        self.net.snapshot()
    }

    /// The same [`crate::TelemetrySnapshot`] a `GetStats` client receives,
    /// assembled in-process (the `--stats-interval` ticker uses this).
    pub fn telemetry_snapshot(&self) -> crate::TelemetrySnapshot {
        let shared = ConnShared {
            service: Arc::clone(&self.service),
            doppel: self.doppel.clone(),
            procs: Arc::clone(&self.procs),
            net: Arc::clone(&self.net),
            twopc: Arc::clone(&self.twopc),
            tuner: self.tuner_watch.clone(),
        };
        telemetry_snapshot(&shared)
    }

    /// A live view of the adaptive tuner's state, when running with
    /// [`ServerEngine::with_adaptive`].
    pub fn tuner_watch(&self) -> Option<&doppel_tuner::TunerWatch> {
        self.tuner_watch.as_ref()
    }

    /// Stops accepting, closes every connection, drains the service and
    /// shuts the engine down. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Stop the tuner first so it never pokes a draining engine.
        if let Some(mut handle) = self.tuner.lock().take() {
            handle.stop();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.lock().take() {
            let _ = handle.join();
        }
        match &self.runtime {
            Runtime::Threaded(conns) => conns.close_all(),
            Runtime::Reactor(reactor) => reactor.shutdown(),
        }
        self.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

type AcceptSink = Box<dyn FnMut(TcpStream) -> io::Result<()> + Send>;

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    net: Arc<NetStats>,
    mut sink: AcceptSink,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                // Resource exhaustion (EMFILE & friends) fails instantly and
                // leaves the pending connection queued: back off instead of
                // spinning the accept thread at 100% CPU.
                net.note_accept_error();
                if let Some(pause) = accept_backoff(&e) {
                    std::thread::sleep(pause);
                }
                continue;
            }
        };
        // Replies are small and latency-sensitive; never wait for Nagle.
        let _ = stream.set_nodelay(true);
        net.note_conn_accepted();
        if sink(stream).is_err() {
            // Could not stand the connection up (e.g. thread spawn failed
            // under memory pressure): drop it and breathe, don't die.
            net.note_accept_error();
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn spawn_threaded_conn(
    stream: TcpStream,
    shared: &Arc<ConnShared>,
    conns: &Arc<ConnRegistry>,
    write_queue_bytes: usize,
) -> io::Result<()> {
    let clone = stream.try_clone()?;
    let conn_id = conns.register(clone);
    let shared = Arc::clone(shared);
    let registry = Arc::clone(conns);
    let spawned = std::thread::Builder::new().name("doppel-conn".into()).spawn(move || {
        handle_connection(stream, &shared, write_queue_bytes);
        registry.deregister(conn_id);
    });
    if spawned.is_err() {
        conns.deregister(conn_id);
    }
    spawned.map(|_| ())
}

/// Converts a service reply into its wire form, resolving `Get` values from
/// the procedure on successful completion.
fn reply_to_msg(reply: ServiceReply, proc: &RemoteProcedure) -> ServerMsg {
    match reply {
        ServiceReply::Deferred(id) => ServerMsg::Deferred { id: id.0 },
        ServiceReply::Done(c) => {
            let (result, values) = match c.result {
                Ok(tid) => (Ok(tid.raw()), proc.take_values()),
                Err(e) => (Err(WireAbort::from_error(&e)), Vec::new()),
            };
            ServerMsg::Done(WireDone {
                id: c.request.0,
                result,
                deferred: c.deferred,
                values,
                proc_result: None,
            })
        }
    }
}

/// Converts a service reply for a registered-procedure invocation into its
/// wire form, resolving the typed [`doppel_common::ProcResult`] on commit.
fn reply_to_call_msg(reply: ServiceReply, call: &RegisteredCall) -> ServerMsg {
    match reply {
        ServiceReply::Deferred(id) => ServerMsg::Deferred { id: id.0 },
        ServiceReply::Done(c) => {
            let (result, proc_result) = match c.result {
                Ok(tid) => (Ok(tid.raw()), call.take_result()),
                Err(e) => (Err(WireAbort::from_error(&e)), None),
            };
            ServerMsg::Done(WireDone {
                id: c.request.0,
                result,
                deferred: c.deferred,
                values: Vec::new(),
                proc_result,
            })
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<ConnShared>, write_queue_bytes: usize) {
    let Ok(write_half) = stream.try_clone() else { return };
    let outbox = Outbox::new(write_queue_bytes, None);
    let sender = outbox.sender();
    let writer = {
        let outbox = Arc::clone(&outbox);
        let net = Arc::clone(&shared.net);
        std::thread::Builder::new()
            .name("doppel-conn-writer".into())
            .spawn(move || writer_loop(write_half, outbox, net))
    };
    let Ok(writer) = writer else { return };

    let mut reader = BufReader::new(stream);
    // One payload buffer for the connection's lifetime: frames decode in
    // place, so the read loop performs no per-frame allocation.
    let mut payload = Vec::new();
    while let Ok(true) = read_frame_into(&mut reader, &mut payload) {
        let Ok(msg) = decode_client(&payload) else {
            // Protocol error: drop the connection rather than guessing.
            shared.net.note_decode_error();
            break;
        };
        dispatch_client_msg(shared, msg, &sender);
    }
    // Dropping our sender lets the writer exit once every in-flight
    // completion (whose sinks hold clones) has been delivered.
    drop(sender);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, outbox: Arc<Outbox>, net: Arc<NetStats>) {
    let mut w = io::BufWriter::new(&stream);
    loop {
        match outbox.recv_blocking() {
            Recv::Batch(frames) => {
                // Frames carry their headers already; batch the whole queue
                // under one flush.
                for frame in frames {
                    if w.write_all(&frame).is_err() {
                        drop(w);
                        hang_up(&stream, &outbox);
                        return;
                    }
                }
                if w.flush().is_err() {
                    drop(w);
                    hang_up(&stream, &outbox);
                    return;
                }
            }
            Recv::Shed => {
                // The client stopped reading and its queue overflowed:
                // disconnect rather than buffer without bound.
                net.note_conn_shed();
                drop(w);
                hang_up(&stream, &outbox);
                return;
            }
            Recv::Disconnected => {
                let _ = w.flush();
                return;
            }
        }
    }
}

/// Tears a threaded connection down from the writer side: closing the outbox
/// stops accumulation, shutting the socket down unblocks the reader thread.
fn hang_up(stream: &TcpStream, outbox: &Outbox) {
    outbox.close();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_sleeps_on_resource_exhaustion() {
        // EMFILE / ENFILE: the pending connection stays queued and accept(2)
        // fails instantly — exactly the busy-spin case the back-off exists
        // for.
        let emfile = io::Error::from_raw_os_error(24);
        let enfile = io::Error::from_raw_os_error(23);
        assert!(accept_backoff(&emfile).is_some());
        assert!(accept_backoff(&enfile).is_some());
    }

    #[test]
    fn accept_backoff_skips_per_connection_failures() {
        for kind in [
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
        ] {
            let err = io::Error::new(kind, "transient");
            assert!(accept_backoff(&err).is_none(), "{kind:?} should not pause accepting");
        }
    }
}
