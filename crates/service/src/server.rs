//! The TCP front-end: `doppel-server`.
//!
//! Each connection gets a reader thread (decodes frames, builds
//! [`RemoteProcedure`]s, submits them to the shared [`TransactionService`])
//! and a writer thread (serialises replies back onto the socket). Ordering
//! guarantees are per-request, not per-connection: replies are written in
//! completion order, which is exactly what the `Deferred` → `Done` protocol
//! expresses.

use crate::service::{ReplySink, ServiceConfig, TransactionService};
use crate::wire::{
    decode_client, encode_server, read_frame, write_frame, ClientMsg, ServerMsg, WireAbort,
    WireDone, WireStmt,
};
use doppel_common::{
    DoppelConfig, Engine, Op, Procedure, ProcRegistry, RegisteredCall, RequestId, ServiceReply,
    SubmitError, Tx, TxError, Value,
};
use doppel_db::DoppelDb;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A transaction received over the wire, executable by any engine.
///
/// `Get` results are captured on every (re-)execution — Doppel may stash and
/// replay the procedure — so the values shipped with the completion are the
/// ones observed by the run that actually committed.
pub struct RemoteProcedure {
    stmts: Vec<WireStmt>,
    reads: parking_lot::Mutex<Vec<Option<Value>>>,
}

impl RemoteProcedure {
    /// Wraps a statement list.
    pub fn new(stmts: Vec<WireStmt>) -> Self {
        RemoteProcedure { stmts, reads: parking_lot::Mutex::new(Vec::new()) }
    }

    /// Takes the `Get` results of the last completed execution.
    pub fn take_values(&self) -> Vec<Option<Value>> {
        std::mem::take(&mut *self.reads.lock())
    }
}

impl Procedure for RemoteProcedure {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let mut vals = Vec::new();
        for stmt in &self.stmts {
            match stmt {
                WireStmt::Get(k) => vals.push(tx.get(*k)?),
                WireStmt::Write(k, op) => {
                    // Ordered inserts carry the *executing* core, exactly as
                    // the direct path's `Tx::oput` / `Tx::topk_insert` fill
                    // it in — a remote client cannot know which core will
                    // run its procedure.
                    let op = match op.clone() {
                        Op::OPut { order, payload, .. } => {
                            Op::OPut { order, core: tx.core(), payload }
                        }
                        Op::TopKInsert { order, payload, k: cap, .. } => {
                            Op::TopKInsert { order, core: tx.core(), payload, k: cap }
                        }
                        other => other,
                    };
                    tx.write_op(*k, op)?;
                }
            }
        }
        *self.reads.lock() = vals;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "remote"
    }

    fn is_read_only(&self) -> bool {
        self.stmts.iter().all(|s| matches!(s, WireStmt::Get(_)))
    }
}

/// An engine prepared for serving: the trait object the service drives, the
/// concrete Doppel handle (when the engine is Doppel) for control operations
/// the [`Engine`] trait does not expose (split labelling), and the
/// stored-procedure registry `InvokeProc` messages dispatch against.
pub struct ServerEngine {
    /// The engine behind the service.
    pub engine: Arc<dyn Engine>,
    /// Set when `engine` is a Doppel database.
    pub doppel: Option<Arc<DoppelDb>>,
    /// Registered procedures served to `InvokeProc` clients (empty by
    /// default: such a server answers every invocation with `UnknownProc`
    /// but still serves raw statement lists).
    pub procs: Arc<ProcRegistry>,
}

impl ServerEngine {
    /// Wraps a started Doppel database.
    pub fn doppel(db: Arc<DoppelDb>) -> Self {
        ServerEngine { engine: db.clone(), doppel: Some(db), procs: Arc::default() }
    }

    /// Wraps any other engine.
    pub fn other(engine: Arc<dyn Engine>) -> Self {
        ServerEngine { engine, doppel: None, procs: Arc::default() }
    }

    /// Attaches a procedure registry (built by registering procedure packs).
    pub fn with_procs(mut self, procs: Arc<ProcRegistry>) -> Self {
        self.procs = procs;
        self
    }

    /// Builds an engine by name (`doppel`, `occ`, `2pl`, `atomic`), mirroring
    /// the benchmark crate's engine table but constructed here because the
    /// server cannot depend on the benchmark crate.
    pub fn build(name: &str, workers: usize, phase_ms: u64, shards: usize) -> Option<ServerEngine> {
        match name.to_ascii_lowercase().as_str() {
            "doppel" => {
                let config = DoppelConfig {
                    workers,
                    store_shards: shards,
                    phase_len: Duration::from_millis(phase_ms.max(1)),
                    ..DoppelConfig::default()
                };
                Some(ServerEngine::doppel(Arc::new(DoppelDb::start(config))))
            }
            "occ" => Some(ServerEngine::other(Arc::new(doppel_occ::OccEngine::new(workers, shards)))),
            "2pl" | "twopl" => {
                Some(ServerEngine::other(Arc::new(doppel_twopl::TwoplEngine::new(workers, shards))))
            }
            "atomic" => Some(ServerEngine::other(Arc::new(doppel_atomic::AtomicEngine::new(workers)))),
            _ => None,
        }
    }
}

/// A running `doppel-server`: a listener plus the transaction service it
/// feeds. Dropping (or [`Server::shutdown`]) closes connections, drains the
/// service and shuts the engine down.
pub struct Server {
    service: Arc<TransactionService>,
    doppel: Option<Arc<DoppelDb>>,
    procs: Arc<ProcRegistry>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: parking_lot::Mutex<Option<JoinHandle<()>>>,
    conns: Arc<ConnRegistry>,
}

/// Live-connection registry: each connection's stream clone is held only
/// while its handler runs (the handler deregisters itself on exit), so a
/// long-running server does not leak one descriptor per connection ever
/// accepted. `shutdown` closes whatever is still live.
#[derive(Default)]
struct ConnRegistry {
    streams: parking_lot::Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, stream);
        id
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    fn close_all(&self) {
        for (_, conn) in self.streams.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Server {
    /// Binds `bind_addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `engine` through a [`TransactionService`].
    pub fn start(
        engine: ServerEngine,
        config: ServiceConfig,
        bind_addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let service = TransactionService::start(Arc::clone(&engine.engine), config);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<ConnRegistry> = Arc::default();

        // Feed the registry's per-procedure contention hints to Doppel's
        // classifier as manual split labels (paper §5.5): records the
        // procedure packs know are contended start split instead of waiting
        // for the conflict counters to notice.
        if let Some(db) = &engine.doppel {
            for (_, key, kind) in engine.procs.contention_hints() {
                db.label_split(*key, *kind);
            }
        }

        let accept = {
            let service = Arc::clone(&service);
            let doppel = engine.doppel.clone();
            let procs = Arc::clone(&engine.procs);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new().name("doppel-accept".into()).spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(clone) = stream.try_clone() else { continue };
                    let conn_id = conns.register(clone);
                    let service = Arc::clone(&service);
                    let doppel = doppel.clone();
                    let procs = Arc::clone(&procs);
                    let conns = Arc::clone(&conns);
                    std::thread::Builder::new()
                        .name("doppel-conn".into())
                        .spawn(move || {
                            handle_connection(stream, service, doppel, procs);
                            conns.deregister(conn_id);
                        })
                        .expect("failed to spawn connection thread");
                }
            })?
        };

        Ok(Server {
            service,
            doppel: engine.doppel,
            procs: engine.procs,
            addr,
            stop,
            accept: parking_lot::Mutex::new(Some(accept)),
            conns,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener (statistics, direct submission).
    pub fn service(&self) -> &Arc<TransactionService> {
        &self.service
    }

    /// The concrete Doppel database, when serving one.
    pub fn doppel(&self) -> Option<&Arc<DoppelDb>> {
        self.doppel.as_ref()
    }

    /// The stored-procedure registry (per-procedure statistics live here).
    pub fn procs(&self) -> &Arc<ProcRegistry> {
        &self.procs
    }

    /// Stops accepting, closes every connection, drains the service and
    /// shuts the engine down. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.lock().take() {
            let _ = handle.join();
        }
        self.conns.close_all();
        self.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Converts a service reply into its wire form, resolving `Get` values from
/// the procedure on successful completion.
fn reply_to_msg(reply: ServiceReply, proc: &RemoteProcedure) -> ServerMsg {
    match reply {
        ServiceReply::Deferred(id) => ServerMsg::Deferred { id: id.0 },
        ServiceReply::Done(c) => {
            let (result, values) = match c.result {
                Ok(tid) => (Ok(tid.raw()), proc.take_values()),
                Err(e) => (Err(WireAbort::from_error(&e)), Vec::new()),
            };
            ServerMsg::Done(WireDone {
                id: c.request.0,
                result,
                deferred: c.deferred,
                values,
                proc_result: None,
            })
        }
    }
}

/// Converts a service reply for a registered-procedure invocation into its
/// wire form, resolving the typed [`doppel_common::ProcResult`] on commit.
fn reply_to_call_msg(reply: ServiceReply, call: &RegisteredCall) -> ServerMsg {
    match reply {
        ServiceReply::Deferred(id) => ServerMsg::Deferred { id: id.0 },
        ServiceReply::Done(c) => {
            let (result, proc_result) = match c.result {
                Ok(tid) => (Ok(tid.raw()), call.take_result()),
                Err(e) => (Err(WireAbort::from_error(&e)), None),
            };
            ServerMsg::Done(WireDone {
                id: c.request.0,
                result,
                deferred: c.deferred,
                values: Vec::new(),
                proc_result,
            })
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: Arc<TransactionService>,
    doppel: Option<Arc<DoppelDb>>,
    procs: Arc<ProcRegistry>,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx): (Sender<ServerMsg>, Receiver<ServerMsg>) = std::sync::mpsc::channel();
    let writer = std::thread::Builder::new()
        .name("doppel-conn-writer".into())
        .spawn(move || writer_loop(write_half, rx))
        .expect("failed to spawn writer thread");

    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let Ok(msg) = decode_client(&payload) else {
            // Protocol error: drop the connection rather than guessing.
            break;
        };
        match msg {
            ClientMsg::Submit { id, stmts } => {
                let proc = Arc::new(RemoteProcedure::new(stmts));
                let sink: ReplySink = {
                    let tx = tx.clone();
                    let proc = Arc::clone(&proc);
                    Arc::new(move |reply| {
                        let _ = tx.send(reply_to_msg(reply, &proc));
                    })
                };
                match service.submit(RequestId(id), proc, sink) {
                    Ok(_) => {}
                    Err(SubmitError::Busy) => {
                        let _ = tx.send(ServerMsg::Rejected { id, busy: true });
                    }
                    Err(SubmitError::Shutdown) => {
                        let _ = tx.send(ServerMsg::Rejected { id, busy: false });
                    }
                }
            }
            ClientMsg::InvokeProc { id, proc, args } => {
                let Some(call) = procs.call_by_name(&proc, args) else {
                    // Typed rejection: the name is not registered on this
                    // server (the client sees a non-retryable abort).
                    let _ = tx.send(ServerMsg::Done(WireDone {
                        id,
                        result: Err(WireAbort::UnknownProc),
                        deferred: false,
                        values: Vec::new(),
                        proc_result: None,
                    }));
                    continue;
                };
                let sink: ReplySink = {
                    let tx = tx.clone();
                    let call = Arc::clone(&call);
                    Arc::new(move |reply| {
                        let _ = tx.send(reply_to_call_msg(reply, &call));
                    })
                };
                match service.submit(RequestId(id), call, sink) {
                    Ok(_) => {}
                    Err(SubmitError::Busy) => {
                        let _ = tx.send(ServerMsg::Rejected { id, busy: true });
                    }
                    Err(SubmitError::Shutdown) => {
                        let _ = tx.send(ServerMsg::Rejected { id, busy: false });
                    }
                }
            }
            ClientMsg::LabelSplit { id, key, op } => {
                if let Some(db) = &doppel {
                    db.label_split(key, op.kind());
                }
                let _ = tx.send(ServerMsg::Ack { id });
            }
            ClientMsg::Ping { id } => {
                let _ = tx.send(ServerMsg::Ack { id });
            }
        }
    }
    // Dropping our sender lets the writer exit once every in-flight
    // completion (whose sinks hold clones) has been delivered.
    drop(tx);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, rx: Receiver<ServerMsg>) {
    let mut w = BufWriter::new(stream);
    'outer: while let Ok(msg) = rx.recv() {
        if write_frame(&mut w, &encode_server(&msg)).is_err() {
            break;
        }
        // Batch everything already queued under one flush.
        while let Ok(next) = rx.try_recv() {
            if write_frame(&mut w, &encode_server(&next)).is_err() {
                break 'outer;
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
}
