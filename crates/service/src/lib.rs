//! The transaction service and its networked front-end.
//!
//! The paper's deployment model (§3, §6) separates *clients* from *workers*:
//! "clients submit transactions in the form of procedures" to one worker
//! thread per core. This crate is that separation, in three layers:
//!
//! * [`queue`] — bounded per-core MPSC submission queues with batched
//!   dequeue; a full queue is a [`doppel_common::SubmitError::Busy`]
//!   rejection (backpressure).
//! * [`service`] — the worker pool: [`TransactionService`] owns one thread
//!   per engine core, executes submitted [`doppel_common::Procedure`]s
//!   through the engine's [`doppel_common::TxHandle`], and delivers typed
//!   completions — commit TID, abort, or stash-deferred (Doppel split-phase
//!   stashes surface as a `Deferred` notice followed by the replayed
//!   completion). Graceful shutdown drains the queues, replays stashes and
//!   flushes pending WAL group-commit batches.
//! * [`wire`] / [`server`] / [`client`] — a length-prefixed framed protocol
//!   over TCP (framing in the style of, and sharing the record codec with,
//!   [`doppel_wal::codec`]), the `doppel-server` binary's guts, and the
//!   [`RemoteClient`] library, so the system can be driven by external
//!   processes.
//! * [`reactor`] — the default connection front-end: an epoll poller pool
//!   multiplexing every connection, with bounded per-connection reply queues
//!   (slow clients are shed, not buffered without limit). The original
//!   thread-per-connection front-end remains available as
//!   [`FrontEnd::Threaded`].

pub mod client;
pub mod procs;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod twopc;
pub mod wire;

pub use client::{RemoteClient, RemoteOutcome, RemoteTxn};
pub use procs::{kv_registry, register_kv, KV_PROCS};
pub use queue::{PushError, SubmissionQueue};
pub use reactor::ReactorConfig;
pub use server::{FrontEnd, NetStatsSnapshot, RemoteProcedure, Server, ServerEngine};
pub use service::{ReplySink, ServiceClient, ServiceConfig, ServiceState, TransactionService};
pub use shard::{ShardOutcome, ShardRouter};
pub use snapshot::{TelemetrySnapshot, TunerSnapshot};
pub use twopc::Participant;
pub use wire::{ClientMsg, ServerMsg, WireAbort, WireDone, WireStmt};
