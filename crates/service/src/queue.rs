//! Bounded MPSC submission queues.
//!
//! One queue feeds one worker core. Producers never block: a full queue is a
//! `Busy` rejection (the service's backpressure boundary, pushed all the way
//! back to the client). The consumer dequeues in batches — one lock
//! acquisition amortised over up to `max` procedures — and parks on a
//! condition variable with a timeout so an idle worker still passes engine
//! safepoints at a steady cadence.
//!
//! Built on `std::sync` primitives rather than the in-tree `parking_lot`
//! shim because the consumer needs `Condvar::wait_timeout`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its depth cap.
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue with batched dequeue.
pub struct SubmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    readable: Condvar,
    cap: usize,
}

impl<T> SubmissionQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        SubmissionQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(cap.min(1024)), closed: false }),
            readable: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The depth cap this queue was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, failing fast when the queue is full (backpressure)
    /// or closed (shutdown).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.readable.notify_one();
        Ok(())
    }

    /// Dequeues up to `max` items into `out`, waiting up to `timeout` when
    /// the queue is empty. Returns `false` once the queue is closed *and*
    /// drained — the consumer's signal to stop. `out` is cleared first.
    pub fn pop_batch(&self, max: usize, timeout: Duration, out: &mut Vec<T>) -> bool {
        out.clear();
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.items.is_empty() && !inner.closed {
            let (guard, _timed_out) = self
                .readable
                .wait_timeout(inner, timeout)
                .expect("queue lock poisoned");
            inner = guard;
        }
        let take = inner.items.len().min(max);
        out.extend(inner.items.drain(..take));
        !(inner.closed && inner.items.is_empty() && out.is_empty())
    }

    /// Closes the queue: pending items stay dequeueable, new pushes fail with
    /// [`PushError::Closed`], and blocked consumers wake immediately.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.readable.notify_all();
    }

    /// True once [`SubmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_order() {
        let q = SubmissionQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        let mut out = Vec::new();
        assert!(q.pop_batch(3, Duration::from_millis(1), &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.pop_batch(10, Duration::from_millis(1), &mut out));
        assert_eq!(out, vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let q = SubmissionQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        let mut out = Vec::new();
        q.pop_batch(1, Duration::from_millis(1), &mut out);
        assert_eq!(out, vec![1]);
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_stop() {
        let q = SubmissionQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        let mut out = Vec::new();
        // Pending item still comes out; the queue only reports "stop" once
        // it is both closed and empty.
        assert!(q.pop_batch(4, Duration::from_millis(1), &mut out));
        assert_eq!(out, vec![7]);
        assert!(!q.pop_batch(4, Duration::from_millis(1), &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn empty_open_queue_times_out_and_stays_open() {
        let q: SubmissionQueue<u32> = SubmissionQueue::new(4);
        let mut out = Vec::new();
        let start = std::time::Instant::now();
        assert!(q.pop_batch(4, Duration::from_millis(5), &mut out));
        assert!(out.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<SubmissionQueue<u32>> = Arc::new(SubmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.pop_batch(4, Duration::from_secs(10), &mut out)
        });
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(!t.join().unwrap(), "closed empty queue reports stop");
    }

    #[test]
    fn cross_thread_producers() {
        let q: Arc<SubmissionQueue<usize>> = Arc::new(SubmissionQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        while q.try_push(p * 100 + i) == Err(PushError::Full) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        let mut out = Vec::new();
        while got.len() < 400 {
            q.pop_batch(64, Duration::from_millis(5), &mut out);
            got.append(&mut out);
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        let expected: Vec<usize> = (0..4).flat_map(|p| (0..100).map(move |i| p * 100 + i)).collect();
        assert_eq!(got, expected);
    }
}
