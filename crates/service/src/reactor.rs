//! The epoll reactor front-end: all connections multiplexed on a small
//! poller pool.
//!
//! The original front-end spends two OS threads per connection, which caps a
//! server at hundreds of clients. This module multiplexes instead: an accept
//! thread hands each connection to one of a few poller threads (round-robin),
//! and each poller drives its connections through a nonblocking state
//! machine:
//!
//! ```text
//!             ┌─────────── poller thread ────────────┐
//!  readable ─►│ read → FrameDecoder → dispatch ──────┼──► service workers
//!             │                                      │        │ completions
//!  writable ─►│ flush ◄── coalesce ◄── Outbox ◄──────┼────────┘
//!             └──────────────────────▲───────────────┘
//!                                    │ bounded (bytes); overflow ⇒ shed
//! ```
//!
//! Replies are enqueued by service workers into each connection's [`Outbox`]
//! — a **bounded** byte-budgeted queue (the old per-connection writer used an
//! unbounded channel, so one slow client could grow server memory without
//! limit). A connection whose client stops reading overflows its budget and
//! is *shed*: the queue is dropped and the socket closed. Flushes coalesce
//! every queued frame into one contiguous buffer per `write` call, so a
//! pipelined batch of completions costs one syscall, not one per reply.
//!
//! Ordering guarantees are unchanged from the threaded front-end: replies go
//! out in completion order, `Deferred` precedes its `Done`, and per-request
//! ordering is all the protocol promises.

use crate::server::{dispatch_client_msg, ConnShared};
use crate::wire::{decode_client, server_frame, ClientMsg, FrameDecoder, ServerMsg};
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-connection write-queue budget (bytes). Generous enough that a
/// healthy pipelining client never notices it, small enough that a slow
/// client cannot take meaningful server memory hostage.
pub const DEFAULT_WRITE_QUEUE_BYTES: usize = 4 << 20;

/// Tuning for the reactor front-end.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Poller threads sharing the connection set.
    pub pollers: usize,
    /// Per-connection write-queue budget in bytes; a connection that
    /// overflows it (its client has stopped reading) is shed.
    pub write_queue_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig { pollers: 2, write_queue_bytes: DEFAULT_WRITE_QUEUE_BYTES }
    }
}

// ------------------------------------------------------------------- outbox

/// How many frames and bytes a connection's reply queue currently holds,
/// plus its lifecycle flags.
struct OutboxInner {
    queue: VecDeque<Vec<u8>>,
    bytes: usize,
    /// Overflowed its budget: the connection must be torn down.
    shed: bool,
    /// Consumer is gone; further pushes are dropped.
    closed: bool,
    /// Live [`OutboxSender`]s (the connection's reader plus one per
    /// in-flight submission's reply sink).
    senders: usize,
}

/// A bounded per-connection reply queue, shared by both front-ends.
///
/// Producers are service worker threads (completion sinks) and the
/// connection's own dispatch (acks / rejections). The consumer is either the
/// threaded front-end's writer thread (blocking [`Outbox::recv_blocking`])
/// or a reactor poller (nonblocking [`Outbox::drain_into`]). Pushing past
/// the byte budget marks the queue *shed*: the backlog is dropped, further
/// pushes are no-ops, and the consumer disconnects the client — backpressure
/// by disconnection, the only honest option for a peer that has stopped
/// reading.
pub(crate) struct Outbox {
    inner: Mutex<OutboxInner>,
    readable: Condvar,
    cap_bytes: usize,
    /// Reactor hook: marks the connection dirty and wakes its poller.
    /// `None` under the threaded front-end (the condvar is the consumer).
    wake: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// What [`Outbox::recv_blocking`] observed.
pub(crate) enum Recv {
    /// Every queued frame, drained at once (coalesce under one flush).
    Batch(Vec<Vec<u8>>),
    /// The queue overflowed; disconnect the client.
    Shed,
    /// All senders are gone and the queue is empty: a clean end.
    Disconnected,
}

/// Result of a nonblocking [`Outbox::drain_into`].
pub(crate) struct DrainState {
    /// The queue overflowed; disconnect the client.
    pub shed: bool,
    /// Queue empty *and* no live senders: nothing further can arrive.
    pub idle: bool,
}

impl Outbox {
    pub(crate) fn new(cap_bytes: usize, wake: Option<Arc<dyn Fn() + Send + Sync>>) -> Arc<Outbox> {
        Arc::new(Outbox {
            inner: Mutex::new(OutboxInner {
                queue: VecDeque::new(),
                bytes: 0,
                shed: false,
                closed: false,
                senders: 0,
            }),
            readable: Condvar::new(),
            cap_bytes: cap_bytes.max(1),
            wake,
        })
    }

    /// Creates a producer handle (counted, mpsc-style: the consumer knows
    /// when the last one is gone).
    pub(crate) fn sender(self: &Arc<Self>) -> OutboxSender {
        self.inner.lock().expect("outbox lock").senders += 1;
        OutboxSender { outbox: Arc::clone(self) }
    }

    fn notify(&self) {
        self.readable.notify_one();
        if let Some(wake) = &self.wake {
            wake();
        }
    }

    fn push(&self, frame: Vec<u8>) {
        {
            let mut inner = self.inner.lock().expect("outbox lock");
            if inner.closed || inner.shed {
                return;
            }
            if inner.bytes + frame.len() > self.cap_bytes {
                // The client has stopped reading. Keeping the backlog would
                // let it grow without limit; drop it and shed the connection.
                inner.shed = true;
                inner.queue.clear();
                inner.bytes = 0;
            } else {
                inner.bytes += frame.len();
                inner.queue.push_back(frame);
            }
        }
        self.notify();
    }

    /// Marks the queue shed regardless of occupancy (protocol-fatal reply,
    /// e.g. one that would exceed `MAX_FRAME`).
    fn force_shed(&self) {
        {
            let mut inner = self.inner.lock().expect("outbox lock");
            inner.shed = true;
            inner.queue.clear();
            inner.bytes = 0;
        }
        self.notify();
    }

    /// Consumer hang-up: drops the backlog and turns future pushes into
    /// no-ops.
    pub(crate) fn close(&self) {
        {
            let mut inner = self.inner.lock().expect("outbox lock");
            inner.closed = true;
            inner.queue.clear();
            inner.bytes = 0;
        }
        self.notify();
    }

    /// Blocking consumer (threaded front-end's writer thread).
    pub(crate) fn recv_blocking(&self) -> Recv {
        let mut inner = self.inner.lock().expect("outbox lock");
        loop {
            if inner.shed {
                return Recv::Shed;
            }
            if !inner.queue.is_empty() {
                inner.bytes = 0;
                return Recv::Batch(inner.queue.drain(..).collect());
            }
            if inner.senders == 0 || inner.closed {
                return Recv::Disconnected;
            }
            inner = self.readable.wait(inner).expect("outbox lock");
        }
    }

    /// Nonblocking consumer (reactor pollers): appends queued frames into
    /// `out` until `out` reaches `max_bytes` or the queue empties — the
    /// writev-style coalescing step.
    pub(crate) fn drain_into(&self, out: &mut Vec<u8>, max_bytes: usize) -> DrainState {
        let mut inner = self.inner.lock().expect("outbox lock");
        if inner.shed {
            return DrainState { shed: true, idle: false };
        }
        while out.len() < max_bytes {
            let Some(frame) = inner.queue.pop_front() else { break };
            inner.bytes -= frame.len();
            out.extend_from_slice(&frame);
        }
        DrainState { shed: false, idle: inner.queue.is_empty() && inner.senders == 0 }
    }
}

/// A counted producer handle on an [`Outbox`]; reply sinks clone it, so the
/// consumer can tell "no further replies can arrive" from "none queued right
/// now".
pub(crate) struct OutboxSender {
    outbox: Arc<Outbox>,
}

impl OutboxSender {
    /// Encodes and enqueues one server message. The reply is framed in a
    /// single allocation ([`server_frame`]) — the queue must own its frames,
    /// so one `Vec` per queued reply is the floor, but the old
    /// encode-then-frame two-step paid a second allocation plus a full copy.
    pub(crate) fn send(&self, msg: &ServerMsg) {
        match server_frame(msg) {
            Ok(frame) => self.outbox.push(frame),
            // A reply that cannot be framed (over MAX_FRAME) can never reach
            // the peer intact; the connection is beyond repair.
            Err(_) => self.outbox.force_shed(),
        }
    }
}

impl Clone for OutboxSender {
    fn clone(&self) -> Self {
        self.outbox.inner.lock().expect("outbox lock").senders += 1;
        OutboxSender { outbox: Arc::clone(&self.outbox) }
    }
}

impl Drop for OutboxSender {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.outbox.inner.lock().expect("outbox lock");
            inner.senders -= 1;
            inner.senders == 0
        };
        if last {
            // A consumer may be waiting to learn that nothing further can
            // arrive (clean connection teardown).
            self.outbox.notify();
        }
    }
}

// ------------------------------------------------------------------ reactor

const WAKER_TOKEN: Token = Token(0);
/// Budget of bytes coalesced per flush attempt.
const FLUSH_CHUNK: usize = 256 * 1024;
/// Budget of `read` calls per readiness event, so one firehose connection
/// cannot starve its poller-mates (level-triggered epoll re-signals).
const READS_PER_EVENT: usize = 8;

/// Per-poller shared state producers touch: the dirty list (connections with
/// newly-enqueued output) and its wakeup coalescing flag.
struct PollerShared {
    waker: Waker,
    dirty: Mutex<Vec<usize>>,
    wake_pending: AtomicBool,
    inbox: Mutex<Vec<TcpStream>>,
}

impl PollerShared {
    fn mark_dirty(&self, token: usize) {
        self.dirty.lock().expect("dirty lock").push(token);
        // Coalesce eventfd writes: one wake per poll iteration is enough.
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            let _ = self.waker.wake();
        }
    }
}

/// The running reactor: poller threads plus their assignment state.
pub(crate) struct Reactor {
    pollers: Vec<Arc<PollerShared>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
}

/// A cheap handle the accept loop uses to feed the reactor connections.
pub(crate) struct ReactorHandle {
    pollers: Vec<Arc<PollerShared>>,
    next: Arc<AtomicUsize>,
}

impl ReactorHandle {
    /// Hands an accepted connection to the next poller round-robin.
    pub(crate) fn assign(&self, stream: TcpStream) {
        let ps = &self.pollers[self.next.fetch_add(1, Ordering::Relaxed) % self.pollers.len()];
        ps.inbox.lock().expect("inbox lock").push(stream);
        if !ps.wake_pending.swap(true, Ordering::AcqRel) {
            let _ = ps.waker.wake();
        }
    }
}

impl Reactor {
    /// Spawns the poller pool.
    pub(crate) fn start(shared: Arc<ConnShared>, config: ReactorConfig) -> io::Result<Reactor> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut pollers = Vec::new();
        let mut threads = Vec::new();
        for i in 0..config.pollers.max(1) {
            let poll = Poll::new()?;
            let waker = Waker::new(poll.registry(), WAKER_TOKEN)?;
            let ps = Arc::new(PollerShared {
                waker,
                dirty: Mutex::new(Vec::new()),
                wake_pending: AtomicBool::new(false),
                inbox: Mutex::new(Vec::new()),
            });
            let mut state = Poller {
                poll,
                shared: Arc::clone(&shared),
                ps: Arc::clone(&ps),
                stop: Arc::clone(&stop),
                conns: HashMap::new(),
                next_token: 1,
                write_queue_bytes: config.write_queue_bytes,
                scratch: vec![0u8; 64 * 1024],
                msg_buf: Vec::new(),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("doppel-poller-{i}"))
                    .spawn(move || state.run())
                    .map_err(io::Error::other)?,
            );
            pollers.push(ps);
        }
        Ok(Reactor {
            pollers,
            threads: Mutex::new(threads),
            next: Arc::new(AtomicUsize::new(0)),
            stop,
        })
    }

    /// A handle for the accept loop to assign connections with.
    pub(crate) fn handle(&self) -> ReactorHandle {
        ReactorHandle { pollers: self.pollers.clone(), next: Arc::clone(&self.next) }
    }

    /// Stops every poller, closing all multiplexed connections. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for ps in &self.pollers {
            let _ = ps.waker.wake();
        }
        for t in std::mem::take(&mut *self.threads.lock().expect("threads lock")) {
            let _ = t.join();
        }
    }
}

/// One multiplexed connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: Arc<Outbox>,
    /// The dispatch-side producer handle; dropped at read-EOF so the outbox
    /// can report idle once in-flight completions have drained.
    sender: Option<OutboxSender>,
    /// Coalesced flush buffer (`wpos..` is still unwritten).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Whether EPOLLOUT is currently part of the registration.
    want_write: bool,
    /// The peer half-closed (or closed) its sending side.
    read_closed: bool,
}

/// Why a connection leaves the poller.
enum CloseReason {
    /// Clean teardown (EOF + every reply flushed) or socket error.
    Done,
    /// Write-queue overflow or an unframeable reply.
    Shed,
    /// The peer sent bytes that do not decode as the wire protocol.
    Protocol,
}

enum FlushOutcome {
    /// Nothing pending; EPOLLOUT can be dropped.
    Idle,
    /// The socket would block with output still pending; arm EPOLLOUT.
    Blocked,
    Close(CloseReason),
}

struct Poller {
    poll: Poll,
    shared: Arc<ConnShared>,
    ps: Arc<PollerShared>,
    stop: Arc<AtomicBool>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    write_queue_bytes: usize,
    scratch: Vec<u8>,
    /// Decoded-message staging buffer, reused across readiness events so a
    /// busy connection costs no per-event allocation.
    msg_buf: Vec<ClientMsg>,
}

impl Poller {
    fn run(&mut self) {
        let mut events = Events::with_capacity(256);
        loop {
            if self.poll.poll(&mut events, Some(Duration::from_millis(100))).is_err() {
                // An epoll failure is unrecoverable for this poller; shed its
                // connections rather than spinning.
                break;
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            self.ps.wake_pending.store(false, Ordering::Release);

            let mut actions: Vec<(usize, bool, bool)> = Vec::new();
            for ev in events.iter() {
                if ev.token() != WAKER_TOKEN {
                    actions.push((ev.token().0, ev.is_readable(), ev.is_writable()));
                }
            }
            for (token, readable, writable) in actions {
                self.service_conn(token, readable, writable);
            }

            // Adopt connections the accept thread handed over.
            let fresh = std::mem::take(&mut *self.ps.inbox.lock().expect("inbox lock"));
            for stream in fresh {
                self.adopt(stream);
            }

            // Flush connections whose outboxes gained frames (or shed, or
            // went idle) since the last iteration.
            let dirty = std::mem::take(&mut *self.ps.dirty.lock().expect("dirty lock"));
            for token in dirty {
                if self.conns.contains_key(&token) {
                    self.after_io(token);
                }
            }
        }
        // Teardown: unblock every client with a closed socket and drop the
        // backlog; in-flight completions fall into closed outboxes.
        for (_, conn) in self.conns.drain() {
            conn.outbox.close();
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let ps = Arc::clone(&self.ps);
        let outbox = Outbox::new(
            self.write_queue_bytes,
            Some(Arc::new(move || ps.mark_dirty(token))),
        );
        if self.poll.registry().register(&stream, Token(token), Interest::READABLE).is_err() {
            return;
        }
        let sender = outbox.sender();
        self.conns.insert(
            token,
            Conn {
                stream,
                decoder: FrameDecoder::new(),
                outbox,
                sender: Some(sender),
                wbuf: Vec::new(),
                wpos: 0,
                want_write: false,
                read_closed: false,
            },
        );
    }

    /// Handles one readiness event for `token`, then re-evaluates the
    /// connection's flush/interest/close state.
    fn service_conn(&mut self, token: usize, readable: bool, writable: bool) {
        if readable {
            if let Some(reason) = self.read_and_dispatch(token) {
                self.close(token, reason);
                return;
            }
        }
        let _ = writable; // flush runs unconditionally below
        self.after_io(token);
    }

    /// Drains the socket's readable bytes through the frame decoder,
    /// dispatching every complete message. Returns a close reason on
    /// EOF-with-nothing-pending never — only on errors; EOF is recorded in
    /// the connection for `after_io` to finish once replies drain.
    fn read_and_dispatch(&mut self, token: usize) -> Option<CloseReason> {
        let conn = self.conns.get_mut(&token)?;
        self.msg_buf.clear();
        for _ in 0..READS_PER_EVENT {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    conn.sender = None;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&self.scratch[..n]);
                    loop {
                        // Borrow each completed frame straight out of the
                        // receive buffer; `decode_client` produces the owned
                        // message, so the payload is never copied.
                        match conn.decoder.next_frame_ref() {
                            Ok(Some(payload)) => match decode_client(payload) {
                                Ok(msg) => self.msg_buf.push(msg),
                                Err(_) => return Some(CloseReason::Protocol),
                            },
                            Ok(None) => break,
                            // Hostile length prefix.
                            Err(_) => return Some(CloseReason::Protocol),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Some(CloseReason::Done),
            }
        }
        if !self.msg_buf.is_empty() {
            // Clone the sender handle out of the map so dispatch (which may
            // synchronously enqueue acks) does not alias the connection.
            let sender = match &conn.sender {
                Some(s) => s.clone(),
                // Read-EOF landed mid-batch: replies to these last messages
                // still flow through the sinks' own sender clones.
                None => conn.outbox.sender(),
            };
            let shared = Arc::clone(&self.shared);
            for msg in self.msg_buf.drain(..) {
                dispatch_client_msg(&shared, msg, &sender);
            }
        }
        None
    }

    /// Flush, interest maintenance and close-condition evaluation; run after
    /// any I/O or outbox activity on the connection.
    fn after_io(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        match Self::flush(conn) {
            FlushOutcome::Idle => {
                if conn.read_closed {
                    // All replies flushed and no more can arrive: clean end.
                    let idle = conn.outbox.drain_into(&mut conn.wbuf, 0).idle;
                    if idle && conn.wpos == conn.wbuf.len() {
                        self.close(token, CloseReason::Done);
                        return;
                    }
                }
                if conn.want_write {
                    conn.want_write = false;
                    if self
                        .poll
                        .registry()
                        .reregister(&conn.stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        self.close(token, CloseReason::Done);
                    }
                }
            }
            FlushOutcome::Blocked => {
                if !conn.want_write {
                    conn.want_write = true;
                    if self
                        .poll
                        .registry()
                        .reregister(
                            &conn.stream,
                            Token(token),
                            Interest::READABLE | Interest::WRITABLE,
                        )
                        .is_err()
                    {
                        self.close(token, CloseReason::Done);
                    }
                }
            }
            FlushOutcome::Close(reason) => self.close(token, reason),
        }
    }

    /// Writes as much pending output as the socket accepts, refilling the
    /// coalesced buffer from the outbox between writes.
    fn flush(conn: &mut Conn) -> FlushOutcome {
        loop {
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
                let state = conn.outbox.drain_into(&mut conn.wbuf, FLUSH_CHUNK);
                if state.shed {
                    return FlushOutcome::Close(CloseReason::Shed);
                }
                if conn.wbuf.is_empty() {
                    return FlushOutcome::Idle;
                }
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return FlushOutcome::Close(CloseReason::Done),
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return FlushOutcome::Blocked
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushOutcome::Close(CloseReason::Done),
            }
        }
    }

    fn close(&mut self, token: usize, reason: CloseReason) {
        let Some(conn) = self.conns.remove(&token) else { return };
        match reason {
            CloseReason::Shed => {
                self.shared.net.note_conn_shed();
                doppel_telemetry::trace::instant(
                    doppel_telemetry::EventKind::ReactorShed,
                    token as u64,
                );
            }
            CloseReason::Protocol => self.shared.net.note_decode_error(),
            CloseReason::Done => {}
        }
        conn.outbox.close();
        let _ = conn.stream.shutdown(Shutdown::Both);
        // Dropping the stream closes the fd, which also deregisters it from
        // the epoll set.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    #[test]
    fn outbox_bounds_memory_and_sheds() {
        let outbox = Outbox::new(100, None);
        let sender = outbox.sender();
        outbox.push(frame(60));
        outbox.push(frame(30));
        {
            let inner = outbox.inner.lock().unwrap();
            assert_eq!(inner.bytes, 90);
            assert!(!inner.shed);
        }
        // This one would exceed the budget: the queue is dropped and the
        // outbox is shed — memory is bounded by the cap, not the client.
        outbox.push(frame(20));
        {
            let inner = outbox.inner.lock().unwrap();
            assert!(inner.shed);
            assert_eq!(inner.bytes, 0);
            assert!(inner.queue.is_empty());
        }
        // Further pushes are no-ops, and the consumer observes the shed.
        outbox.push(frame(1));
        assert!(matches!(outbox.recv_blocking(), Recv::Shed));
        drop(sender);
    }

    #[test]
    fn outbox_drains_coalesced_and_reports_idle() {
        let outbox = Outbox::new(1024, None);
        let sender = outbox.sender();
        outbox.push(frame(10));
        outbox.push(frame(5));
        let mut out = Vec::new();
        let state = outbox.drain_into(&mut out, usize::MAX);
        assert_eq!(out.len(), 15, "frames coalesce into one buffer");
        assert!(!state.shed);
        assert!(!state.idle, "a live sender means more may arrive");
        drop(sender);
        let state = outbox.drain_into(&mut out, usize::MAX);
        assert!(state.idle, "no senders + empty queue = idle");
    }

    #[test]
    fn outbox_recv_blocking_sees_disconnect_after_last_sender() {
        let outbox = Outbox::new(1024, None);
        let sender = outbox.sender();
        let consumer = {
            let outbox = Arc::clone(&outbox);
            std::thread::spawn(move || {
                let mut frames = 0;
                loop {
                    match outbox.recv_blocking() {
                        Recv::Batch(batch) => frames += batch.len(),
                        Recv::Shed => panic!("no shed expected"),
                        Recv::Disconnected => return frames,
                    }
                }
            })
        };
        let clone = sender.clone();
        outbox.push(frame(3));
        outbox.push(frame(4));
        drop(sender);
        std::thread::sleep(Duration::from_millis(10));
        outbox.push(frame(5));
        drop(clone);
        assert_eq!(consumer.join().unwrap(), 3, "every pushed frame is delivered first");
    }

    #[test]
    fn outbox_wake_hook_fires_on_push_and_shed() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let outbox = Outbox::new(8, Some(Arc::new(move || {
            h.fetch_add(1, Ordering::Relaxed);
        })));
        outbox.push(frame(4));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        outbox.push(frame(100)); // overflow → shed, still notified
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
