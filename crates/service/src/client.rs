//! Client library for `doppel-server`.
//!
//! [`RemoteClient`] is a synchronous, single-connection client: it frames
//! [`crate::wire::ClientMsg`]s onto a `TcpStream` and demultiplexes the
//! server's replies (completions arrive in completion order, which for
//! stash-deferred transactions is not submission order).

use crate::wire::{
    decode_server, encode_client_into, read_frame_into, write_frame, ClientMsg, ServerMsg,
    WireAbort, WireStmt,
};
use doppel_common::{Args, Key, Op, OrderKey, ProcResult, Value};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Builder for one wire transaction: a sequence of reads and write
/// operations executed as a single procedure on the server.
///
/// # Examples
///
/// ```
/// use doppel_common::Key;
/// use doppel_service::RemoteTxn;
///
/// let txn = RemoteTxn::new().add(Key::raw(1), 5).get(Key::raw(1));
/// assert_eq!(txn.stmts().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RemoteTxn {
    stmts: Vec<WireStmt>,
}

impl RemoteTxn {
    /// An empty transaction.
    pub fn new() -> Self {
        RemoteTxn::default()
    }

    /// The statements added so far.
    pub fn stmts(&self) -> &[WireStmt] {
        &self.stmts
    }

    /// Reads `k`; the result comes back with the completion, in statement
    /// order.
    pub fn get(mut self, k: Key) -> Self {
        self.stmts.push(WireStmt::Get(k));
        self
    }

    /// Applies an arbitrary write operation.
    pub fn write(mut self, k: Key, op: Op) -> Self {
        self.stmts.push(WireStmt::Write(k, op));
        self
    }

    /// `v[k] ← v[k] + n` (splittable).
    pub fn add(self, k: Key, n: i64) -> Self {
        self.write(k, Op::Add(n))
    }

    /// `v[k] ← max(v[k], n)` (splittable).
    pub fn max(self, k: Key, n: i64) -> Self {
        self.write(k, Op::Max(n))
    }

    /// Overwrites `k` with `v`.
    pub fn put(self, k: Key, v: Value) -> Self {
        self.write(k, Op::Put(v))
    }

    /// Inserts into the top-K set at `k` (splittable). The server fills in
    /// the executing core.
    pub fn topk_insert(self, k: Key, order: OrderKey, payload: bytes::Bytes, cap: usize) -> Self {
        self.write(k, Op::TopKInsert { order, core: 0, payload, k: cap })
    }
}

/// Final result of a remote submission.
#[derive(Clone, Debug, PartialEq)]
pub enum RemoteOutcome {
    /// The transaction committed.
    Committed {
        /// The commit TID (raw).
        tid: u64,
        /// Results of the transaction's `Get` statements, in order.
        values: Vec<Option<Value>>,
        /// Typed result of a registered-procedure invocation (`None` for raw
        /// statement-list submissions).
        proc_result: Option<ProcResult>,
        /// True when the transaction was stash-deferred before committing.
        deferred: bool,
    },
    /// The transaction aborted.
    Aborted {
        /// Why ([`WireAbort::is_retryable`] guides resubmission).
        code: WireAbort,
        /// True when the abort happened on a stash replay.
        deferred: bool,
    },
    /// The submission never reached a worker.
    Rejected {
        /// True for backpressure (retry later), false for server shutdown.
        busy: bool,
    },
}

impl RemoteOutcome {
    /// True when the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, RemoteOutcome::Committed { .. })
    }

    /// The committed `Get` results, when committed.
    pub fn values(&self) -> Option<&[Option<Value>]> {
        match self {
            RemoteOutcome::Committed { values, .. } => Some(values),
            _ => None,
        }
    }

    /// The committed procedure result, when this was a committed
    /// [`RemoteClient::call`].
    pub fn proc_result(&self) -> Option<&ProcResult> {
        match self {
            RemoteOutcome::Committed { proc_result, .. } => proc_result.as_ref(),
            _ => None,
        }
    }
}

/// A synchronous client connection to a `doppel-server`.
pub struct RemoteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Outcomes that arrived while waiting for a different request.
    buffered: HashMap<u64, RemoteOutcome>,
    /// Two-phase-commit votes that arrived while waiting for something else,
    /// keyed by request id: `(ok, prepare-read values)`.
    votes: HashMap<u64, (bool, Vec<Option<Value>>)>,
    deferred_seen: HashSet<u64>,
    /// Reused encode scratch: one buffer for every outgoing frame.
    wbuf: Vec<u8>,
    /// Reused receive buffer: frames decode in place, no per-reply allocation.
    rbuf: Vec<u8>,
}

impl RemoteClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<RemoteClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(RemoteClient {
            reader,
            writer,
            next_id: 0,
            buffered: HashMap::new(),
            votes: HashMap::new(),
            deferred_seen: HashSet::new(),
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        })
    }

    /// [`RemoteClient::connect`] with retries until `deadline` elapses,
    /// backing off 1 ms → 2 ms → … → 128 ms (capped) between attempts.
    ///
    /// Connecting to a cluster races server start-up (and, for a shard
    /// router re-delivering a commit decision, server *restart*), so refusal
    /// is expected and transient. Errors carry the address they were dialing:
    /// in a multi-shard deployment "connection refused" without the address
    /// is undebuggable.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + std::fmt::Display,
        deadline: Duration,
    ) -> io::Result<RemoteClient> {
        let start = Instant::now();
        let mut backoff = Duration::from_millis(1);
        loop {
            match RemoteClient::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if start.elapsed() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!(
                                "connect to {addr} failed after {:?}: {e}",
                                start.elapsed()
                            ),
                        ));
                    }
                    std::thread::sleep(backoff.min(deadline.saturating_sub(start.elapsed())));
                    backoff = (backoff * 2).min(Duration::from_millis(128));
                }
            }
        }
    }

    fn write_msg(&mut self, msg: &ClientMsg) -> io::Result<()> {
        encode_client_into(msg, &mut self.wbuf);
        write_frame(&mut self.writer, &self.wbuf)
    }

    fn send(&mut self, msg: &ClientMsg) -> io::Result<()> {
        self.write_msg(msg)?;
        self.writer.flush()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Submits a transaction without waiting; returns its request id.
    pub fn submit(&mut self, txn: &RemoteTxn) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&ClientMsg::Submit { id, stmts: txn.stmts.clone() })?;
        Ok(id)
    }

    /// Submits a raw statement list without waiting; returns its request id.
    pub fn submit_stmts(&mut self, stmts: Vec<WireStmt>) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&ClientMsg::Submit { id, stmts })?;
        Ok(id)
    }

    /// Writes a submission without flushing, for cross-connection
    /// pipelining (the shard router queues every shard's frames before any
    /// flush). Pair with [`RemoteClient::flush`].
    pub fn queue_stmts(&mut self, stmts: Vec<WireStmt>) -> io::Result<u64> {
        let id = self.fresh_id();
        self.write_msg(&ClientMsg::Submit { id, stmts })?;
        Ok(id)
    }

    /// Flushes every queued frame to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// True once a `Deferred` notice for `id` has been observed.
    pub fn was_deferred(&self, id: u64) -> bool {
        self.deferred_seen.contains(&id)
    }

    fn read_msg(&mut self) -> io::Result<ServerMsg> {
        if !read_frame_into(&mut self.reader, &mut self.rbuf)? {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        decode_server(&self.rbuf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn absorb(&mut self, msg: ServerMsg) -> Option<(u64, RemoteOutcome)> {
        match msg {
            ServerMsg::Deferred { id } => {
                self.deferred_seen.insert(id);
                None
            }
            ServerMsg::Done(done) => {
                let outcome = match done.result {
                    Ok(tid) => RemoteOutcome::Committed {
                        tid,
                        values: done.values,
                        proc_result: done.proc_result,
                        deferred: done.deferred,
                    },
                    Err(code) => RemoteOutcome::Aborted { code, deferred: done.deferred },
                };
                Some((done.id, outcome))
            }
            ServerMsg::Rejected { id, busy } => Some((id, RemoteOutcome::Rejected { busy })),
            ServerMsg::Ack { id } => Some((id, RemoteOutcome::Committed {
                tid: 0,
                values: Vec::new(),
                proc_result: None,
                deferred: false,
            })),
            ServerMsg::Vote { id, ok, values, .. } => {
                self.votes.insert(id, (ok, values));
                None
            }
            // A Stats reply is consumed synchronously by `stats()`; one
            // reaching the outcome demultiplexer is stale — drop it.
            ServerMsg::Stats { .. } => None,
        }
    }

    /// Blocks until the outcome for `id` arrives, buffering other replies.
    pub fn wait(&mut self, id: u64) -> io::Result<RemoteOutcome> {
        if let Some(done) = self.buffered.remove(&id) {
            return Ok(done);
        }
        loop {
            let msg = self.read_msg()?;
            if let Some((done_id, outcome)) = self.absorb(msg) {
                if done_id == id {
                    return Ok(outcome);
                }
                self.buffered.insert(done_id, outcome);
            }
        }
    }

    /// Submit-and-wait convenience.
    pub fn execute(&mut self, txn: &RemoteTxn) -> io::Result<RemoteOutcome> {
        let id = self.submit(txn)?;
        self.wait(id)
    }

    /// Pipelines a batch of transactions: every frame is written before the
    /// single flush, so the batch costs one network round trip. Returns the
    /// request ids in submission order; collect with [`RemoteClient::wait`].
    pub fn submit_many(&mut self, txns: &[RemoteTxn]) -> io::Result<Vec<u64>> {
        let mut ids = Vec::with_capacity(txns.len());
        for txn in txns {
            let id = self.fresh_id();
            self.write_msg(&ClientMsg::Submit { id, stmts: txn.stmts.clone() })?;
            ids.push(id);
        }
        self.writer.flush()?;
        Ok(ids)
    }

    /// Sends a two-phase-commit `Prepare` for this shard's slice of
    /// distributed transaction `txid`; returns the request id to pass to
    /// [`RemoteClient::wait_vote`].
    pub fn send_prepare(&mut self, txid: u64, stmts: Vec<WireStmt>) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&ClientMsg::Prepare { id, txid, stmts })?;
        Ok(id)
    }

    /// Blocks until the shard's vote for prepare-request `id` arrives:
    /// `(ok, values)` where `values` are the slice's `Get` results read
    /// under the prepare locks (yes-votes only). Other replies are buffered
    /// exactly as [`RemoteClient::wait`] would.
    pub fn wait_vote(&mut self, id: u64) -> io::Result<(bool, Vec<Option<Value>>)> {
        loop {
            if let Some(vote) = self.votes.remove(&id) {
                return Ok(vote);
            }
            let msg = self.read_msg()?;
            if let Some((done_id, outcome)) = self.absorb(msg) {
                self.buffered.insert(done_id, outcome);
            }
        }
    }

    /// Sends the coordinator's decision for `txid`; returns the request id.
    /// The shard acknowledges an abort immediately; a commit completes once
    /// the prepared writes are applied (wait with [`RemoteClient::wait`] —
    /// a retryable [`RemoteOutcome::Aborted`] or [`RemoteOutcome::Rejected`]
    /// means re-deliver the decision).
    pub fn send_decide(&mut self, txid: u64, commit: bool) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&ClientMsg::Decide { id, txid, commit })?;
        Ok(id)
    }

    /// Submits a registered-procedure invocation without waiting; returns
    /// its request id. The server resolves `name` in its
    /// [`doppel_common::ProcRegistry`]; an unregistered name completes as
    /// [`RemoteOutcome::Aborted`] with [`WireAbort::UnknownProc`].
    pub fn submit_call(&mut self, name: &str, args: Args) -> io::Result<u64> {
        let id = self.fresh_id();
        self.send(&ClientMsg::InvokeProc { id, proc: name.to_string(), args })?;
        Ok(id)
    }

    /// Invoke-and-wait convenience: the typed remote call. On commit the
    /// outcome carries the procedure's [`ProcResult`]
    /// ([`RemoteOutcome::proc_result`]).
    pub fn call(&mut self, name: &str, args: Args) -> io::Result<RemoteOutcome> {
        let id = self.submit_call(name, args)?;
        self.wait(id)
    }

    /// Pipelines a batch of invocations: every frame is written (and flushed
    /// once) before the first reply is awaited, so a batch costs one network
    /// round trip instead of one per invocation. Returns the request ids in
    /// submission order; collect outcomes with [`RemoteClient::wait`].
    pub fn submit_batch(&mut self, calls: &[(&str, Args)]) -> io::Result<Vec<u64>> {
        let mut ids = Vec::with_capacity(calls.len());
        for (name, args) in calls {
            let id = self.fresh_id();
            let msg =
                ClientMsg::InvokeProc { id, proc: name.to_string(), args: args.clone() };
            self.write_msg(&msg)?;
            ids.push(id);
        }
        self.writer.flush()?;
        Ok(ids)
    }

    /// Labels `key` split for `op`'s kind on the server (Doppel only; other
    /// engines acknowledge and ignore).
    pub fn label_split(&mut self, key: Key, op: Op) -> io::Result<()> {
        let id = self.fresh_id();
        self.send(&ClientMsg::LabelSplit { id, key, op })?;
        self.wait(id).map(|_| ())
    }

    /// Round-trip liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let id = self.fresh_id();
        self.send(&ClientMsg::Ping { id })?;
        self.wait(id).map(|_| ())
    }

    /// Polls the server's telemetry: engine counters, latency histograms,
    /// the current phase, hot keys and per-procedure statistics, as one
    /// [`crate::TelemetrySnapshot`].
    ///
    /// A `Stats` reply is not a transaction outcome, so this runs its own
    /// read loop: replies for other in-flight requests are buffered exactly
    /// as [`RemoteClient::wait`] would.
    pub fn stats(&mut self) -> io::Result<crate::TelemetrySnapshot> {
        let id = self.fresh_id();
        self.send(&ClientMsg::GetStats { id })?;
        loop {
            let msg = self.read_msg()?;
            if let ServerMsg::Stats { id: got, snapshot } = msg {
                if got == id {
                    return Ok(*snapshot);
                }
                // A stale Stats reply (ours is still in flight) has no home
                // in the outcome buffer; drop it.
                continue;
            }
            if let Some((done_id, outcome)) = self.absorb(msg) {
                self.buffered.insert(done_id, outcome);
            }
        }
    }
}
