//! The transaction service: engine-owned workers fed by submission queues.
//!
//! This is the paper's deployment model (§3, §6) made concrete: clients
//! submit [`Procedure`]s, one worker thread per core executes them. The
//! pipeline is the classic request decomposition — admission → queue →
//! execute → complete — with backpressure at the admission boundary:
//!
//! ```text
//!  clients ──submit──► [bounded queue per core] ──batched pop──► worker
//!     ▲                       │ full?                              │
//!     └──── Busy ◄────────────┘              Done / Deferred ◄─────┘
//! ```
//!
//! Two entry points share the same machinery:
//!
//! * [`ServiceState`] — the queue/dispatch core. It owns no threads, so a
//!   benchmark can run its worker loops on scoped threads borrowing a stack
//!   engine (`doppel_workloads::Driver` does exactly that).
//! * [`TransactionService`] — the owned flavour: spawns one worker thread
//!   per core over an `Arc<dyn Engine>` and tears everything down in
//!   [`TransactionService::shutdown`]. The TCP server builds on this.

use crate::queue::{PushError, SubmissionQueue};
use doppel_common::{
    Engine, EngineStats, Outcome, Procedure, RequestId, ServiceCompletion, ServiceReply,
    StatsSnapshot, SubmitError, Ticket, TxError, TxHandle,
};
use doppel_telemetry::trace::{self, EventKind};
use doppel_telemetry::{Registry, SharedHistogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a completion goes. Each submission carries its own sink so one
/// service can serve many independent clients (benchmark threads, TCP
/// connections) without a central completion router.
pub type ReplySink = Arc<dyn Fn(ServiceReply) + Send + Sync>;

/// Tuning knobs for a service instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Depth cap of each per-core submission queue; a full queue rejects
    /// submissions with [`SubmitError::Busy`].
    pub queue_depth: usize,
    /// Maximum procedures dequeued (and executed) per batch.
    pub batch_max: usize,
    /// How long an idle worker parks before passing an engine safepoint.
    /// Bounds how long an idle worker can delay a Doppel phase transition.
    pub idle_poll: Duration,
    /// How long a draining worker keeps passing safepoints waiting for
    /// stash-deferred procedures to replay before aborting them with
    /// [`TxError::Shutdown`].
    pub drain_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 1024,
            batch_max: 64,
            idle_poll: Duration::from_micros(200),
            drain_timeout: Duration::from_secs(2),
        }
    }
}

/// One queued submission.
struct Request {
    id: RequestId,
    proc: Arc<dyn Procedure>,
    reply: ReplySink,
    enqueued_at: Instant,
}

/// The thread-agnostic service core: submission queues, dispatch loop and
/// queue statistics. See the module docs for how [`TransactionService`] and
/// the benchmark driver layer on top.
pub struct ServiceState {
    queues: Vec<SubmissionQueue<Request>>,
    config: ServiceConfig,
    /// Queue-side counters (`queue_*`); the engine owns everything else.
    /// Combined views come from [`ServiceState::stats_with_queues`].
    qstats: EngineStats,
    next_core: AtomicUsize,
    /// Service-side latency metrics: time spent queued vs. executing.
    telemetry: Arc<Registry>,
    hist_queue_wait: Arc<SharedHistogram>,
    hist_exec: Arc<SharedHistogram>,
}

impl ServiceState {
    /// Creates the core for `workers` cores.
    pub fn new(workers: usize, config: ServiceConfig) -> Self {
        assert!(workers > 0, "a service needs at least one worker");
        let telemetry = Arc::new(Registry::new());
        let hist_queue_wait = telemetry.histogram("queue_wait");
        let hist_exec = telemetry.histogram("exec");
        ServiceState {
            queues: (0..workers).map(|_| SubmissionQueue::new(config.queue_depth)).collect(),
            qstats: EngineStats::new(),
            next_core: AtomicUsize::new(0),
            config,
            telemetry,
            hist_queue_wait,
            hist_exec,
        }
    }

    /// The service-side metrics registry (`queue_wait` / `exec` histograms).
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Number of worker cores (= submission queues).
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Submits `proc` to a specific core's queue. `reply` receives a
    /// [`ServiceReply::Done`] (and possibly a [`ServiceReply::Deferred`]
    /// first); a rejection is returned synchronously instead.
    pub fn submit_to(
        &self,
        core: usize,
        id: RequestId,
        proc: Arc<dyn Procedure>,
        reply: ReplySink,
    ) -> Result<(), SubmitError> {
        let queue = &self.queues[core];
        // The depth gauge is raised *before* the push: once the item is in
        // the queue a worker may pop and decrement at any moment, and
        // raising first guarantees the increment happens-before that
        // decrement (no transient u64 underflow in concurrent snapshots).
        self.qstats.queue_depth.fetch_add(1, Ordering::Relaxed);
        match queue.try_push(Request { id, proc, reply, enqueued_at: Instant::now() }) {
            Ok(()) => {
                EngineStats::bump(&self.qstats.queue_enqueued);
                trace::instant(EventKind::TxnEnqueue, id.0);
                Ok(())
            }
            Err(e) => {
                self.qstats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    PushError::Full => {
                        EngineStats::bump(&self.qstats.queue_busy_rejections);
                        Err(SubmitError::Busy)
                    }
                    PushError::Closed => Err(SubmitError::Shutdown),
                }
            }
        }
    }

    /// Submits `proc` to the next core round-robin; returns the core chosen.
    pub fn submit(
        &self,
        id: RequestId,
        proc: Arc<dyn Procedure>,
        reply: ReplySink,
    ) -> Result<usize, SubmitError> {
        let core = self.next_core.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.submit_to(core, id, proc, reply).map(|()| core)
    }

    /// Closes every submission queue: new submissions fail with
    /// [`SubmitError::Shutdown`], queued work still executes, and workers
    /// move into their drain sequence once their queue is empty.
    pub fn close(&self) {
        for q in &self.queues {
            q.close();
        }
    }

    /// True once [`ServiceState::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.queues[0].is_closed()
    }

    /// Snapshot of the queue-side counters (all engine counters zero).
    pub fn queue_stats(&self) -> StatsSnapshot {
        self.qstats.snapshot()
    }

    /// The engine's statistics with this service's queue counters overlaid —
    /// the one snapshot benchmarks and reports should consume.
    pub fn stats_with_queues(&self, engine: &dyn Engine) -> StatsSnapshot {
        engine.stats().with_queue_counters(&self.queue_stats())
    }

    /// The worker loop for `core`: owns the core's [`TxHandle`], dequeues in
    /// batches, executes, routes completions (including stash-deferred ones)
    /// and performs the graceful drain once the queue closes. Run this on a
    /// dedicated thread — one per core, exactly once per core id.
    pub fn worker_loop(&self, engine: &dyn Engine, core: usize) {
        let mut handle = engine.handle(core);
        let queue = &self.queues[core];
        let mut batch: Vec<Request> = Vec::with_capacity(self.config.batch_max);
        // Stash-deferred procedures in flight on this worker (the procedure
        // rides along so registered calls get their final outcome counted).
        let mut deferred: HashMap<Ticket, (RequestId, ReplySink, Arc<dyn Procedure>)> =
            HashMap::new();

        loop {
            let open = queue.pop_batch(self.config.batch_max, self.config.idle_poll, &mut batch);
            if batch.is_empty() {
                if !open {
                    break;
                }
                // Idle: keep passing safepoints so phase transitions are
                // never held up, and keep delivering stash replays.
                handle.safepoint();
                Self::deliver_completions(handle.as_mut(), &mut deferred);
                continue;
            }
            self.qstats.queue_depth.fetch_sub(batch.len() as u64, Ordering::Relaxed);
            EngineStats::bump(&self.qstats.queue_batches);
            for req in batch.drain(..) {
                let exec_started = Instant::now();
                self.hist_queue_wait
                    .record(core, exec_started.saturating_duration_since(req.enqueued_at));
                let outcome = handle.execute(Arc::clone(&req.proc));
                self.hist_exec.record(core, exec_started.elapsed());
                trace::span_since(EventKind::TxnExec, req.id.0, exec_started);
                match outcome {
                    Outcome::Committed(tid) => {
                        if let Some(s) = req.proc.proc_stats() {
                            s.note_outcome(core, true);
                        }
                        trace::instant(EventKind::TxnCommit, req.id.0);
                        (req.reply)(ServiceReply::Done(ServiceCompletion {
                            request: req.id,
                            result: Ok(tid),
                            deferred: false,
                        }))
                    }
                    Outcome::Aborted(e) => {
                        if let Some(s) = req.proc.proc_stats() {
                            s.note_outcome(core, false);
                        }
                        trace::instant(EventKind::TxnAbort, req.id.0);
                        (req.reply)(ServiceReply::Done(ServiceCompletion {
                            request: req.id,
                            result: Err(e),
                            deferred: false,
                        }))
                    }
                    Outcome::Stashed(ticket) => {
                        if let Some(s) = req.proc.proc_stats() {
                            s.note_deferral(core);
                        }
                        (req.reply)(ServiceReply::Deferred(req.id));
                        deferred.insert(ticket, (req.id, req.reply, req.proc));
                    }
                }
            }
            Self::deliver_completions(handle.as_mut(), &mut deferred);
            if !open {
                break;
            }
        }

        // Graceful drain: the queue is closed and empty. Keep passing
        // safepoints so the engine can finish phase transitions and replay
        // this worker's stash; everything still deferred at the deadline is
        // aborted with `Shutdown` so no client waits forever.
        let deadline = Instant::now() + self.config.drain_timeout;
        while !deferred.is_empty() && Instant::now() < deadline {
            handle.safepoint();
            Self::deliver_completions(handle.as_mut(), &mut deferred);
            if deferred.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        for (_, (id, reply, proc)) in deferred.drain() {
            if let Some(s) = proc.proc_stats() {
                s.note_outcome(core, false);
            }
            reply(ServiceReply::Done(ServiceCompletion {
                request: id,
                result: Err(TxError::Shutdown),
                deferred: true,
            }));
        }
        // The handle drops here: a Doppel worker merges its remaining slices
        // and unregisters from the phase barrier.
    }

    fn deliver_completions(
        handle: &mut dyn TxHandle,
        deferred: &mut HashMap<Ticket, (RequestId, ReplySink, Arc<dyn Procedure>)>,
    ) {
        if deferred.is_empty() {
            return;
        }
        let core = handle.core();
        for completion in handle.take_completions() {
            if let Some((id, reply, proc)) = deferred.remove(&completion.ticket) {
                if let Some(s) = proc.proc_stats() {
                    s.note_outcome(core, completion.result.is_ok());
                }
                reply(ServiceReply::Done(ServiceCompletion {
                    request: id,
                    result: completion.result,
                    deferred: true,
                }));
            }
        }
    }
}

/// The owned transaction service: spawns one worker thread per engine core
/// and tears them down (with a graceful drain) in
/// [`TransactionService::shutdown`].
///
/// # Examples
///
/// ```
/// use doppel_common::{Engine, Key, ProcedureFn, Value};
/// use doppel_service::{ServiceConfig, TransactionService};
/// use std::sync::Arc;
///
/// let engine = Arc::new(doppel_occ::OccEngine::new(2, 64));
/// engine.load(Key::raw(1), Value::Int(0));
/// let service = TransactionService::start(engine.clone(), ServiceConfig::default());
/// let mut client = service.client();
/// let id = client.submit(Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)))).unwrap();
/// assert!(client.wait(id).result.is_ok());
/// service.shutdown();
/// assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(1)));
/// ```
pub struct TransactionService {
    state: Arc<ServiceState>,
    engine: Arc<dyn Engine>,
    workers: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

impl TransactionService {
    /// Starts one worker thread per engine core.
    pub fn start(engine: Arc<dyn Engine>, config: ServiceConfig) -> Arc<TransactionService> {
        let state = Arc::new(ServiceState::new(engine.workers(), config));
        let mut workers = Vec::with_capacity(engine.workers());
        for core in 0..engine.workers() {
            let state = Arc::clone(&state);
            let engine = Arc::clone(&engine);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("doppel-service-{core}"))
                    .spawn(move || state.worker_loop(engine.as_ref(), core))
                    .expect("failed to spawn service worker"),
            );
        }
        Arc::new(TransactionService { state, engine, workers: parking_lot::Mutex::new(workers) })
    }

    /// The engine this service fronts.
    pub fn engine(&self) -> &Arc<dyn Engine> {
        &self.engine
    }

    /// Number of worker cores.
    pub fn workers(&self) -> usize {
        self.state.workers()
    }

    /// See [`ServiceState::submit`].
    pub fn submit(
        &self,
        id: RequestId,
        proc: Arc<dyn Procedure>,
        reply: ReplySink,
    ) -> Result<usize, SubmitError> {
        self.state.submit(id, proc, reply)
    }

    /// See [`ServiceState::submit_to`].
    pub fn submit_to(
        &self,
        core: usize,
        id: RequestId,
        proc: Arc<dyn Procedure>,
        reply: ReplySink,
    ) -> Result<(), SubmitError> {
        self.state.submit_to(core, id, proc, reply)
    }

    /// Engine statistics with the queue counters overlaid.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.stats_with_queues(self.engine.as_ref())
    }

    /// The service-side metrics registry (`queue_wait` / `exec` histograms).
    pub fn telemetry(&self) -> &Arc<doppel_telemetry::Registry> {
        self.state.telemetry()
    }

    /// Creates a client with its own completion channel.
    pub fn client(self: &Arc<Self>) -> ServiceClient {
        ServiceClient::new(Arc::clone(self))
    }

    /// Graceful drain and shutdown: close the queues (new submissions are
    /// rejected with [`SubmitError::Shutdown`]), let workers finish queued
    /// work and replay Doppel stashes, join the worker threads, then shut
    /// the engine down (which flushes any pending WAL group-commit batch).
    /// Idempotent.
    pub fn shutdown(&self) {
        self.state.close();
        self.engine.begin_drain();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
        self.engine.shutdown();
    }
}

impl Drop for TransactionService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A synchronous client of a [`TransactionService`]: submits procedures and
/// collects typed completions over a private channel.
pub struct ServiceClient {
    service: Arc<TransactionService>,
    sink: ReplySink,
    rx: Receiver<ServiceReply>,
    next_id: u64,
    /// Completions that arrived while waiting for a different request.
    buffered: HashMap<RequestId, ServiceCompletion>,
    /// Requests for which a `Deferred` notice has been observed.
    deferred_seen: std::collections::HashSet<RequestId>,
}

impl ServiceClient {
    fn new(service: Arc<TransactionService>) -> Self {
        let (tx, rx): (Sender<ServiceReply>, Receiver<ServiceReply>) = std::sync::mpsc::channel();
        let sink: ReplySink = Arc::new(move |reply| {
            let _ = tx.send(reply);
        });
        ServiceClient {
            service,
            sink,
            rx,
            next_id: 0,
            buffered: HashMap::new(),
            deferred_seen: std::collections::HashSet::new(),
        }
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// Submits to the next core round-robin.
    pub fn submit(&mut self, proc: Arc<dyn Procedure>) -> Result<RequestId, SubmitError> {
        let id = self.fresh_id();
        self.service.submit(id, proc, Arc::clone(&self.sink))?;
        Ok(id)
    }

    /// Submits to a specific core.
    pub fn submit_to(
        &mut self,
        core: usize,
        proc: Arc<dyn Procedure>,
    ) -> Result<RequestId, SubmitError> {
        let id = self.fresh_id();
        self.service.submit_to(core, id, proc, Arc::clone(&self.sink))?;
        Ok(id)
    }

    /// True once a `Deferred` notice for `id` has been observed (the
    /// procedure was stashed by a Doppel split phase).
    pub fn was_deferred(&self, id: RequestId) -> bool {
        self.deferred_seen.contains(&id)
    }

    fn absorb(&mut self, reply: ServiceReply) -> Option<ServiceCompletion> {
        match reply {
            ServiceReply::Deferred(id) => {
                self.deferred_seen.insert(id);
                None
            }
            ServiceReply::Done(c) => Some(c),
        }
    }

    /// Blocks until the completion for `id` arrives, buffering completions
    /// of other requests. Panics if the service dropped the channel without
    /// completing `id` (cannot happen through the public API: every accepted
    /// submission is completed, by `Shutdown` at worst).
    pub fn wait(&mut self, id: RequestId) -> ServiceCompletion {
        if let Some(done) = self.buffered.remove(&id) {
            return done;
        }
        loop {
            let reply = self.rx.recv().expect("service completed all accepted submissions");
            if let Some(done) = self.absorb(reply) {
                if done.request == id {
                    return done;
                }
                self.buffered.insert(done.request, done);
            }
        }
    }

    /// Non-blocking drain: returns every completion that has arrived.
    pub fn poll_completions(&mut self) -> Vec<ServiceCompletion> {
        let mut out: Vec<ServiceCompletion> = self.buffered.drain().map(|(_, c)| c).collect();
        while let Ok(reply) = self.rx.try_recv() {
            if let Some(done) = self.absorb(reply) {
                out.push(done);
            }
        }
        out
    }

    /// Blocks up to `timeout` for one completion.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<ServiceCompletion> {
        let buffered_first = self.buffered.keys().next().copied();
        if let Some(id) = buffered_first {
            return self.buffered.remove(&id);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok(reply) => {
                    if let Some(done) = self.absorb(reply) {
                        return Some(done);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Submit-and-wait convenience: the synchronous call style of the old
    /// direct `TxHandle` interface, now one queue hop away. Backpressure is
    /// absorbed here — a `Busy` admission waits for the queue to move, the
    /// natural closed-loop behaviour — so the only error surfaced is a real
    /// transaction abort (or [`TxError::Shutdown`] once the service drains).
    pub fn execute(&mut self, proc: Arc<dyn Procedure>) -> Result<doppel_common::Tid, TxError> {
        loop {
            match self.submit(Arc::clone(&proc)) {
                Ok(id) => return self.wait(id).result,
                Err(SubmitError::Busy) => std::thread::sleep(Duration::from_micros(20)),
                Err(SubmitError::Shutdown) => return Err(TxError::Shutdown),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{DoppelConfig, Key, OpKind, ProcedureFn, Value};

    fn incr(key: u64, n: i64) -> Arc<dyn Procedure> {
        Arc::new(ProcedureFn::new("incr", move |tx| tx.add(Key::raw(key), n)))
    }

    #[test]
    fn occ_service_commits_and_counts() {
        let engine = Arc::new(doppel_occ::OccEngine::new(2, 64));
        for k in 0..4 {
            engine.load(Key::raw(k), Value::Int(0));
        }
        let service = TransactionService::start(engine.clone(), ServiceConfig::default());
        let mut client = service.client();
        let mut ids = Vec::new();
        for i in 0..100u64 {
            ids.push(client.submit(incr(i % 4, 1)).unwrap());
        }
        for id in ids {
            assert!(client.wait(id).result.is_ok());
        }
        let stats = service.stats();
        assert_eq!(stats.queue_enqueued, 100);
        assert!(stats.queue_batches > 0);
        assert!(stats.queue_batches <= 100);
        service.shutdown();
        let total: i64 = (0..4)
            .map(|k| engine.global_get(Key::raw(k)).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn busy_backpressure_surfaces_and_counts() {
        // One worker, tiny queue: the worker is slow because every procedure
        // sleeps, so the queue fills and later submissions bounce.
        let engine = Arc::new(doppel_occ::OccEngine::new(1, 16));
        engine.load(Key::raw(1), Value::Int(0));
        let cfg = ServiceConfig { queue_depth: 2, ..Default::default() };
        let service = TransactionService::start(engine, cfg);
        let mut client = service.client();
        let slow: Arc<dyn Procedure> = Arc::new(ProcedureFn::new("slow", |tx| {
            std::thread::sleep(Duration::from_millis(5));
            tx.add(Key::raw(1), 1)
        }));
        let mut accepted = 0;
        let mut busy = 0;
        for _ in 0..50 {
            match client.submit(Arc::clone(&slow)) {
                Ok(_) => accepted += 1,
                Err(SubmitError::Busy) => busy += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(busy > 0, "a depth-2 queue must reject under this burst");
        assert_eq!(service.stats().queue_busy_rejections, busy);
        // Everything accepted still completes.
        let mut done = 0;
        while done < accepted {
            if client.recv_timeout(Duration::from_secs(5)).is_some() {
                done += 1;
            } else {
                panic!("timed out waiting for completions");
            }
        }
        service.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let engine = Arc::new(doppel_occ::OccEngine::new(1, 16));
        let service = TransactionService::start(engine, ServiceConfig::default());
        let mut client = service.client();
        service.shutdown();
        assert_eq!(client.submit(incr(1, 1)).unwrap_err(), SubmitError::Shutdown);
        assert_eq!(client.execute(incr(1, 1)), Err(TxError::Shutdown));
    }

    #[test]
    fn doppel_stash_defers_then_completes_through_the_service() {
        // Coordinator-driven Doppel with a manually labelled split key: a
        // read of that key during a split phase is stashed; the service must
        // surface Deferred and later the replayed completion.
        let cfg = DoppelConfig {
            workers: 1,
            phase_len: Duration::from_millis(5),
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let db = Arc::new(doppel_db::DoppelDb::start(cfg));
        db.load(Key::raw(7), Value::Int(0));
        db.label_split(Key::raw(7), OpKind::Add);
        let service = TransactionService::start(db.clone(), ServiceConfig::default());
        let mut client = service.client();

        let read: Arc<dyn Procedure> =
            Arc::new(ProcedureFn::read_only("read", |tx| tx.get(Key::raw(7)).map(|_| ())));
        let mut deferred_id = None;
        let deadline = Instant::now() + Duration::from_secs(10);
        while deferred_id.is_none() && Instant::now() < deadline {
            // Keep the key hot so it stays split, and probe with reads.
            for _ in 0..20 {
                let _ = client.submit(incr(7, 1));
            }
            let id = client.submit(Arc::clone(&read)).unwrap();
            let done = client.wait(id);
            assert!(done.result.is_ok(), "read must eventually commit: {:?}", done.result);
            if done.deferred {
                assert!(client.was_deferred(id), "Deferred notice precedes the completion");
                deferred_id = Some(id);
            }
        }
        assert!(deferred_id.is_some(), "no read was stash-deferred within the deadline");
        service.shutdown();
        // Every accepted increment was reconciled by the drain.
        let committed = client.poll_completions().iter().filter(|c| c.result.is_ok()).count();
        let _ = committed; // increments may still be in flight counts; the store is the truth:
        assert!(db.global_get(Key::raw(7)).unwrap().as_int().unwrap() > 0);
    }

    #[test]
    fn drain_replays_doppel_stashes_before_shutdown_completes() {
        let cfg = DoppelConfig {
            workers: 1,
            phase_len: Duration::from_millis(5),
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let db = Arc::new(doppel_db::DoppelDb::start(cfg));
        db.load(Key::raw(3), Value::Int(10));
        db.label_split(Key::raw(3), OpKind::Add);
        let service = TransactionService::start(db.clone(), ServiceConfig::default());
        let mut client = service.client();

        // Collect some stash-deferred reads, then shut down immediately: the
        // drain must replay them (completions Ok), not abort them.
        let read: Arc<dyn Procedure> =
            Arc::new(ProcedureFn::read_only("read", |tx| tx.get(Key::raw(3)).map(|_| ())));
        let mut ids = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while ids.is_empty() && Instant::now() < deadline {
            for _ in 0..10 {
                let _ = client.submit(incr(3, 1));
            }
            let id = client.submit(Arc::clone(&read)).unwrap();
            // Wait briefly for a Deferred notice without consuming the Done.
            std::thread::sleep(Duration::from_millis(1));
            let _ = client.poll_completions();
            if client.was_deferred(id) {
                ids.push(id);
            }
        }
        service.shutdown();
        if let Some(&id) = ids.first() {
            // The completion was delivered during the drain.
            let done = self::find_completion(&mut client, id);
            assert!(done.deferred);
            assert!(done.result.is_ok(), "drain must replay the stash, got {:?}", done.result);
        }
    }

    fn find_completion(client: &mut ServiceClient, id: RequestId) -> ServiceCompletion {
        if let Some(c) = client.buffered.remove(&id) {
            return c;
        }
        for c in client.poll_completions() {
            if c.request == id {
                return c;
            }
            client.buffered.insert(c.request, c);
        }
        panic!("completion for {id} was never delivered");
    }
}
