//! The self-describing telemetry bundle shipped in a `StatsReply`.
//!
//! A [`TelemetrySnapshot`] deliberately carries *named* values rather than a
//! fixed struct layout: every scalar is a `(name, value)` pair and every
//! histogram a `(name, Histogram)` pair, so `doppel-stat` (and any future
//! consumer) renders whatever the server sends without the client and server
//! having to agree on a field list. Adding a metric on the server is a
//! one-sided change.
//!
//! Histograms travel as their exact bucket arrays (sparsely encoded — only
//! non-zero buckets are shipped), so the client can compute any quantile and
//! *delta* two polls bucket-wise for interval percentiles, which a
//! pre-digested `p99` figure would not allow.

use doppel_common::{ProcStatsSnapshot, StatsSnapshot, TuneDecision};
use doppel_telemetry::{Histogram, HotKey, MetricsSnapshot};
use doppel_wal::codec::{put_slice, put_u32, put_u64, Dec};
use doppel_wal::CodecError;

/// Everything a server knows about itself, snapshotted at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Named scalar values: the engine's [`StatsSnapshot`] counters, the
    /// front-end's network counters, queue depths — flattened into one
    /// self-describing list.
    pub scalars: Vec<(String, u64)>,
    /// Named latency histograms (phase durations, stash replay, queue wait,
    /// execution), as full bucket arrays.
    pub hists: Vec<(String, Histogram)>,
    /// The hottest keys by sampled conflict hits, descending. Keys are the
    /// lossy [`doppel_common::Key::heat_token`] packing.
    pub hot_keys: Vec<HotKey>,
    /// The engine's current phase: `"joined"`, `"split"`, or `"-"` for
    /// engines without phase reconciliation.
    pub phase: String,
    /// Per-procedure counters from the server's procedure registry.
    pub procs: Vec<ProcStatsSnapshot>,
    /// The adaptive contention controller's live state, when the server runs
    /// with `--adaptive`. `None` on non-Doppel engines, servers started
    /// without the tuner, and snapshots from older servers (the section is
    /// a trailing extension of the wire format).
    pub tuner: Option<TunerSnapshot>,
}

/// What the adaptive tuner reports about itself: where the control loop has
/// steered the engine and the recent decisions that got it there.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TunerSnapshot {
    /// Control-loop epochs completed since the server started.
    pub epochs: u64,
    /// The phase length the tuner currently has the coordinator running at,
    /// in microseconds. Zero in a merged multi-shard view whose shards
    /// disagree (rendered as `"mixed"`).
    pub phase_len_us: u64,
    /// The current split set as lossy [`doppel_common::Key::heat_token`]
    /// packings, matching the encoding of `hot_keys`.
    pub split_keys: Vec<u64>,
    /// The most recent decisions, oldest first, each with a reason string.
    pub decisions: Vec<TuneDecision>,
}

impl TelemetrySnapshot {
    /// The scalar named `name`, when present.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, when present.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Folds a [`MetricsSnapshot`] (a registry's worth of metrics) into this
    /// bundle.
    pub fn absorb_metrics(&mut self, m: MetricsSnapshot) {
        let mut base = MetricsSnapshot {
            scalars: std::mem::take(&mut self.scalars),
            hists: std::mem::take(&mut self.hists),
            hot_keys: std::mem::take(&mut self.hot_keys),
        };
        base.absorb(m);
        self.scalars = base.scalars;
        self.hists = base.hists;
        self.hot_keys = base.hot_keys;
    }

    /// Overlays the engine's counter snapshot as named scalars.
    pub fn absorb_stats(&mut self, stats: &StatsSnapshot) {
        for (name, value) in stats.named_fields() {
            self.scalars.push((name.to_string(), value));
        }
    }

    /// Folds another server's snapshot into this one, producing a cluster
    /// view: scalars sum by name, histograms merge bucket-wise, hot keys
    /// re-rank, per-procedure counters sum by procedure. Phases that differ
    /// across shards render as `"mixed"`.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.absorb_metrics(MetricsSnapshot {
            scalars: other.scalars.clone(),
            hists: other.hists.clone(),
            hot_keys: other.hot_keys.clone(),
        });
        for p in &other.procs {
            match self.procs.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.invocations += p.invocations;
                    q.commits += p.commits;
                    q.aborts += p.aborts;
                    q.deferrals += p.deferrals;
                }
                None => self.procs.push(p.clone()),
            }
        }
        if self.phase.is_empty() {
            self.phase = other.phase.clone();
        } else if self.phase != other.phase {
            self.phase = "mixed".into();
        }
        match (&mut self.tuner, &other.tuner) {
            (Some(mine), Some(theirs)) => {
                mine.epochs = mine.epochs.max(theirs.epochs);
                if mine.phase_len_us != theirs.phase_len_us {
                    mine.phase_len_us = 0; // shards disagree; render as "mixed"
                }
                for k in &theirs.split_keys {
                    if !mine.split_keys.contains(k) {
                        mine.split_keys.push(*k);
                    }
                }
                mine.decisions.extend(theirs.decisions.iter().cloned());
                mine.decisions.sort_by_key(|d| d.epoch);
                let excess = mine.decisions.len().saturating_sub(MERGED_DECISION_CAP);
                mine.decisions.drain(..excess);
            }
            (None, Some(theirs)) => self.tuner = Some(theirs.clone()),
            _ => {}
        }
    }
}

/// How many decisions a merged multi-shard view keeps (per-server history is
/// already bounded by `TunerConfig::decision_history`).
const MERGED_DECISION_CAP: usize = 16;

// ------------------------------------------------------------------ encoding

/// Appends a snapshot to `buf` (the body of a `StatsReply`).
pub(crate) fn encode_snapshot(buf: &mut Vec<u8>, s: &TelemetrySnapshot) {
    put_u32(buf, s.scalars.len() as u32);
    for (name, value) in &s.scalars {
        put_slice(buf, name.as_bytes());
        put_u64(buf, *value);
    }
    put_u32(buf, s.hists.len() as u32);
    for (name, hist) in &s.hists {
        put_slice(buf, name.as_bytes());
        put_u64(buf, hist.count());
        let sum = hist.sum_ns();
        put_u64(buf, (sum >> 64) as u64);
        put_u64(buf, sum as u64);
        put_u64(buf, hist.max_ns());
        // Sparse bucket encoding: latency distributions are clustered, so
        // most of the 512 buckets are zero and shipping (index, count)
        // pairs beats the dense array for every realistic histogram.
        let counts = hist.bucket_counts();
        let nonzero = counts.iter().filter(|&&c| c != 0).count();
        put_u32(buf, nonzero as u32);
        for (idx, &c) in counts.iter().enumerate() {
            if c != 0 {
                put_u32(buf, idx as u32);
                put_u32(buf, c);
            }
        }
    }
    put_u32(buf, s.hot_keys.len() as u32);
    for hk in &s.hot_keys {
        put_u64(buf, hk.key);
        put_u64(buf, hk.hits);
    }
    put_slice(buf, s.phase.as_bytes());
    put_u32(buf, s.procs.len() as u32);
    for p in &s.procs {
        put_slice(buf, p.name.as_bytes());
        put_u64(buf, p.invocations);
        put_u64(buf, p.commits);
        put_u64(buf, p.aborts);
        put_u64(buf, p.deferrals);
    }
    // Trailing tuner section: old decoders stop before it, and this decoder
    // treats a missing tail as `None`, so the extension is two-way compatible.
    if let Some(t) = &s.tuner {
        put_u32(buf, 1);
        put_u64(buf, t.epochs);
        put_u64(buf, t.phase_len_us);
        put_u32(buf, t.split_keys.len() as u32);
        for k in &t.split_keys {
            put_u64(buf, *k);
        }
        put_u32(buf, t.decisions.len() as u32);
        for dec in &t.decisions {
            put_u64(buf, dec.epoch);
            put_slice(buf, dec.action.as_bytes());
            put_slice(buf, dec.reason.as_bytes());
        }
    } else {
        put_u32(buf, 0);
    }
}

/// Caps an untrusted element count by what the remaining payload could hold
/// (each element is at least `min_size` bytes), so a hostile header cannot
/// reserve gigabytes before the first element fails to decode.
fn checked_count(d: &Dec<'_>, n: u32, min_size: usize) -> Result<usize, CodecError> {
    let n = n as usize;
    if n > d.remaining() / min_size {
        return Err(CodecError("element count longer than message"));
    }
    Ok(n)
}

fn decode_utf8(d: &mut Dec<'_>) -> Result<String, CodecError> {
    String::from_utf8(d.bytes()?.to_vec()).map_err(|_| CodecError("name is not utf-8"))
}

/// Decodes a snapshot from a `StatsReply` body.
pub(crate) fn decode_snapshot(d: &mut Dec<'_>) -> Result<TelemetrySnapshot, CodecError> {
    // Smallest scalar entry: 4-byte name length + 8-byte value.
    let raw = d.u32()?;
    let n = checked_count(d, raw, 12)?;
    let mut scalars = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = decode_utf8(d)?;
        scalars.push((name, d.u64()?));
    }
    // Smallest histogram entry: name length + total/sum/max + bucket count.
    let raw = d.u32()?;
    let n = checked_count(d, raw, 40)?;
    let mut hists = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = decode_utf8(d)?;
        let total = d.u64()?;
        let sum = ((d.u64()? as u128) << 64) | d.u64()? as u128;
        let max_ns = d.u64()?;
        let raw = d.u32()?;
        let nonzero = checked_count(d, raw, 8)?;
        let mut counts = vec![0u32; doppel_telemetry::hist::BUCKETS];
        for _ in 0..nonzero {
            let idx = d.u32()? as usize;
            if idx >= counts.len() {
                return Err(CodecError("histogram bucket index out of range"));
            }
            counts[idx] = d.u32()?;
        }
        hists.push((name, Histogram::from_parts(&counts, total, sum, max_ns)));
    }
    let raw = d.u32()?;
    let n = checked_count(d, raw, 16)?;
    let mut hot_keys = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        hot_keys.push(HotKey { key: d.u64()?, hits: d.u64()? });
    }
    let phase = decode_utf8(d)?;
    // Smallest proc entry: name length + four u64 counters.
    let raw = d.u32()?;
    let n = checked_count(d, raw, 36)?;
    let mut procs = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        procs.push(ProcStatsSnapshot {
            name: decode_utf8(d)?,
            invocations: d.u64()?,
            commits: d.u64()?,
            aborts: d.u64()?,
            deferrals: d.u64()?,
        });
    }
    // Snapshots from servers predating the tuner end here.
    let tuner = if d.remaining() > 0 && d.u32()? != 0 {
        let epochs = d.u64()?;
        let phase_len_us = d.u64()?;
        let raw = d.u32()?;
        let n = checked_count(d, raw, 8)?;
        let mut split_keys = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            split_keys.push(d.u64()?);
        }
        // Smallest decision: epoch + two slice length prefixes.
        let raw = d.u32()?;
        let n = checked_count(d, raw, 16)?;
        let mut decisions = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            decisions.push(TuneDecision {
                epoch: d.u64()?,
                action: decode_utf8(d)?,
                reason: decode_utf8(d)?,
            });
        }
        Some(TunerSnapshot { epochs, phase_len_us, split_keys, decisions })
    } else {
        None
    };
    Ok(TelemetrySnapshot { scalars, hists, hot_keys, phase, procs, tuner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> TelemetrySnapshot {
        let mut hist = Histogram::new();
        for us in [5u64, 50, 500, 5000] {
            hist.record(Duration::from_micros(us));
        }
        TelemetrySnapshot {
            scalars: vec![("commits".into(), 42), ("conns_accepted".into(), 3)],
            hists: vec![("exec".into(), hist)],
            hot_keys: vec![HotKey { key: 7, hits: 99 }],
            phase: "split".into(),
            procs: vec![ProcStatsSnapshot {
                name: "rubis.store_bid".into(),
                invocations: 10,
                commits: 9,
                aborts: 1,
                deferrals: 2,
            }],
            tuner: Some(TunerSnapshot {
                epochs: 12,
                phase_len_us: 20_000,
                split_keys: vec![7, 9],
                decisions: vec![TuneDecision {
                    epoch: 11,
                    action: "promote key 7".into(),
                    reason: "48 conflicts in epoch".into(),
                }],
            }),
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = sample();
        let mut buf = Vec::new();
        encode_snapshot(&mut buf, &snap);
        let mut d = Dec::new(&buf);
        let back = decode_snapshot(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back, snap);
        // The histogram survives with full quantile fidelity.
        let h = back.hist("exec").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_ns(), snap.hist("exec").unwrap().max_ns());
    }

    #[test]
    fn hostile_counts_are_rejected_without_reserving() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(decode_snapshot(&mut Dec::new(&buf)).is_err());
        // A bucket index past the histogram's fixed size is corrupt.
        let mut buf = Vec::new();
        put_u32(&mut buf, 0); // scalars
        put_u32(&mut buf, 1); // one histogram
        put_slice(&mut buf, b"h");
        put_u64(&mut buf, 1); // total
        put_u64(&mut buf, 0); // sum hi
        put_u64(&mut buf, 100); // sum lo
        put_u64(&mut buf, 100); // max
        put_u32(&mut buf, 1); // one bucket
        put_u32(&mut buf, 100_000); // out-of-range index
        put_u32(&mut buf, 1);
        assert!(decode_snapshot(&mut Dec::new(&buf)).is_err());
    }

    #[test]
    fn tuner_section_is_a_back_compatible_tail() {
        // A server without the tuner encodes an explicit empty section.
        let mut snap = sample();
        snap.tuner = None;
        let mut buf = Vec::new();
        encode_snapshot(&mut buf, &snap);
        let mut d = Dec::new(&buf);
        let back = decode_snapshot(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back.tuner, None);

        // A snapshot from a server predating the section decodes to `None`
        // rather than erroring: strip the trailing section marker.
        let mut buf = Vec::new();
        encode_snapshot(&mut buf, &snap);
        buf.truncate(buf.len() - 4);
        let back = decode_snapshot(&mut Dec::new(&buf)).unwrap();
        assert_eq!(back.tuner, None);
    }

    #[test]
    fn merge_unions_tuner_state_across_shards() {
        let mut a = sample();
        let mut b = sample();
        let bt = b.tuner.as_mut().unwrap();
        bt.epochs = 30;
        bt.phase_len_us = 10_000;
        bt.split_keys = vec![9, 13];
        bt.decisions = vec![TuneDecision {
            epoch: 29,
            action: "demote key 9".into(),
            reason: "idle 3 epochs".into(),
        }];
        a.merge(&b);
        let t = a.tuner.unwrap();
        assert_eq!(t.epochs, 30);
        assert_eq!(t.phase_len_us, 0, "disagreeing shards render as mixed");
        assert_eq!(t.split_keys, vec![7, 9, 13]);
        assert_eq!(t.decisions.len(), 2);
        assert!(t.decisions.windows(2).all(|w| w[0].epoch <= w[1].epoch));

        // Merging into a shard without a tuner adopts the other's view.
        let mut plain = sample();
        plain.tuner = None;
        plain.merge(&b);
        assert_eq!(plain.tuner, b.tuner);
    }

    #[test]
    fn absorb_helpers_flatten_sources() {
        let mut snap = TelemetrySnapshot::default();
        let stats = StatsSnapshot { commits: 7, stashes: 2, ..Default::default() };
        snap.absorb_stats(&stats);
        assert_eq!(snap.scalar("commits"), Some(7));
        assert_eq!(snap.scalar("stashes"), Some(2));

        let reg = doppel_telemetry::Registry::new();
        reg.histogram("exec").record(0, Duration::from_micros(10));
        reg.counter("ticks").add(3);
        snap.absorb_metrics(reg.snapshot());
        assert_eq!(snap.scalar("ticks"), Some(3));
        assert_eq!(snap.hist("exec").unwrap().count(), 1);
    }
}
