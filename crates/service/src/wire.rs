//! The length-prefixed wire protocol spoken between `doppel-server` and its
//! clients.
//!
//! Framing follows the WAL's style (and reuses [`doppel_wal::codec`] for
//! keys, operations and values): every message is
//!
//! ```text
//! [len: u32 LE] [payload]          payload = [kind: u8] [body…]
//! ```
//!
//! Client → server:
//!
//! | kind | message      | body                                                  |
//! |------|--------------|-------------------------------------------------------|
//! | 0x01 | `Submit`     | `id u64`, `n u32`, then `n` statements                |
//! | 0x02 | `LabelSplit` | `id u64`, `key`, `op` (split label, Doppel only)      |
//! | 0x03 | `Ping`       | `id u64`                                              |
//! | 0x04 | `InvokeProc` | `id u64`, `name` (length-prefixed UTF-8), `args`      |
//! | 0x05 | `GetStats`   | `id u64` (telemetry poll; answered with `Stats`)      |
//! | 0x06 | `Prepare`    | `id u64`, `txid u64`, `n u32`, then `n` statements    |
//! | 0x07 | `Decide`     | `id u64`, `txid u64`, `commit u8`                     |
//!
//! A statement is `0x00 Get key` or `0x01 Write key op`. Submitted
//! statements form one transaction (one [`doppel_common::Procedure`]);
//! `Get` results are returned in the completion, in statement order.
//! `InvokeProc` instead *names* a procedure registered on the server
//! ([`doppel_common::ProcRegistry`]) and ships a typed argument vector
//! ([`doppel_common::Args`]); the matching `Done` carries the procedure's
//! typed result. Raw statement lists remain fully supported as the
//! compatibility path.
//!
//! Server → client:
//!
//! | kind | message    | body                                                |
//! |------|------------|-----------------------------------------------------|
//! | 0x81 | `Done`     | `id u64`, commit/abort body (see [`WireDone`])      |
//! | 0x82 | `Deferred` | `id u64` (stash-deferred; a `Done` follows)         |
//! | 0x83 | `Rejected` | `id u64`, `reason u8` (0 = busy, 1 = shutdown)      |
//! | 0x84 | `Ack`      | `id u64` (answers `LabelSplit` and `Ping`)          |
//! | 0x85 | `Stats`    | `id u64`, a [`TelemetrySnapshot`] (answers `GetStats`) |
//! | 0x86 | `Vote`     | `id u64`, `txid u64`, `ok u8`, `n u32` values (answers `Prepare`) |
//!
//! `Prepare`/`Vote`/`Decide` are the two-phase-commit half of cross-shard
//! transactions (see [`crate::shard`]): `Prepare` ships a shard's slice of
//! the transaction, the shard locks the touched keys, force-logs the write
//! set as its durable vote, and answers `Vote` (with the `Get` results, read
//! under the locks). `Decide` delivers the coordinator's verdict and is
//! answered with `Done` (commit applied / already applied) or `Ack` (abort
//! recorded); it is idempotent, so a coordinator may re-deliver it across
//! shard restarts until acknowledged.

use crate::snapshot::{decode_snapshot, encode_snapshot, TelemetrySnapshot};
use doppel_common::{Args, Key, Op, ProcResult, TxError, Value};
use doppel_wal::codec::{
    decode_args, decode_key, decode_op, decode_value, encode_args, encode_key, encode_op,
    encode_value, put_slice, put_u32, put_u64, put_u8, Dec,
};
use doppel_wal::CodecError;
use std::io::{self, Read, Write};

/// Upper bound on a frame's payload: a corrupted length prefix must not
/// trigger a giant allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

const MSG_SUBMIT: u8 = 0x01;
const MSG_LABEL_SPLIT: u8 = 0x02;
const MSG_PING: u8 = 0x03;
const MSG_INVOKE_PROC: u8 = 0x04;
const MSG_GET_STATS: u8 = 0x05;
const MSG_PREPARE: u8 = 0x06;
const MSG_DECIDE: u8 = 0x07;
const MSG_DONE: u8 = 0x81;
const MSG_DEFERRED: u8 = 0x82;
const MSG_REJECTED: u8 = 0x83;
const MSG_ACK: u8 = 0x84;
const MSG_STATS_REPLY: u8 = 0x85;
const MSG_VOTE: u8 = 0x86;

const STMT_GET: u8 = 0x00;
const STMT_WRITE: u8 = 0x01;

/// One statement of a wire transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum WireStmt {
    /// Read a record; the result is shipped back in the completion.
    Get(Key),
    /// Apply a write operation (any registered [`Op`]).
    Write(Key, Op),
}

/// Abort reasons on the wire. Key-level detail is deliberately dropped: a
/// remote client retries on the code, it does not introspect server keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WireAbort {
    /// OCC validation failure.
    Conflict = 1,
    /// A lock was busy.
    LockBusy = 2,
    /// Operation/value type mismatch.
    TypeMismatch = 3,
    /// The transaction aborted itself.
    UserAbort = 4,
    /// The server is shutting down.
    Shutdown = 5,
    /// An `InvokeProc` named a procedure the server has not registered.
    UnknownProc = 6,
}

impl WireAbort {
    /// Maps a [`TxError`] onto its wire code.
    pub fn from_error(e: &TxError) -> WireAbort {
        match e {
            TxError::Conflict { .. } => WireAbort::Conflict,
            TxError::LockBusy { .. } => WireAbort::LockBusy,
            // A `Stash` abort never reaches a completion (it becomes a
            // Deferred notice), but map it defensively.
            TxError::Stash { .. } => WireAbort::Conflict,
            TxError::TypeMismatch { .. } => WireAbort::TypeMismatch,
            TxError::UserAbort { .. } => WireAbort::UserAbort,
            TxError::Shutdown => WireAbort::Shutdown,
        }
    }

    fn from_code(code: u8) -> Result<WireAbort, CodecError> {
        Ok(match code {
            1 => WireAbort::Conflict,
            2 => WireAbort::LockBusy,
            3 => WireAbort::TypeMismatch,
            4 => WireAbort::UserAbort,
            5 => WireAbort::Shutdown,
            6 => WireAbort::UnknownProc,
            _ => return Err(CodecError("unknown abort code")),
        })
    }

    /// True when resubmitting later can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, WireAbort::Conflict | WireAbort::LockBusy)
    }
}

/// Body of a `Done` message.
#[derive(Clone, Debug, PartialEq)]
pub struct WireDone {
    /// The client-chosen request id.
    pub id: u64,
    /// Commit TID, or the abort code.
    pub result: Result<u64, WireAbort>,
    /// True when the transaction was stash-deferred before completing.
    pub deferred: bool,
    /// Results of the transaction's `Get` statements, in statement order
    /// (empty on abort).
    pub values: Vec<Option<Value>>,
    /// Typed result of a registered-procedure invocation (`Some` only for a
    /// committed `InvokeProc`; `Submit` completions leave it `None`).
    pub proc_result: Option<ProcResult>,
}

/// Any client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// Submit one transaction.
    Submit {
        /// Client-chosen id echoed in every reply.
        id: u64,
        /// The transaction body.
        stmts: Vec<WireStmt>,
    },
    /// Manually label `key` split for `op.kind()` (paper §5.5). A no-op on
    /// engines without phase reconciliation; answered with `Ack`.
    LabelSplit {
        /// Client-chosen id echoed in the `Ack`.
        id: u64,
        /// The record to label.
        key: Key,
        /// An operation of the kind to split on.
        op: Op,
    },
    /// Liveness probe; answered with `Ack`.
    Ping {
        /// Client-chosen id echoed in the `Ack`.
        id: u64,
    },
    /// Invoke a procedure registered on the server by name, with a typed
    /// argument vector. Answered with `Done` (carrying the procedure's
    /// [`ProcResult`] on commit) or, for an unregistered name, a `Done` with
    /// [`WireAbort::UnknownProc`].
    InvokeProc {
        /// Client-chosen id echoed in every reply.
        id: u64,
        /// The registered procedure name (e.g. `"rubis.store_bid"`).
        proc: String,
        /// The argument vector.
        args: Args,
    },
    /// Ask the server for a [`TelemetrySnapshot`]; answered with `Stats`.
    GetStats {
        /// Client-chosen id echoed in the `Stats` reply.
        id: u64,
    },
    /// Two-phase commit, phase one: this shard's slice of a cross-shard
    /// transaction. The shard locks every touched key, force-logs the write
    /// set as its durable yes-vote, and answers `Vote`.
    Prepare {
        /// Client-chosen id echoed in the `Vote`.
        id: u64,
        /// Coordinator-assigned distributed transaction id.
        txid: u64,
        /// This shard's statements, in the original transaction's order.
        stmts: Vec<WireStmt>,
    },
    /// Two-phase commit, phase two: the coordinator's verdict for a
    /// previously prepared `txid`. Idempotent; answered with `Done` (commit)
    /// or `Ack` (abort).
    Decide {
        /// Client-chosen id echoed in the reply.
        id: u64,
        /// The distributed transaction this decision concerns.
        txid: u64,
        /// True to commit the prepared writes, false to discard them.
        commit: bool,
    },
}

/// Any server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMsg {
    /// A transaction finished.
    Done(WireDone),
    /// The transaction was stashed by a split phase; `Done` follows later.
    Deferred {
        /// The request this notice concerns.
        id: u64,
    },
    /// The submission was rejected before reaching a worker.
    Rejected {
        /// The request this rejection concerns.
        id: u64,
        /// True for backpressure (`Busy`, retry later), false for shutdown.
        busy: bool,
    },
    /// Answer to `LabelSplit` / `Ping`.
    Ack {
        /// The request this acknowledgment concerns.
        id: u64,
    },
    /// Answer to `GetStats`: the server's telemetry bundle.
    Stats {
        /// The request this reply concerns.
        id: u64,
        /// The snapshot, taken at dispatch time.
        snapshot: Box<TelemetrySnapshot>,
    },
    /// Answer to `Prepare`: this shard's two-phase-commit vote.
    Vote {
        /// The request this vote concerns.
        id: u64,
        /// The distributed transaction voted on.
        txid: u64,
        /// True for a yes-vote (writes locked and force-logged), false when
        /// the shard could not prepare (lock conflict, type mismatch).
        ok: bool,
        /// Results of the prepared slice's `Get` statements in slice order,
        /// read under the prepare locks (empty on a no-vote).
        values: Vec<Option<Value>>,
    },
}

// ------------------------------------------------------------------ encoding

/// Encodes a client message payload (no frame header).
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_client_into(msg, &mut buf);
    buf
}

/// [`encode_client`] into a caller-supplied buffer (cleared first), so a
/// connection can reuse one encode buffer across messages instead of
/// allocating a fresh `Vec` per message.
pub fn encode_client_into(msg: &ClientMsg, buf: &mut Vec<u8>) {
    buf.clear();
    match msg {
        ClientMsg::Submit { id, stmts } => {
            put_u8(buf, MSG_SUBMIT);
            put_u64(buf, *id);
            encode_stmts(buf, stmts);
        }
        ClientMsg::LabelSplit { id, key, op } => {
            put_u8(buf, MSG_LABEL_SPLIT);
            put_u64(buf, *id);
            encode_key(buf, *key);
            encode_op(buf, op);
        }
        ClientMsg::Ping { id } => {
            put_u8(buf, MSG_PING);
            put_u64(buf, *id);
        }
        ClientMsg::InvokeProc { id, proc, args } => {
            put_u8(buf, MSG_INVOKE_PROC);
            put_u64(buf, *id);
            put_slice(buf, proc.as_bytes());
            encode_args(buf, args);
        }
        ClientMsg::GetStats { id } => {
            put_u8(buf, MSG_GET_STATS);
            put_u64(buf, *id);
        }
        ClientMsg::Prepare { id, txid, stmts } => {
            put_u8(buf, MSG_PREPARE);
            put_u64(buf, *id);
            put_u64(buf, *txid);
            encode_stmts(buf, stmts);
        }
        ClientMsg::Decide { id, txid, commit } => {
            put_u8(buf, MSG_DECIDE);
            put_u64(buf, *id);
            put_u64(buf, *txid);
            put_u8(buf, *commit as u8);
        }
    }
}

fn encode_stmts(buf: &mut Vec<u8>, stmts: &[WireStmt]) {
    put_u32(buf, stmts.len() as u32);
    for stmt in stmts {
        match stmt {
            WireStmt::Get(k) => {
                put_u8(buf, STMT_GET);
                encode_key(buf, *k);
            }
            WireStmt::Write(k, op) => {
                put_u8(buf, STMT_WRITE);
                encode_key(buf, *k);
                encode_op(buf, op);
            }
        }
    }
}

/// Decodes a statement list with the hostile-count guards shared by `Submit`
/// and `Prepare`: the smallest statement (`Get`) encodes to 17 bytes, so a
/// count the payload cannot possibly hold is corrupt, and the speculative
/// reservation is capped so a hostile header cannot reserve gigabytes.
fn decode_stmts(d: &mut Dec<'_>, payload_len: usize) -> Result<Vec<WireStmt>, CodecError> {
    let n = d.u32()? as usize;
    if n > payload_len / 17 {
        return Err(CodecError("statement count longer than message"));
    }
    let mut stmts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        match d.u8()? {
            STMT_GET => stmts.push(WireStmt::Get(decode_key(d)?)),
            STMT_WRITE => {
                let k = decode_key(d)?;
                let op = decode_op(d)?;
                stmts.push(WireStmt::Write(k, op));
            }
            _ => return Err(CodecError("unknown statement tag")),
        }
    }
    Ok(stmts)
}

/// Decodes a client message payload.
pub fn decode_client(payload: &[u8]) -> Result<ClientMsg, CodecError> {
    let mut d = Dec::new(payload);
    let msg = match d.u8()? {
        MSG_SUBMIT => {
            let id = d.u64()?;
            let stmts = decode_stmts(&mut d, payload.len())?;
            ClientMsg::Submit { id, stmts }
        }
        MSG_LABEL_SPLIT => {
            let id = d.u64()?;
            let key = decode_key(&mut d)?;
            let op = decode_op(&mut d)?;
            ClientMsg::LabelSplit { id, key, op }
        }
        MSG_PING => ClientMsg::Ping { id: d.u64()? },
        MSG_INVOKE_PROC => {
            let id = d.u64()?;
            let name_bytes = d.bytes()?;
            let proc = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| CodecError("procedure name is not utf-8"))?;
            let args = decode_args(&mut d)?;
            ClientMsg::InvokeProc { id, proc, args }
        }
        MSG_GET_STATS => ClientMsg::GetStats { id: d.u64()? },
        MSG_PREPARE => {
            let id = d.u64()?;
            let txid = d.u64()?;
            let stmts = decode_stmts(&mut d, payload.len())?;
            ClientMsg::Prepare { id, txid, stmts }
        }
        MSG_DECIDE => {
            let id = d.u64()?;
            let txid = d.u64()?;
            let commit = match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError("unknown decide flag")),
            };
            ClientMsg::Decide { id, txid, commit }
        }
        _ => return Err(CodecError("unknown client message kind")),
    };
    if !d.is_done() {
        return Err(CodecError("trailing bytes in client message"));
    }
    Ok(msg)
}

/// Encodes a server message payload (no frame header).
pub fn encode_server(msg: &ServerMsg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    encode_server_into(msg, &mut buf);
    buf
}

/// [`encode_server`] into a caller-supplied buffer (cleared first), so a
/// connection can reuse one encode buffer across replies instead of
/// allocating a fresh `Vec` per reply.
pub fn encode_server_into(msg: &ServerMsg, buf: &mut Vec<u8>) {
    buf.clear();
    encode_server_body(msg, buf);
}

/// Appends a server message payload to `buf` without clearing it (the shared
/// core of [`encode_server_into`] and [`server_frame_into`], which encodes
/// behind a length placeholder).
fn encode_server_body(msg: &ServerMsg, buf: &mut Vec<u8>) {
    match msg {
        ServerMsg::Done(done) => {
            put_u8(buf, MSG_DONE);
            put_u64(buf, done.id);
            match &done.result {
                Ok(tid) => {
                    put_u8(buf, 0);
                    put_u64(buf, *tid);
                }
                Err(abort) => {
                    put_u8(buf, 1);
                    put_u8(buf, *abort as u8);
                }
            }
            put_u8(buf, done.deferred as u8);
            put_u32(buf, done.values.len() as u32);
            for v in &done.values {
                match v {
                    None => put_u8(buf, 0),
                    Some(v) => {
                        put_u8(buf, 1);
                        encode_value(buf, v);
                    }
                }
            }
            match &done.proc_result {
                None => put_u8(buf, 0),
                Some(result) => {
                    put_u8(buf, 1);
                    encode_args(buf, result);
                }
            }
        }
        ServerMsg::Deferred { id } => {
            put_u8(buf, MSG_DEFERRED);
            put_u64(buf, *id);
        }
        ServerMsg::Rejected { id, busy } => {
            put_u8(buf, MSG_REJECTED);
            put_u64(buf, *id);
            put_u8(buf, if *busy { 0 } else { 1 });
        }
        ServerMsg::Ack { id } => {
            put_u8(buf, MSG_ACK);
            put_u64(buf, *id);
        }
        ServerMsg::Stats { id, snapshot } => {
            put_u8(buf, MSG_STATS_REPLY);
            put_u64(buf, *id);
            encode_snapshot(buf, snapshot);
        }
        ServerMsg::Vote { id, txid, ok, values } => {
            put_u8(buf, MSG_VOTE);
            put_u64(buf, *id);
            put_u64(buf, *txid);
            put_u8(buf, *ok as u8);
            put_u32(buf, values.len() as u32);
            for v in values {
                match v {
                    None => put_u8(buf, 0),
                    Some(v) => {
                        put_u8(buf, 1);
                        encode_value(buf, v);
                    }
                }
            }
        }
    }
}

/// Encodes a server message directly as a finished frame — length prefix and
/// payload in **one** allocation. The reactor's write queues hold owned
/// framed replies, so this is the cheapest form a reply can be queued in
/// (previously the payload was encoded into one `Vec` and copied into a
/// second framed one).
pub fn server_frame(msg: &ServerMsg) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    server_frame_into(msg, &mut out)?;
    Ok(out)
}

/// [`server_frame`] into a caller-supplied buffer (cleared first): length
/// placeholder, payload encoded in place, prefix patched.
pub fn server_frame_into(msg: &ServerMsg, out: &mut Vec<u8>) -> io::Result<()> {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    encode_server_body(msg, out);
    let len = checked_frame_len(&out[4..])?;
    out[..4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Decodes a server message payload.
pub fn decode_server(payload: &[u8]) -> Result<ServerMsg, CodecError> {
    let mut d = Dec::new(payload);
    let msg = match d.u8()? {
        MSG_DONE => {
            let id = d.u64()?;
            let result = match d.u8()? {
                0 => Ok(d.u64()?),
                1 => Err(WireAbort::from_code(d.u8()?)?),
                _ => return Err(CodecError("unknown done status")),
            };
            let deferred = d.u8()? != 0;
            let n = d.u32()? as usize;
            // Each value entry is at least its 1-byte option tag; anything
            // larger than the remaining payload is corrupt, and the cap
            // bounds the speculative allocation.
            if n > payload.len() {
                return Err(CodecError("value count longer than message"));
            }
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                values.push(match d.u8()? {
                    0 => None,
                    1 => Some(decode_value(&mut d)?),
                    _ => return Err(CodecError("unknown option tag")),
                });
            }
            let proc_result = match d.u8()? {
                0 => None,
                1 => Some(decode_args(&mut d)?),
                _ => return Err(CodecError("unknown option tag")),
            };
            ServerMsg::Done(WireDone { id, result, deferred, values, proc_result })
        }
        MSG_DEFERRED => ServerMsg::Deferred { id: d.u64()? },
        MSG_REJECTED => {
            let id = d.u64()?;
            let busy = match d.u8()? {
                0 => true,
                1 => false,
                _ => return Err(CodecError("unknown rejection reason")),
            };
            ServerMsg::Rejected { id, busy }
        }
        MSG_ACK => ServerMsg::Ack { id: d.u64()? },
        MSG_STATS_REPLY => {
            let id = d.u64()?;
            let snapshot = Box::new(decode_snapshot(&mut d)?);
            ServerMsg::Stats { id, snapshot }
        }
        MSG_VOTE => {
            let id = d.u64()?;
            let txid = d.u64()?;
            let ok = match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError("unknown vote flag")),
            };
            let n = d.u32()? as usize;
            // Same hostile-count cap as the Done value list: each entry is
            // at least its 1-byte option tag.
            if n > payload.len() {
                return Err(CodecError("value count longer than message"));
            }
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                values.push(match d.u8()? {
                    0 => None,
                    1 => Some(decode_value(&mut d)?),
                    _ => return Err(CodecError("unknown option tag")),
                });
            }
            ServerMsg::Vote { id, txid, ok, values }
        }
        _ => return Err(CodecError("unknown server message kind")),
    };
    if !d.is_done() {
        return Err(CodecError("trailing bytes in server message"));
    }
    Ok(msg)
}

// -------------------------------------------------------------------- frames

/// Writes one frame: length prefix plus payload.
///
/// A payload over [`MAX_FRAME`] is an [`io::ErrorKind::InvalidData`] error —
/// the peer would reject the frame as corrupt, so emitting it (as a
/// `debug_assert!` previously allowed in release builds) only defers the
/// failure to the other side of the wire.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = checked_frame_len(payload)?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Validates a payload length against [`MAX_FRAME`].
fn checked_frame_len(payload: &[u8]) -> io::Result<u32> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    Ok(payload.len() as u32)
}

/// Renders one frame — length prefix plus payload — as contiguous bytes,
/// with the same [`MAX_FRAME`] check as [`write_frame`]. This is the form
/// the reactor's per-connection write queues hold so a flush is a single
/// coalesced write.
pub fn frame_bytes(payload: &[u8]) -> io::Result<Vec<u8>> {
    let len = checked_frame_len(payload)?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(r, &mut payload)?.then_some(payload))
}

/// [`read_frame`] into a caller-supplied buffer, reused across frames so a
/// blocking connection loop performs no per-frame payload allocation.
/// Returns `Ok(false)` on a clean EOF at a frame boundary; on `Ok(true)`,
/// `payload` holds exactly one frame's payload.
pub fn read_frame_into(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<bool> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn frame header"))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)?;
    Ok(true)
}

/// A resumable frame decoder for nonblocking readers.
///
/// The blocking [`read_frame`] owns its stream until a whole frame arrives;
/// an epoll reactor instead gets bytes in arbitrary chunks and must park the
/// partial state between readiness events. [`FrameDecoder::feed`] absorbs
/// whatever just arrived and [`FrameDecoder::next_frame`] yields each
/// completed payload, applying the same [`MAX_FRAME`] bound *before* any
/// payload allocation — a hostile length prefix costs four bytes of buffer,
/// not gigabytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `start` are already-consumed frames awaiting compaction.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Absorbs freshly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed prefixes would otherwise pin the
        // buffer at its high-water mark forever.
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame payload as an owned vector.
    ///
    /// Prefer [`FrameDecoder::next_frame_ref`] on hot paths: this variant
    /// copies the payload out of the receive buffer, which is only worth
    /// paying when the payload must outlive the decoder.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.next_frame_ref()?.map(<[u8]>::to_vec))
    }

    /// Yields the next complete frame payload **borrowed from the receive
    /// buffer** — no copy, no allocation. Returns `Ok(None)` when more bytes
    /// are needed, or [`io::ErrorKind::InvalidData`] on a hostile length
    /// prefix (the connection should be dropped).
    ///
    /// The slice is valid until the next call to [`FrameDecoder::feed`] /
    /// `next_frame*`; decode it into an owned message before reading more.
    pub fn next_frame_ref(&mut self) -> io::Result<Option<&[u8]>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame_start = self.start;
        self.start += total;
        Ok(Some(&self.buf[frame_start + 4..frame_start + total]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::OrderKey;

    fn roundtrip_client(msg: ClientMsg) {
        let encoded = encode_client(&msg);
        assert_eq!(decode_client(&encoded).unwrap(), msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let encoded = encode_server(&msg);
        assert_eq!(decode_server(&encoded).unwrap(), msg);
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Ping { id: 9 });
        roundtrip_client(ClientMsg::LabelSplit { id: 1, key: Key::raw(5), op: Op::Add(0) });
        roundtrip_client(ClientMsg::Submit {
            id: 42,
            stmts: vec![
                WireStmt::Write(Key::raw(1), Op::Add(5)),
                WireStmt::Get(Key::raw(1)),
                WireStmt::Write(
                    Key::raw(2),
                    Op::OPut { order: OrderKey::pair(3, 1), core: 0, payload: "p".into() },
                ),
                WireStmt::Write(Key::raw(3), Op::SetUnion([4, 5].into_iter().collect())),
            ],
        });
    }

    #[test]
    fn invoke_proc_roundtrips() {
        roundtrip_client(ClientMsg::InvokeProc {
            id: 11,
            proc: "rubis.store_bid".into(),
            args: Args::new().uint(1).uint(2).int(-3).key(Key::raw(4)).str("x"),
        });
        roundtrip_client(ClientMsg::InvokeProc {
            id: 12,
            proc: "kv.get".into(),
            args: Args::new(),
        });
        // A non-utf-8 procedure name is a decode error, not a panic.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x04);
        put_u64(&mut buf, 1);
        put_slice(&mut buf, &[0xFF, 0xFE]);
        assert!(decode_client(&buf).is_err());
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::Deferred { id: 3 });
        roundtrip_server(ServerMsg::Rejected { id: 4, busy: true });
        roundtrip_server(ServerMsg::Rejected { id: 4, busy: false });
        roundtrip_server(ServerMsg::Ack { id: 5 });
        roundtrip_server(ServerMsg::Done(WireDone {
            id: 6,
            result: Ok(77),
            deferred: true,
            values: vec![None, Some(Value::Int(12)), Some(Value::from("bytes"))],
            proc_result: None,
        }));
        roundtrip_server(ServerMsg::Done(WireDone {
            id: 8,
            result: Ok(42),
            deferred: false,
            values: vec![],
            proc_result: Some(Args::new().int(9).value(Value::Int(1)).bytes(b"r".as_ref())),
        }));
        for abort in [
            WireAbort::Conflict,
            WireAbort::LockBusy,
            WireAbort::TypeMismatch,
            WireAbort::UserAbort,
            WireAbort::Shutdown,
            WireAbort::UnknownProc,
        ] {
            roundtrip_server(ServerMsg::Done(WireDone {
                id: 7,
                result: Err(abort),
                deferred: false,
                values: vec![],
                proc_result: None,
            }));
        }
    }

    #[test]
    fn twopc_messages_roundtrip() {
        roundtrip_client(ClientMsg::Prepare {
            id: 21,
            txid: 0xDEAD_BEEF,
            stmts: vec![
                WireStmt::Write(Key::raw(1), Op::Put(Value::Int(7))),
                WireStmt::Get(Key::raw(2)),
                WireStmt::Write(Key::raw(3), Op::Add(-4)),
            ],
        });
        roundtrip_client(ClientMsg::Prepare { id: 22, txid: 0, stmts: vec![] });
        roundtrip_client(ClientMsg::Decide { id: 23, txid: 99, commit: true });
        roundtrip_client(ClientMsg::Decide { id: 24, txid: 99, commit: false });
        roundtrip_server(ServerMsg::Vote {
            id: 21,
            txid: 0xDEAD_BEEF,
            ok: true,
            values: vec![None, Some(Value::Int(12))],
        });
        roundtrip_server(ServerMsg::Vote { id: 25, txid: 1, ok: false, values: vec![] });
    }

    #[test]
    fn hostile_prepare_and_vote_counts_are_rejected() {
        // Prepare claiming u32::MAX statements without carrying them.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x06);
        put_u64(&mut buf, 1); // id
        put_u64(&mut buf, 2); // txid
        put_u32(&mut buf, u32::MAX);
        assert!(decode_client(&buf).is_err());
        // Vote claiming u32::MAX values.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x86);
        put_u64(&mut buf, 1); // id
        put_u64(&mut buf, 2); // txid
        put_u8(&mut buf, 1); // ok
        put_u32(&mut buf, u32::MAX);
        assert!(decode_server(&buf).is_err());
        // A decide flag outside {0, 1} is corrupt.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x07);
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 2);
        put_u8(&mut buf, 9);
        assert!(decode_client(&buf).is_err());
    }

    #[test]
    fn stats_messages_roundtrip() {
        roundtrip_client(ClientMsg::GetStats { id: 13 });
        let mut hist = doppel_telemetry::Histogram::new();
        hist.record(std::time::Duration::from_micros(120));
        roundtrip_server(ServerMsg::Stats {
            id: 13,
            snapshot: Box::new(TelemetrySnapshot {
                scalars: vec![("commits".into(), 5)],
                hists: vec![("exec".into(), hist)],
                hot_keys: vec![doppel_telemetry::HotKey { key: 1, hits: 2 }],
                phase: "joined".into(),
                procs: vec![],
                tuner: Some(crate::TunerSnapshot {
                    epochs: 4,
                    phase_len_us: 20_000,
                    split_keys: vec![1],
                    decisions: vec![doppel_common::TuneDecision {
                        epoch: 3,
                        action: "promote key 1".into(),
                        reason: "hot".into(),
                    }],
                }),
            }),
        });
        roundtrip_server(ServerMsg::Stats {
            id: 0,
            snapshot: Box::new(TelemetrySnapshot::default()),
        });
    }

    #[test]
    fn abort_codes_map_and_retry() {
        assert_eq!(
            WireAbort::from_error(&TxError::Conflict { key: Key::raw(1) }),
            WireAbort::Conflict
        );
        assert!(WireAbort::Conflict.is_retryable());
        assert!(WireAbort::LockBusy.is_retryable());
        assert!(!WireAbort::Shutdown.is_retryable());
        assert!(!WireAbort::UnknownProc.is_retryable());
        assert!(WireAbort::from_code(99).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), Vec::<u8>::new());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_header_and_oversize_frames_error() {
        let mut cursor = std::io::Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
        let mut oversize = Vec::new();
        oversize.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(oversize);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversize_payloads_are_write_errors_not_debug_asserts() {
        // Regression: this used to be a debug_assert!, so release builds
        // silently emitted a frame the peer would reject as corrupt.
        let payload = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing may reach the wire");
        assert_eq!(frame_bytes(&payload).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // The boundary itself is fine.
        let exact = vec![0u8; MAX_FRAME as usize];
        assert!(write_frame(&mut sink, &exact).is_ok());
        assert_eq!(frame_bytes(b"ok").unwrap(), [&2u32.to_le_bytes()[..], b"ok"].concat());
    }

    #[test]
    fn hostile_submit_count_is_rejected_without_reserving() {
        // A Submit header claiming u32::MAX statements but carrying none:
        // must be a decode error (and must not reserve gigabytes first).
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x01);
        put_u64(&mut buf, 7);
        put_u32(&mut buf, u32::MAX);
        assert!(decode_client(&buf).is_err());
        // Same for a count that is large but plausible-looking.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x01);
        put_u64(&mut buf, 7);
        put_u32(&mut buf, 1 << 20);
        put_u8(&mut buf, STMT_GET);
        assert!(decode_client(&buf).is_err());
    }

    #[test]
    fn hostile_done_value_count_is_rejected() {
        // Server → client direction: a Done frame whose value count exceeds
        // what the payload could hold must fail fast on the client.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0x81); // Done
        put_u64(&mut buf, 1); // id
        put_u8(&mut buf, 0); // committed
        put_u64(&mut buf, 9); // tid
        put_u8(&mut buf, 0); // not deferred
        put_u32(&mut buf, u32::MAX); // hostile value count
        assert!(decode_server(&buf).is_err());
    }

    #[test]
    fn frame_decoder_resumes_across_arbitrary_chunks() {
        let frames: Vec<Vec<u8>> = vec![b"hello".to_vec(), Vec::new(), vec![7u8; 300]];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        // Feed one byte at a time: every frame must still come out intact.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b));
            while let Some(p) = dec.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(dec.pending(), 0);

        // Feed everything at once: same result.
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        let mut out = Vec::new();
        while let Some(p) = dec.next_frame().unwrap() {
            out.push(p);
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn frame_decoder_rejects_hostile_length_prefix() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(dec.next_frame().unwrap_err().kind(), io::ErrorKind::InvalidData);
        // Three bytes of header: not an error, just incomplete.
        let mut dec = FrameDecoder::new();
        dec.feed(&[0xFF, 0xFF, 0xFF]);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn server_frame_matches_two_step_encoding() {
        let msg = ServerMsg::Done(WireDone {
            id: 1,
            result: Ok(5),
            deferred: false,
            values: vec![None, Some(Value::Int(3))],
            proc_result: Some(Args::new().int(9)),
        });
        let two_step = frame_bytes(&encode_server(&msg)).unwrap();
        assert_eq!(server_frame(&msg).unwrap(), two_step);
        // The in-place variant clears whatever the scratch held before.
        let mut scratch = vec![0xAA; 7];
        server_frame_into(&msg, &mut scratch).unwrap();
        assert_eq!(scratch, two_step);
    }

    #[test]
    fn encode_into_reuses_and_clears_buffers() {
        let c = ClientMsg::Ping { id: 3 };
        let s = ServerMsg::Ack { id: 4 };
        let mut buf = vec![1, 2, 3];
        encode_client_into(&c, &mut buf);
        assert_eq!(buf, encode_client(&c));
        encode_server_into(&s, &mut buf);
        assert_eq!(buf, encode_server(&s));
    }

    #[test]
    fn next_frame_ref_borrows_payloads_in_order() {
        let frames: Vec<Vec<u8>> = vec![b"abc".to_vec(), Vec::new(), vec![9u8; 100]];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        let mut out: Vec<Vec<u8>> = Vec::new();
        while let Some(p) = dec.next_frame_ref().unwrap() {
            out.push(p.to_vec());
        }
        assert_eq!(out, frames);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn read_frame_into_reuses_buffer_and_signals_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first-longer").unwrap();
        write_frame(&mut stream, b"2nd").unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let mut buf = Vec::new();
        assert!(read_frame_into(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"first-longer");
        assert!(read_frame_into(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"2nd", "shorter frame fully replaces the longer one");
        assert!(!read_frame_into(&mut cursor, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn corrupt_payloads_error_not_panic() {
        assert!(decode_client(&[]).is_err());
        assert!(decode_client(&[0xFF]).is_err());
        assert!(decode_server(&[0x55]).is_err());
        let mut buf = encode_client(&ClientMsg::Ping { id: 1 });
        buf.push(0);
        assert!(decode_client(&buf).is_err(), "trailing bytes are rejected");
    }
}
