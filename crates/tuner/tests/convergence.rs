//! Convergence properties of the adaptive contention controller.
//!
//! These tests close the loop around [`Tuner::tick`] with a simulated
//! engine: each epoch the simulation plays one round of traffic into the
//! telemetry registry and the mock sink exactly as the real engine would —
//! an *unsplit* hot key conflicts (heat-sketch hits), a *split* hot key
//! stops conflicting by design and shows split-phase write activity
//! instead, and a silent key shows neither. The tuner only sees those
//! signals, so the properties here are end-to-end for the control logic:
//!
//! * **stationary convergence** — on a fixed workload the split set reaches
//!   exactly the hot set and then never changes (no promote/demote
//!   oscillation, the failure mode the hysteresis exists to prevent);
//! * **step-change re-convergence** — when the hot set migrates, the new
//!   keys are promoted immediately and the stale labels are demoted within
//!   `demote_idle_epochs + 1` epochs of the change.

use doppel_common::{
    Key, OpKind, StatsSnapshot, TuneObservation, TuneSink, TuneThresholds, TunerConfig,
};
use doppel_telemetry::Registry;
use doppel_tuner::Tuner;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// An engine stand-in with the same contract the tuner sees in production.
#[derive(Default)]
struct SimSink {
    state: Mutex<SimState>,
}

#[derive(Default)]
struct SimState {
    split: Vec<(Key, OpKind)>,
    activity: HashMap<Key, u64>,
    stats: StatsSnapshot,
    phase_len_us: u64,
    thresholds: Option<TuneThresholds>,
    /// Tokens the classifier's conflict memory can resolve (token → key).
    resolvable: HashMap<u64, Key>,
}

impl SimSink {
    fn split_tokens(&self) -> HashSet<u64> {
        self.state.lock().split.iter().map(|(k, _)| k.heat_token()).collect()
    }
}

impl TuneSink for SimSink {
    fn observe(&self) -> TuneObservation {
        let s = self.state.lock();
        TuneObservation {
            stats: s.stats,
            split_keys: s.split.clone(),
            split_activity: s
                .split
                .iter()
                .map(|(k, _)| (*k, s.activity.get(k).copied().unwrap_or(0)))
                .collect(),
            phase_len: Duration::from_micros(s.phase_len_us),
            thresholds: s
                .thresholds
                .unwrap_or(TuneThresholds { split_min_conflicts: 12, unsplit_stash_ratio: 8.0 }),
        }
    }

    fn promote(&self, token: u64) -> Option<(Key, OpKind)> {
        let mut s = self.state.lock();
        let key = *s.resolvable.get(&token)?;
        if s.split.iter().any(|(k, _)| *k == key) {
            return None;
        }
        s.split.push((key, OpKind::Add));
        Some((key, OpKind::Add))
    }

    fn demote(&self, key: Key) -> bool {
        let mut s = self.state.lock();
        let before = s.split.len();
        s.split.retain(|(k, _)| *k != key);
        s.split.len() < before
    }

    fn set_phase_len(&self, len: Duration) {
        self.state.lock().phase_len_us = len.as_micros() as u64;
    }

    fn set_thresholds(&self, t: TuneThresholds) {
        self.state.lock().thresholds = Some(t);
    }
}

const PROMOTE_MIN_HITS: u64 = 10;
const DEMOTE_IDLE_EPOCHS: u32 = 2;

fn cfg() -> TunerConfig {
    TunerConfig {
        promote_min_hits: PROMOTE_MIN_HITS,
        demote_idle_epochs: DEMOTE_IDLE_EPOCHS,
        ..TunerConfig::default()
    }
}

/// One epoch of simulated traffic: each `(id, rate)` key is hammered at
/// `rate` conflicts per epoch. While unsplit it feeds the heat sketch (and
/// the classifier's conflict memory, so the token resolves); once split it
/// stops conflicting and accrues split-phase write activity instead.
fn play_epoch(sink: &SimSink, registry: &Registry, traffic: &[(u64, u64)]) {
    for &(id, rate) in traffic {
        let key = Key::raw(id);
        let is_split = sink.state.lock().split.iter().any(|(k, _)| *k == key);
        if is_split {
            *sink.state.lock().activity.entry(key).or_insert(0) += rate;
        } else {
            sink.state.lock().resolvable.insert(key.heat_token(), key);
            for _ in 0..rate {
                registry.heat().record(key.heat_token());
            }
        }
    }
}

fn new_tuner(sink: &Arc<SimSink>) -> (Tuner, Arc<Registry>) {
    sink.state.lock().phase_len_us = 20_000;
    let registry = Arc::new(Registry::new());
    let tuner =
        Tuner::new(cfg(), Arc::clone(sink) as Arc<dyn TuneSink>, Arc::clone(&registry));
    (tuner, registry)
}

proptest! {
    /// Stationary workload: hot keys conflict above the promote threshold
    /// every epoch, cold keys stay below it. The split set must converge to
    /// exactly the hot set and then freeze — zero further decisions, which
    /// rules out promote/demote oscillation and threshold hunting.
    #[test]
    fn stationary_workload_converges_to_a_fixed_split_set(
        hot_rates in prop::collection::vec(PROMOTE_MIN_HITS..=4 * PROMOTE_MIN_HITS, 1..5),
        cold_rates in prop::collection::vec(0..PROMOTE_MIN_HITS, 0..5),
    ) {
        let sink = Arc::new(SimSink::default());
        let (mut tuner, registry) = new_tuner(&sink);
        // Disjoint id ranges keep hot and cold keys distinct.
        let traffic: Vec<(u64, u64)> = hot_rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (1 + i as u64, r))
            .chain(cold_rates.iter().enumerate().map(|(i, &r)| (100 + i as u64, r)))
            .collect();
        let hot: HashSet<u64> = (1..=hot_rates.len() as u64).collect();

        // A heat delta of `rate >= promote_min_hits` promotes on the very
        // first tick, so convergence is immediate.
        play_epoch(&sink, &registry, &traffic);
        let first = tuner.tick();
        prop_assert_eq!(
            first.iter().filter(|d| d.action.starts_with("promote")).count(),
            hot.len(),
            "every hot key promotes on the first epoch: {:?}",
            first
        );
        prop_assert_eq!(sink.split_tokens(), hot.clone());

        // Steady state: the workload does not change, so neither may the
        // controller. Any decision here is oscillation.
        for epoch in 2..=12u64 {
            play_epoch(&sink, &registry, &traffic);
            let decisions = tuner.tick();
            prop_assert!(
                decisions.is_empty(),
                "stationary epoch {} must be quiet, got {:?}",
                epoch,
                decisions
            );
            prop_assert_eq!(sink.split_tokens(), hot.clone());
        }
    }

    /// Step change: after converging on hot set A, all traffic migrates to
    /// a disjoint hot set B. The controller must promote B on the first
    /// post-change epoch and demote every stale A label within the
    /// hysteresis window, ending with the split set equal to exactly B.
    #[test]
    fn step_change_reconverges_within_the_hysteresis_window(
        a_rates in prop::collection::vec(PROMOTE_MIN_HITS..=4 * PROMOTE_MIN_HITS, 1..4),
        b_rates in prop::collection::vec(PROMOTE_MIN_HITS..=4 * PROMOTE_MIN_HITS, 1..4),
        settle_epochs in 9u64..14,
    ) {
        let sink = Arc::new(SimSink::default());
        let (mut tuner, registry) = new_tuner(&sink);
        let a: Vec<(u64, u64)> =
            a_rates.iter().enumerate().map(|(i, &r)| (1 + i as u64, r)).collect();
        let b: Vec<(u64, u64)> =
            b_rates.iter().enumerate().map(|(i, &r)| (50 + i as u64, r)).collect();
        let a_tokens: HashSet<u64> = a.iter().map(|&(id, _)| id).collect();
        let b_tokens: HashSet<u64> = b.iter().map(|&(id, _)| id).collect();

        // Phase A: converge, then hold long enough that the labels are not
        // "churn" when they are eventually demoted (a genuine hot set that
        // later moved, not a promotion that failed to pay off).
        for _ in 0..settle_epochs {
            play_epoch(&sink, &registry, &a);
            tuner.tick();
        }
        prop_assert_eq!(sink.split_tokens(), a_tokens.clone());

        // Step change: all traffic now hits B; A goes completely silent.
        // B's heat delta crosses the threshold on the first changed epoch.
        play_epoch(&sink, &registry, &b);
        let first = tuner.tick();
        prop_assert_eq!(
            first.iter().filter(|d| d.action.starts_with("promote")).count(),
            b_tokens.len(),
            "the new hot set promotes on the first post-change epoch: {:?}",
            first
        );

        // Stale A labels need demote_idle_epochs consecutive idle epochs;
        // give the controller exactly that window and require full
        // re-convergence by the end of it.
        let mut demotions = 0;
        for _ in 0..DEMOTE_IDLE_EPOCHS {
            play_epoch(&sink, &registry, &b);
            demotions += tuner
                .tick()
                .iter()
                .filter(|d| d.action.starts_with("demote"))
                .count();
        }
        prop_assert_eq!(demotions, a_tokens.len(), "every stale label is demoted");
        prop_assert_eq!(sink.split_tokens(), b_tokens.clone());

        // And the new fixpoint is stable: quiet epochs from here on.
        for _ in 0..6 {
            play_epoch(&sink, &registry, &b);
            let decisions = tuner.tick();
            prop_assert!(decisions.is_empty(), "post-migration steady state, got {:?}", decisions);
            prop_assert_eq!(sink.split_tokens(), b_tokens.clone());
        }
    }
}
