//! Adaptive contention controller: a closed control loop that learns split
//! labels, phase length and classifier thresholds from live telemetry.
//!
//! The paper's mechanisms — splitting contended records, reconciling them
//! every phase — are driven by knobs that its evaluation hand-tunes: a 20 ms
//! phase length (§5.4), fixed split/unsplit thresholds (§5.5), and manual
//! labels for workloads the sampler reacts to too slowly. This crate closes
//! the loop. A [`Tuner`] samples, once per configured epoch:
//!
//! * the **conflict heat sketch** (per-key sampled joined-phase conflicts,
//!   from the engine's telemetry registry) — the promotion signal;
//! * the **split-phase write activity** per split key (from the engine via
//!   [`TuneSink::observe`]) — the demotion signal. Heat alone cannot demote:
//!   a split key stops conflicting *by design*, so its heat always goes
//!   cold. Demotion requires both signals idle for several consecutive
//!   epochs (hysteresis), which is what prevents promote/demote oscillation;
//! * the **stash-replay latency histogram** — the phase-length signal.
//!   Stashed transactions wait for the next joined phase, so replay latency
//!   tracks phase length directly: above target, shorten phases; far below,
//!   lengthen them to amortise transition barriers;
//! * the engine's **counters** — the threshold signal: persistent conflicts
//!   with an empty split set mean the classifier's threshold is too high for
//!   this workload's absolute throughput, so lower it (and raise it back
//!   when labels churn).
//!
//! Decisions are applied through the engine's [`TuneSink`] hook, recorded in
//! a bounded history (surfaced over the wire in `GetStats` and rendered by
//! `doppel-stat`), counted in the engine's own metrics registry
//! (`tuner_epochs`, `tuner_promotions`, …) and mirrored onto the trace
//! timeline as [`EventKind::TunerDecision`] instants.
//!
//! The control logic is synchronous and side-effect-free apart from the sink
//! ([`Tuner::tick`]), so tests drive it directly against a mock sink;
//! production wraps it in a [`TunerHandle`] thread.

use doppel_common::{Key, StatsSnapshot, TuneDecision, TuneSink, TunerConfig};
use doppel_telemetry::trace::{self, EventKind};
use doppel_telemetry::{Histogram, Registry};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point-in-time view of the tuner, cheap to clone over the wire.
#[derive(Clone, Debug, Default)]
pub struct TunerStatus {
    /// Control epochs completed.
    pub epochs: u64,
    /// The phase length currently in effect.
    pub phase_len: Duration,
    /// Heat tokens ([`Key::heat_token`]) of the currently-split keys.
    pub split_keys: Vec<u64>,
    /// The most recent decisions, oldest first (bounded by
    /// [`TunerConfig::decision_history`]).
    pub decisions: Vec<TuneDecision>,
}

/// Shared between the [`Tuner`] (writer) and any number of status readers.
struct Inner {
    status: Mutex<TunerStatus>,
    stop: AtomicBool,
}

/// A cloneable read handle on a tuner's live status (for the server's
/// `GetStats` path).
#[derive(Clone)]
pub struct TunerWatch {
    inner: Arc<Inner>,
}

impl TunerWatch {
    /// The latest published status.
    pub fn status(&self) -> TunerStatus {
        self.inner.status.lock().clone()
    }
}

/// The control loop. Owns all controller state; every [`Tuner::tick`] is one
/// epoch: sample, decide, apply, publish.
pub struct Tuner {
    cfg: TunerConfig,
    sink: Arc<dyn TuneSink>,
    registry: Arc<Registry>,
    inner: Arc<Inner>,
    epoch: u64,
    /// Cumulative heat-sketch hits per token at the previous epoch.
    prev_hits: HashMap<u64, u64>,
    /// Cumulative split-write activity per split key at the previous epoch.
    prev_activity: HashMap<Key, u64>,
    /// Consecutive idle epochs per split key (the demote hysteresis).
    idle_epochs: HashMap<Key, u32>,
    /// Epoch at which each split key entered the split set (grace period:
    /// no demotion until the key has had a chance to show activity).
    entered_at: HashMap<Key, u64>,
    /// The split set as of the end of the previous tick, to attribute
    /// changes made by the classifier itself (adopt/retire decisions).
    prev_split: HashSet<Key>,
    /// Cumulative stash-replay histogram at the previous epoch.
    prev_stash: Option<Histogram>,
    /// Engine counters at the previous epoch.
    prev_stats: Option<StatsSnapshot>,
    /// Keys demoted soon after entering the split set since the last
    /// threshold correction — the signal that thresholds are too eager.
    churn: u32,
    decisions: VecDeque<TuneDecision>,
}

impl Tuner {
    /// Creates a tuner steering `sink`, sampling conflict heat and latency
    /// from `registry` (the engine's own telemetry registry, so the tuner's
    /// counters land next to the engine's).
    pub fn new(cfg: TunerConfig, sink: Arc<dyn TuneSink>, registry: Arc<Registry>) -> Tuner {
        Tuner {
            cfg,
            sink,
            registry,
            inner: Arc::new(Inner {
                status: Mutex::new(TunerStatus::default()),
                stop: AtomicBool::new(false),
            }),
            epoch: 0,
            prev_hits: HashMap::new(),
            prev_activity: HashMap::new(),
            idle_epochs: HashMap::new(),
            entered_at: HashMap::new(),
            prev_split: HashSet::new(),
            prev_stash: None,
            prev_stats: None,
            churn: 0,
            decisions: VecDeque::new(),
        }
    }

    /// A cloneable status reader.
    pub fn watch(&self) -> TunerWatch {
        TunerWatch { inner: Arc::clone(&self.inner) }
    }

    /// The latest published status.
    pub fn status(&self) -> TunerStatus {
        self.inner.status.lock().clone()
    }

    /// Runs one control epoch. Returns the decisions taken this epoch (also
    /// appended to the bounded history).
    pub fn tick(&mut self) -> Vec<TuneDecision> {
        self.epoch += 1;
        let epoch = self.epoch;
        let obs = self.sink.observe();
        let metrics = self.registry.snapshot();
        let mut taken: Vec<TuneDecision> = Vec::new();
        let mut decide = |action: String, reason: String| {
            taken.push(TuneDecision { epoch, action, reason });
        };

        let mut split_now: HashSet<Key> = obs.split_keys.iter().map(|(k, _)| *k).collect();

        // ---- Attribute external split-set changes (classifier, manual) ----
        // The tuner's history is the authoritative label-migration record,
        // so labels the classifier learned on its own are logged too.
        for (key, op) in &obs.split_keys {
            if !self.prev_split.contains(key) && !self.entered_at.contains_key(key) {
                self.entered_at.insert(*key, epoch);
                decide(format!("adopt {key}"), format!("classifier split it for {op:?}"));
            }
        }
        for key in self.prev_split.clone() {
            if !split_now.contains(&key) {
                self.idle_epochs.remove(&key);
                self.entered_at.remove(&key);
                self.prev_activity.remove(&key);
                decide(format!("retire {key}"), "classifier moved it back".into());
            }
        }

        // ---- Promotion: per-epoch conflict-heat deltas ----
        let mut heat_delta: HashMap<u64, u64> = HashMap::new();
        for hk in &metrics.hot_keys {
            let prev = self.prev_hits.get(&hk.key).copied().unwrap_or(0);
            heat_delta.insert(hk.key, hk.hits.saturating_sub(prev));
            self.prev_hits.insert(hk.key, hk.hits);
        }
        let mut promotions = 0u64;
        for (token, delta) in &heat_delta {
            if *delta < self.cfg.promote_min_hits {
                continue;
            }
            if let Some((key, op)) = self.sink.promote(*token) {
                split_now.insert(key);
                self.entered_at.insert(key, epoch);
                promotions += 1;
                decide(
                    format!("promote {key} ({op:?})"),
                    format!("{delta} sampled conflicts this epoch"),
                );
            }
        }

        // ---- Demotion: both signals idle for several epochs ----
        // `split_activity` reflects the pre-promotion split set, which is
        // exactly what demotion should consider.
        let idle_floor = (self.cfg.promote_min_hits / 4).max(1);
        let mut demotions = 0u64;
        for (key, activity) in &obs.split_activity {
            let act_delta =
                activity.saturating_sub(self.prev_activity.get(key).copied().unwrap_or(0));
            self.prev_activity.insert(*key, *activity);
            let heat = heat_delta.get(&key.heat_token()).copied().unwrap_or(0);
            let idle = if act_delta < idle_floor && heat < idle_floor {
                let e = self.idle_epochs.entry(*key).or_insert(0);
                *e += 1;
                *e
            } else {
                self.idle_epochs.insert(*key, 0);
                0
            };
            let entered = self.entered_at.get(key).copied().unwrap_or(0);
            let in_grace = epoch.saturating_sub(entered) < u64::from(self.cfg.demote_idle_epochs);
            if idle >= self.cfg.demote_idle_epochs && !in_grace && self.sink.demote(*key) {
                split_now.remove(key);
                self.idle_epochs.remove(key);
                self.prev_activity.remove(key);
                demotions += 1;
                // A label that lived barely past its grace period is churn:
                // the promote threshold admitted a key that did not pay off.
                if epoch.saturating_sub(entered) < 4 * u64::from(self.cfg.demote_idle_epochs) {
                    self.churn += 1;
                }
                self.entered_at.remove(key);
                decide(
                    format!("demote {key}"),
                    format!("idle {idle} epochs (writes {act_delta}, heat {heat})"),
                );
            }
        }

        // ---- Phase length: steer stash-replay p95 toward the target ----
        let mut phase_len = obs.phase_len;
        if let Some(h) = metrics.hist("stash_replay") {
            let delta = match &self.prev_stash {
                Some(prev) => h.delta(prev),
                None => h.clone(),
            };
            self.prev_stash = Some(h.clone());
            // Too few replays and the percentile is noise; leave the knob.
            if delta.count() >= 8 {
                let p95 = delta.quantile_ns(0.95);
                let target = self.cfg.stash_replay_target.as_nanos().min(u64::MAX as u128) as u64;
                let reason = |p95: u64| format!("stash replay p95 {:.1}ms", p95 as f64 / 1e6);
                if p95 > target && phase_len > self.cfg.min_phase_len {
                    phase_len = phase_len.mul_f64(0.8).max(self.cfg.min_phase_len);
                    decide(format!("phase_len {phase_len:?}"), reason(p95) + " above target");
                } else if p95.saturating_mul(4) < target && phase_len < self.cfg.max_phase_len {
                    // Deadband between the two bounds: only lengthen when
                    // replays are comfortably fast, so the knob settles.
                    phase_len = phase_len.mul_f64(1.25).min(self.cfg.max_phase_len);
                    decide(format!("phase_len {phase_len:?}"), reason(p95) + " well under target");
                }
                if phase_len != obs.phase_len {
                    self.sink.set_phase_len(phase_len);
                }
            }
        }

        // ---- Thresholds: adapt the classifier's gate to the workload ----
        if let Some(prev) = &self.prev_stats {
            let conflicts = obs.stats.conflicts.saturating_sub(prev.conflicts);
            let commits = obs.stats.commits.saturating_sub(prev.commits).max(1);
            let mut th = obs.thresholds;
            if self.churn >= 3 {
                // Labels keep getting demoted right after they enter: the
                // gate is too permissive for this workload.
                th.split_min_conflicts = (th.split_min_conflicts * 2).min(1 << 16);
                self.churn = 0;
                self.sink.set_thresholds(th);
                decide(
                    format!("threshold split_min_conflicts={}", th.split_min_conflicts),
                    "split labels churning".into(),
                );
            } else if split_now.is_empty()
                && promotions == 0
                && conflicts >= 8
                && conflicts * 20 >= commits
                && th.split_min_conflicts > 4
            {
                // Persistent conflicts but nothing ever crosses the gate:
                // absolute throughput is too low for the configured count.
                th.split_min_conflicts = (th.split_min_conflicts / 2).max(4);
                self.sink.set_thresholds(th);
                decide(
                    format!("threshold split_min_conflicts={}", th.split_min_conflicts),
                    format!("{conflicts} conflicts/epoch with an empty split set"),
                );
            }
        }
        self.prev_stats = Some(obs.stats);
        self.prev_split = split_now.clone();

        // ---- Publish: metrics, trace, history, status ----
        self.registry.counter("tuner_epochs").bump();
        self.registry.counter("tuner_promotions").add(promotions);
        self.registry.counter("tuner_demotions").add(demotions);
        self.registry
            .gauge("tuner_phase_len_us")
            .set(phase_len.as_micros().min(u64::MAX as u128) as u64);
        for d in &taken {
            trace::instant(EventKind::TunerDecision, d.epoch);
            self.decisions.push_back(d.clone());
            while self.decisions.len() > self.cfg.decision_history {
                self.decisions.pop_front();
            }
        }
        *self.inner.status.lock() = TunerStatus {
            epochs: epoch,
            phase_len,
            split_keys: split_now.iter().map(|k| k.heat_token()).collect(),
            decisions: self.decisions.iter().cloned().collect(),
        };
        taken
    }
}

/// A tuner running on its own thread, ticking every
/// [`TunerConfig::epoch`]. Stops on [`TunerHandle::stop`] or drop.
pub struct TunerHandle {
    inner: Arc<Inner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TunerHandle {
    /// Spawns the control loop.
    pub fn spawn(cfg: TunerConfig, sink: Arc<dyn TuneSink>, registry: Arc<Registry>) -> TunerHandle {
        let epoch_len = cfg.epoch;
        let mut tuner = Tuner::new(cfg, sink, registry);
        let inner = Arc::clone(&tuner.inner);
        let thread = std::thread::Builder::new()
            .name("doppel-tuner".into())
            .spawn(move || {
                let poll = Duration::from_millis(5).min(epoch_len);
                'outer: loop {
                    // Sleep one epoch in small steps so stop is prompt.
                    let mut slept = Duration::ZERO;
                    while slept < epoch_len {
                        if tuner.inner.stop.load(Ordering::Acquire) {
                            break 'outer;
                        }
                        std::thread::sleep(poll);
                        slept += poll;
                    }
                    tuner.tick();
                }
            })
            .expect("failed to spawn tuner thread");
        TunerHandle { inner, thread: Some(thread) }
    }

    /// A cloneable status reader (outlives the handle).
    pub fn watch(&self) -> TunerWatch {
        TunerWatch { inner: Arc::clone(&self.inner) }
    }

    /// The latest published status.
    pub fn status(&self) -> TunerStatus {
        self.inner.status.lock().clone()
    }

    /// Stops the control loop and joins its thread. Idempotent.
    pub fn stop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TunerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{OpKind, TuneObservation, TuneThresholds};

    /// A scriptable engine stand-in: the test sets the observation; the
    /// sink records what the tuner did to it.
    #[derive(Default)]
    struct MockSink {
        state: Mutex<MockState>,
    }

    #[derive(Default)]
    struct MockState {
        split: Vec<(Key, OpKind)>,
        activity: HashMap<Key, u64>,
        stats: StatsSnapshot,
        phase_len_us: u64,
        thresholds: Option<TuneThresholds>,
        /// Tokens the sink resolves (token → key), mimicking the
        /// classifier's conflict memory.
        resolvable: HashMap<u64, Key>,
    }

    impl TuneSink for MockSink {
        fn observe(&self) -> TuneObservation {
            let s = self.state.lock();
            TuneObservation {
                stats: s.stats,
                split_keys: s.split.clone(),
                split_activity: s
                    .split
                    .iter()
                    .map(|(k, _)| (*k, s.activity.get(k).copied().unwrap_or(0)))
                    .collect(),
                phase_len: Duration::from_micros(s.phase_len_us),
                thresholds: s
                    .thresholds
                    .unwrap_or(TuneThresholds { split_min_conflicts: 12, unsplit_stash_ratio: 8.0 }),
            }
        }

        fn promote(&self, token: u64) -> Option<(Key, OpKind)> {
            let mut s = self.state.lock();
            let key = *s.resolvable.get(&token)?;
            if s.split.iter().any(|(k, _)| *k == key) {
                return None;
            }
            s.split.push((key, OpKind::Add));
            Some((key, OpKind::Add))
        }

        fn demote(&self, key: Key) -> bool {
            let mut s = self.state.lock();
            let before = s.split.len();
            s.split.retain(|(k, _)| *k != key);
            s.split.len() < before
        }

        fn set_phase_len(&self, len: Duration) {
            self.state.lock().phase_len_us = len.as_micros() as u64;
        }

        fn set_thresholds(&self, t: TuneThresholds) {
            self.state.lock().thresholds = Some(t);
        }
    }

    fn cfg() -> TunerConfig {
        TunerConfig { promote_min_hits: 10, demote_idle_epochs: 2, ..TunerConfig::default() }
    }

    #[test]
    fn hot_key_is_promoted_from_heat_delta() {
        let sink = Arc::new(MockSink::default());
        let key = Key::raw(5);
        sink.state.lock().resolvable.insert(key.heat_token(), key);
        sink.state.lock().phase_len_us = 20_000;
        let registry = Arc::new(Registry::new());
        let mut tuner = Tuner::new(cfg(), Arc::clone(&sink) as Arc<dyn TuneSink>, Arc::clone(&registry));

        // Epoch 1: 4 hits — under the promote threshold.
        for _ in 0..4 {
            registry.heat().record(key.heat_token());
        }
        assert!(tuner.tick().is_empty());
        // Epoch 2: 15 more hits — promoted.
        for _ in 0..15 {
            registry.heat().record(key.heat_token());
        }
        let decisions = tuner.tick();
        assert_eq!(decisions.len(), 1, "{decisions:?}");
        assert!(decisions[0].action.starts_with("promote"), "{decisions:?}");
        assert_eq!(sink.state.lock().split.len(), 1);
        assert_eq!(tuner.status().split_keys, vec![key.heat_token()]);
        assert_eq!(registry.snapshot().scalar("tuner_promotions"), Some(1));
    }

    #[test]
    fn idle_split_key_is_demoted_after_hysteresis() {
        let sink = Arc::new(MockSink::default());
        let key = Key::raw(5);
        {
            let mut s = sink.state.lock();
            s.split.push((key, OpKind::Add));
            s.phase_len_us = 20_000;
        }
        let registry = Arc::new(Registry::new());
        let mut tuner = Tuner::new(cfg(), Arc::clone(&sink) as Arc<dyn TuneSink>, registry);

        // Epoch 1 adopts the externally-split key (and starts its grace).
        let d = tuner.tick();
        assert!(d.iter().any(|d| d.action.starts_with("adopt")), "{d:?}");
        // Busy epochs: activity grows, no demotion ever.
        for i in 1..=3u64 {
            sink.state.lock().activity.insert(key, 100 * i);
            assert!(tuner.tick().is_empty());
        }
        // Idle epochs: activity frozen, heat cold. Two consecutive idle
        // epochs (demote_idle_epochs) are needed — no early demotion.
        assert!(tuner.tick().is_empty(), "first idle epoch is not enough");
        let d = tuner.tick();
        assert!(d.iter().any(|d| d.action.starts_with("demote")), "{d:?}");
        assert!(sink.state.lock().split.is_empty());
    }

    #[test]
    fn stash_latency_steers_phase_len_within_bounds() {
        let sink = Arc::new(MockSink::default());
        sink.state.lock().phase_len_us = 20_000;
        let registry = Arc::new(Registry::new());
        let mut tuner = Tuner::new(cfg(), Arc::clone(&sink) as Arc<dyn TuneSink>, Arc::clone(&registry));

        // Slow replays (100ms ≫ the 30ms target) → phases shrink.
        let hist = registry.histogram("stash_replay");
        for _ in 0..32 {
            hist.record(0, Duration::from_millis(100));
        }
        let d = tuner.tick();
        assert!(d.iter().any(|d| d.action.starts_with("phase_len")), "{d:?}");
        let shrunk = sink.state.lock().phase_len_us;
        assert!(shrunk < 20_000, "phase_len shrank: {shrunk}");

        // Very fast replays → phases grow again, but never past the bound.
        for epoch in 0..64 {
            for _ in 0..32 {
                hist.record(0, Duration::from_micros(100));
            }
            tuner.tick();
            let now = sink.state.lock().phase_len_us;
            assert!(
                now <= cfg().max_phase_len.as_micros() as u64,
                "epoch {epoch}: {now} within bounds"
            );
        }
        let grown = sink.state.lock().phase_len_us;
        assert!(grown > shrunk, "phase_len recovered: {grown} > {shrunk}");
    }

    #[test]
    fn persistent_conflicts_with_empty_split_set_lower_the_gate() {
        let sink = Arc::new(MockSink::default());
        sink.state.lock().phase_len_us = 20_000;
        let registry = Arc::new(Registry::new());
        let mut tuner = Tuner::new(cfg(), Arc::clone(&sink) as Arc<dyn TuneSink>, registry);

        tuner.tick(); // establish the stats baseline
        {
            let mut s = sink.state.lock();
            s.stats.commits = 100;
            s.stats.conflicts = 50; // 50% conflict rate, nothing split
        }
        let d = tuner.tick();
        assert!(d.iter().any(|d| d.action.starts_with("threshold")), "{d:?}");
        assert_eq!(sink.state.lock().thresholds.unwrap().split_min_conflicts, 6);
    }

    #[test]
    fn handle_spawns_ticks_and_stops() {
        let sink = Arc::new(MockSink::default());
        sink.state.lock().phase_len_us = 20_000;
        let registry = Arc::new(Registry::new());
        let cfg = TunerConfig { epoch: Duration::from_millis(5), ..cfg() };
        let mut handle =
            TunerHandle::spawn(cfg, Arc::clone(&sink) as Arc<dyn TuneSink>, registry);
        let watch = handle.watch();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while watch.status().epochs < 3 {
            assert!(std::time::Instant::now() < deadline, "tuner never ticked");
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        let frozen = watch.status().epochs;
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(watch.status().epochs, frozen, "stopped tuner must not tick");
    }
}
