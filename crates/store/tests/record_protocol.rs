//! Concurrency and model-based tests of the record/version-word protocol the
//! OCC and reconciliation paths rely on.

use doppel_common::{Key, Op, Tid, TidGenerator, Value};
use doppel_store::{Record, RecordReadError, Store};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Readers never observe a torn value while writers continuously lock,
/// mutate and publish: every stable read returns a value that some committed
/// write produced, with its matching TID.
#[test]
fn stable_reads_are_never_torn() {
    let record = Arc::new(Record::new_with(Value::Int(0)));
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: value always equals 1000 * tid sequence number.
    let writer = {
        let record = Arc::clone(&record);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut gen = TidGenerator::new(1);
            for _ in 0..30_000 {
                record.lock_spin();
                let tid = gen.next();
                record
                    .apply_and_unlock(&Op::Put(Value::Int(tid.seq() as i64 * 1_000)), tid)
                    .unwrap();
            }
            stop.store(true, Ordering::Release);
        })
    };

    let reader = {
        let record = Arc::clone(&record);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            let check = |record: &Record| match record.read_stable() {
                Ok((tid, Some(Value::Int(v)))) => {
                    assert_eq!(
                        v,
                        tid.seq() as i64 * 1_000,
                        "value and TID must come from the same committed write"
                    );
                    true
                }
                Ok((_, other)) => panic!("unexpected value {other:?}"),
                Err(RecordReadError::Locked) => false,
            };
            while !stop.load(Ordering::Acquire) {
                if check(&record) {
                    observed += 1;
                }
            }
            // On a single-CPU host the writer may finish before this thread is
            // ever scheduled; take one final snapshot (the writer is done, so
            // the record is unlocked) so the consistency check always runs.
            assert!(check(&record), "a quiescent record must be readable");
            observed + 1
        })
    };

    writer.join().unwrap();
    let observed = reader.join().unwrap();
    assert!(observed > 0, "the reader should have taken at least one stable snapshot");
}

/// The store's get_or_create never produces two records for one key even when
/// racing threads create keys concurrently.
#[test]
fn concurrent_creation_is_unique() {
    let store = Arc::new(Store::new(8));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut pointers = Vec::new();
            for i in 0..1_000u64 {
                let r = store.get_or_create(Key::raw(i));
                if t == 0 {
                    pointers.push((i, Arc::as_ptr(&r) as usize));
                }
            }
            pointers
        }));
    }
    let reference: Vec<(u64, usize)> = handles.remove(0).join().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    // Re-resolving each key must give the same record the first thread saw.
    for (key, ptr) in reference {
        let again = store.get(&Key::raw(key)).unwrap();
        assert_eq!(Arc::as_ptr(&again) as usize, ptr, "key {key} was created twice");
    }
    assert_eq!(store.len(), 1_000);
}

proptest! {
    /// Model check: a sequence of lock/apply/unlock operations through the
    /// record equals folding the same operations over a plain value.
    #[test]
    fn record_apply_matches_model(args in prop::collection::vec((-100i64..100, 0u8..4), 1..40)) {
        let record = Record::new_with(Value::Int(0));
        let mut gen = TidGenerator::new(0);
        let mut model = Value::Int(0);
        for (n, kind) in args {
            let op = match kind {
                0 => Op::Add(n),
                1 => Op::Max(n),
                2 => Op::Min(n),
                _ => Op::Put(Value::Int(n)),
            };
            model = op.apply_to(Some(&model)).unwrap();
            record.lock_spin();
            record.apply_and_unlock(&op, gen.next()).unwrap();
        }
        prop_assert_eq!(record.read_unlocked(), Some(model));
        prop_assert!(!record.is_locked());
    }

    /// Validation accepts exactly the TID that was last published.
    #[test]
    fn validation_tracks_published_tid(seqs in prop::collection::vec(1u64..1_000, 1..20)) {
        let record = Record::new_absent();
        let mut last = Tid::ZERO;
        for (i, seq) in seqs.iter().enumerate() {
            record.lock_spin();
            let tid = Tid::from_parts(*seq + i as u64 * 1_000, 1);
            record.apply_and_unlock(&Op::Add(1), tid).unwrap();
            prop_assert!(record.validate(tid, false));
            if last != Tid::ZERO {
                prop_assert!(!record.validate(last, false), "stale TID must not validate");
            }
            last = tid;
        }
    }
}
