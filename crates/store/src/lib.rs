//! Concurrent in-memory key/value store substrate.
//!
//! The paper's implementation section (§6) describes the shared store as "a
//! set of key/value maps, using per-key locks. The maps are implemented as
//! hash tables." This crate is that substrate:
//!
//! * [`Record`] — one database record: a Silo-style version word (lock bit +
//!   TID) plus the typed value, protected by a per-record lock;
//! * [`Store`] — a sharded hash table mapping [`Key`]s to shared records.
//!
//! Every concurrency-control engine in the workspace (OCC, 2PL, Doppel's
//! joined and split phases, and reconciliation merges) is built on these two
//! types.

pub mod record;
pub mod store;

pub use record::{Record, RecordReadError};
pub use store::{Store, StoreStats};

pub use doppel_common::{Key, Tid, Value};
