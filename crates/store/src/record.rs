//! Database records with Silo-style version words.
//!
//! A [`Record`] packs the concurrency-control metadata the paper's commit
//! protocols need (Figures 2–4):
//!
//! * a *version word*: one `AtomicU64` holding a lock bit and the TID of the
//!   last transaction that wrote the record;
//! * the typed value, protected by a per-record reader/writer lock.
//!
//! OCC readers take a consistent snapshot of `(TID, value)` and abort when
//! they observe the lock bit ("Doppel and OCC transactions abort and later
//! retry when they see a locked item", §8.1). OCC writers acquire the lock
//! bit at commit, apply their buffered operations, then publish the new TID
//! and release the lock in a single store.

use doppel_common::{Op, Tid, TxError, Value};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock bit in the version word (bit 63). TIDs use the low 63 bits.
const LOCK_BIT: u64 = 1 << 63;

/// Why an optimistic read could not produce a stable snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordReadError {
    /// The record is locked by a committing transaction.
    Locked,
}

/// A single database record.
///
/// Records are created once and never removed (the store grows
/// monotonically, as in the paper's benchmarks); a record whose value is
/// `None` is *logically absent*: it exists so that concurrent inserts and
/// reads of a missing key can still be validated against a TID.
#[derive(Debug)]
pub struct Record {
    /// Version word: `LOCK_BIT | tid`.
    meta: AtomicU64,
    /// The value; `None` means logically absent.
    value: RwLock<Option<Value>>,
}

impl Record {
    /// Creates a logically absent record (TID 0, no value).
    pub fn new_absent() -> Self {
        Record { meta: AtomicU64::new(0), value: RwLock::new(None) }
    }

    /// Creates a record holding `v`, with TID 0 ("never written by a
    /// transaction"). Used for bulk loading.
    pub fn new_with(v: Value) -> Self {
        Record { meta: AtomicU64::new(0), value: RwLock::new(Some(v)) }
    }

    /// The current TID, ignoring the lock bit. Only meaningful for
    /// diagnostics; concurrency-control decisions must use
    /// [`Record::read_stable`] / [`Record::validate`].
    pub fn tid(&self) -> Tid {
        Tid(self.meta.load(Ordering::Acquire) & !LOCK_BIT)
    }

    /// True if a committing transaction currently holds the record lock.
    pub fn is_locked(&self) -> bool {
        self.meta.load(Ordering::Acquire) & LOCK_BIT != 0
    }

    /// Optimistic read: returns a consistent `(TID, value)` snapshot, or
    /// [`RecordReadError::Locked`] if a committer holds the lock.
    pub fn read_stable(&self) -> Result<(Tid, Option<Value>), RecordReadError> {
        // Taking the value read lock first means a concurrent committer (who
        // applies its writes under the value *write* lock) cannot be midway
        // through mutating the value while we clone it; checking the lock bit
        // afterwards rejects snapshots taken while a committer has announced
        // intent but not yet applied its writes.
        //
        // Lock-bit check comes before the clone: a locked record used to pay
        // for a full value copy it then threw away. The clone itself is a
        // cheap handle — every variant shares its backing storage
        // copy-on-write (`Bytes`, `TopKSet`, `IntSet`), so snapshotting a
        // 10k-element set under the guard is a refcount bump, not an O(n)
        // copy held across the critical section.
        let guard = self.value.read();
        let meta = self.meta.load(Ordering::Acquire);
        if meta & LOCK_BIT != 0 {
            return Err(RecordReadError::Locked);
        }
        let snapshot = guard.clone();
        drop(guard);
        Ok((Tid(meta), snapshot))
    }

    /// Reads the value without any concurrency control. Only meaningful when
    /// the store is quiescent (loading, test assertions, post-run checks) or
    /// when the caller holds the value lock another way (2PL's shared lock).
    /// Like [`Record::read_stable`], the returned value is a copy-on-write
    /// handle, not a deep copy.
    pub fn read_unlocked(&self) -> Option<Value> {
        self.value.read().clone()
    }

    /// Directly overwrites the value without changing the TID. Used for bulk
    /// loading before any transaction runs.
    pub fn load(&self, v: Value) {
        *self.value.write() = Some(v);
    }

    /// Tries to acquire the record lock (commit protocol part 1). Returns
    /// `false` if another transaction holds it.
    pub fn try_lock(&self) -> bool {
        let cur = self.meta.load(Ordering::Relaxed);
        if cur & LOCK_BIT != 0 {
            return false;
        }
        self.meta
            .compare_exchange(cur, cur | LOCK_BIT, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires the record lock, spinning until it is available. Used by
    /// reconciliation merges (Figure 4), which must not abort.
    pub fn lock_spin(&self) {
        let mut spins = 0u32;
        loop {
            if self.try_lock() {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Releases the record lock without changing the TID (used when a commit
    /// aborts after part 1).
    pub fn unlock(&self) {
        let cur = self.meta.load(Ordering::Relaxed);
        debug_assert!(cur & LOCK_BIT != 0, "unlock of an unlocked record");
        self.meta.store(cur & !LOCK_BIT, Ordering::Release);
    }

    /// OCC read-set validation (commit protocol part 2): the record must
    /// still carry `read_tid` and must not be locked by *another*
    /// transaction. `in_write_set` tells the validator whether the caller
    /// itself holds the record lock.
    pub fn validate(&self, read_tid: Tid, in_write_set: bool) -> bool {
        let meta = self.meta.load(Ordering::Acquire);
        let locked = meta & LOCK_BIT != 0;
        let tid = Tid(meta & !LOCK_BIT);
        if tid != read_tid {
            return false;
        }
        if locked && !in_write_set {
            return false;
        }
        true
    }

    /// Applies a buffered operation and publishes `commit_tid`, releasing the
    /// record lock (commit protocol part 3).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the caller holds the record lock.
    pub fn apply_and_unlock(&self, op: &Op, commit_tid: Tid) -> Result<(), TxError> {
        debug_assert!(self.is_locked(), "apply_and_unlock without holding the record lock");
        let result = {
            let mut guard = self.value.write();
            match op.apply_to(guard.as_ref()) {
                Ok(new) => {
                    *guard = Some(new);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        };
        match result {
            Ok(()) => {
                // Publish the new TID and release the lock in one store.
                debug_assert_eq!(commit_tid.raw() & LOCK_BIT, 0, "TID overflow into lock bit");
                self.meta.store(commit_tid.raw(), Ordering::Release);
                Ok(())
            }
            Err(e) => {
                // Type errors leave the value untouched; release the lock
                // without bumping the TID.
                self.unlock();
                Err(e)
            }
        }
    }

    /// Applies an operation while the caller already holds the record lock,
    /// *without* releasing it. Used by reconciliation merges that bump the
    /// TID once after merging a slice.
    pub fn apply_locked(&self, op: &Op) -> Result<(), TxError> {
        debug_assert!(self.is_locked(), "apply_locked without holding the record lock");
        let mut guard = self.value.write();
        let new = op.apply_to(guard.as_ref())?;
        *guard = Some(new);
        Ok(())
    }

    /// Publishes `commit_tid` and releases the lock without touching the
    /// value (companion to [`Record::apply_locked`]).
    pub fn publish_and_unlock(&self, commit_tid: Tid) {
        debug_assert!(self.is_locked(), "publish_and_unlock without holding the record lock");
        debug_assert_eq!(commit_tid.raw() & LOCK_BIT, 0, "TID overflow into lock bit");
        self.meta.store(commit_tid.raw(), Ordering::Release);
    }

    /// Acquires the value lock for shared (read) access and returns an owned
    /// guard. Used by the 2PL engine, which holds value locks across the
    /// whole transaction.
    pub fn value_lock(&self) -> &RwLock<Option<Value>> {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::TidGenerator;
    use std::sync::Arc;

    #[test]
    fn new_records() {
        let absent = Record::new_absent();
        assert_eq!(absent.tid(), Tid::ZERO);
        assert!(!absent.is_locked());
        assert_eq!(absent.read_unlocked(), None);

        let full = Record::new_with(Value::Int(7));
        assert_eq!(full.read_unlocked(), Some(Value::Int(7)));
    }

    #[test]
    fn read_stable_and_locking() {
        let r = Record::new_with(Value::Int(1));
        let (tid, v) = r.read_stable().unwrap();
        assert_eq!(tid, Tid::ZERO);
        assert_eq!(v, Some(Value::Int(1)));

        assert!(r.try_lock());
        assert!(r.is_locked());
        assert!(!r.try_lock(), "second lock attempt must fail");
        assert_eq!(r.read_stable(), Err(RecordReadError::Locked));
        r.unlock();
        assert!(!r.is_locked());
        assert!(r.read_stable().is_ok());
    }

    #[test]
    fn apply_and_unlock_bumps_tid() {
        let r = Record::new_with(Value::Int(10));
        let mut gen = TidGenerator::new(1);
        assert!(r.try_lock());
        let tid = gen.next();
        r.apply_and_unlock(&Op::Add(5), tid).unwrap();
        assert!(!r.is_locked());
        assert_eq!(r.tid(), tid);
        assert_eq!(r.read_unlocked(), Some(Value::Int(15)));
    }

    #[test]
    fn apply_type_error_releases_lock_and_keeps_tid() {
        let r = Record::new_with(Value::from("str"));
        assert!(r.try_lock());
        let err = r.apply_and_unlock(&Op::Add(5), Tid::from_parts(1, 0)).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
        assert!(!r.is_locked());
        assert_eq!(r.tid(), Tid::ZERO);
        assert_eq!(r.read_unlocked(), Some(Value::from("str")));
    }

    #[test]
    fn validation_semantics() {
        let r = Record::new_with(Value::Int(0));
        let t0 = r.tid();
        assert!(r.validate(t0, false));
        // Someone else holds the lock → invalid unless it is our own write.
        assert!(r.try_lock());
        assert!(!r.validate(t0, false));
        assert!(r.validate(t0, true));
        r.unlock();
        // TID moved on → invalid.
        assert!(r.try_lock());
        r.apply_and_unlock(&Op::Add(1), Tid::from_parts(3, 0)).unwrap();
        assert!(!r.validate(t0, false));
        assert!(r.validate(Tid::from_parts(3, 0), false));
    }

    #[test]
    fn apply_locked_then_publish() {
        let r = Record::new_absent();
        r.lock_spin();
        r.apply_locked(&Op::Max(4)).unwrap();
        r.apply_locked(&Op::Max(9)).unwrap();
        r.publish_and_unlock(Tid::from_parts(2, 1));
        assert_eq!(r.read_unlocked(), Some(Value::Int(9)));
        assert_eq!(r.tid(), Tid::from_parts(2, 1));
        assert!(!r.is_locked());
    }

    #[test]
    fn concurrent_lock_contention_is_exclusive() {
        let r = Arc::new(Record::new_with(Value::Int(0)));
        let threads = 4;
        let iters = 1_000;
        let mut handles = Vec::new();
        for t in 0..threads {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut gen = TidGenerator::new(t + 1);
                for _ in 0..iters {
                    r.lock_spin();
                    let tid = gen.next_after([r.tid()]);
                    r.apply_and_unlock(&Op::Add(1), tid).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.read_unlocked(), Some(Value::Int((threads * iters) as i64)));
    }

    #[test]
    fn load_overwrites_value_only() {
        let r = Record::new_absent();
        r.load(Value::Int(42));
        assert_eq!(r.read_unlocked(), Some(Value::Int(42)));
        assert_eq!(r.tid(), Tid::ZERO);
    }
}
