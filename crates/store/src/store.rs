//! The sharded hash-table store.
//!
//! "Workers read and write to a shared store, which is a set of key/value
//! maps, using per-key locks. The maps are implemented as hash tables." (§6)
//!
//! The store is sharded to keep the hash-table locks themselves from becoming
//! a bottleneck: the interesting contention in the paper is on *records*, not
//! on the map. Records are reference-counted and never removed, so engines
//! can cache `Arc<Record>` pointers in read/write sets without holding shard
//! locks.

use crate::record::Record;
use doppel_common::{Key, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Point-in-time statistics about a [`Store`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of records (present or logically absent).
    pub records: usize,
    /// Number of shards.
    pub shards: usize,
    /// Size of the largest shard, to spot skewed sharding.
    pub largest_shard: usize,
}

/// A sharded concurrent map from [`Key`] to [`Record`].
#[derive(Debug)]
pub struct Store {
    shards: Vec<RwLock<HashMap<Key, Arc<Record>>>>,
    mask: u64,
    len: AtomicUsize,
}

impl Store {
    /// Creates a store with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Store {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: shards as u64 - 1,
            len: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, k: &Key) -> &RwLock<HashMap<Key, Arc<Record>>> {
        let idx = (k.stable_hash() & self.mask) as usize;
        &self.shards[idx]
    }

    /// Number of records in the store.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the record for `k`, if it exists.
    pub fn get(&self, k: &Key) -> Option<Arc<Record>> {
        self.shard_for(k).read().get(k).cloned()
    }

    /// Looks up the record for `k`, creating a logically absent record if it
    /// does not exist. This is the path used by write operations (inserts)
    /// and by reads that must be validated against later inserts.
    pub fn get_or_create(&self, k: Key) -> Arc<Record> {
        if let Some(r) = self.shard_for(&k).read().get(&k) {
            return Arc::clone(r);
        }
        let mut shard = self.shard_for(&k).write();
        let entry = shard.entry(k).or_insert_with(|| {
            self.len.fetch_add(1, Ordering::Relaxed);
            Arc::new(Record::new_absent())
        });
        Arc::clone(entry)
    }

    /// Loads `(k, v)` directly, bypassing concurrency control. Intended for
    /// pre-populating benchmarks ("we pre-allocate all the records", §8.1).
    pub fn load(&self, k: Key, v: Value) {
        let record = self.get_or_create(k);
        record.load(v);
    }

    /// Reads a value without concurrency control. Only meaningful when the
    /// store is quiescent.
    pub fn read_unlocked(&self, k: &Key) -> Option<Value> {
        self.get(k).and_then(|r| r.read_unlocked())
    }

    /// Applies `f` to every `(key, record)` pair. Only meaningful when the
    /// store is quiescent; used by tests and invariant checks.
    pub fn for_each(&self, mut f: impl FnMut(&Key, &Arc<Record>)) {
        for shard in &self.shards {
            let guard = shard.read();
            for (k, r) in guard.iter() {
                f(k, r);
            }
        }
    }

    /// Collects all keys. Only meaningful when the store is quiescent.
    pub fn keys(&self) -> Vec<Key> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, _| out.push(*k));
        out
    }

    /// Store-level statistics.
    pub fn stats(&self) -> StoreStats {
        let mut largest = 0;
        for shard in &self.shards {
            largest = largest.max(shard.read().len());
        }
        StoreStats { records: self.len(), shards: self.shards.len(), largest_shard: largest }
    }
}

impl Default for Store {
    fn default() -> Self {
        Store::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{Op, Tid};
    use std::thread;

    #[test]
    fn shards_round_up_to_power_of_two() {
        assert_eq!(Store::new(0).stats().shards, 1);
        assert_eq!(Store::new(3).stats().shards, 4);
        assert_eq!(Store::new(256).stats().shards, 256);
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let s = Store::new(8);
        let a = s.get_or_create(Key::raw(1));
        let b = s.get_or_create(Key::raw(1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(s.len(), 1);
        assert!(s.get(&Key::raw(2)).is_none());
    }

    #[test]
    fn load_and_read() {
        let s = Store::new(8);
        s.load(Key::raw(5), Value::Int(50));
        assert_eq!(s.read_unlocked(&Key::raw(5)), Some(Value::Int(50)));
        assert_eq!(s.read_unlocked(&Key::raw(6)), None);
        assert!(!s.is_empty());
    }

    #[test]
    fn for_each_and_keys() {
        let s = Store::new(4);
        for i in 0..100 {
            s.load(Key::raw(i), Value::Int(i as i64));
        }
        let mut keys = s.keys();
        keys.sort();
        assert_eq!(keys.len(), 100);
        assert_eq!(keys[0], Key::raw(0));
        let mut sum = 0;
        s.for_each(|_, r| sum += r.read_unlocked().unwrap().as_int().unwrap());
        assert_eq!(sum, (0..100).sum::<i64>());
    }

    #[test]
    fn stats_track_largest_shard() {
        let s = Store::new(2);
        for i in 0..64 {
            s.load(Key::raw(i), Value::Int(0));
        }
        let st = s.stats();
        assert_eq!(st.records, 64);
        assert!(st.largest_shard >= 32);
    }

    #[test]
    fn concurrent_get_or_create_counts_each_key_once() {
        let s = Arc::new(Store::new(16));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    let r = s.get_or_create(Key::raw(i));
                    r.lock_spin();
                    let tid = Tid(r.tid().raw() + (1 << 10));
                    r.apply_and_unlock(&Op::Add(1), tid).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 500);
        let mut total = 0;
        s.for_each(|_, r| total += r.read_unlocked().unwrap().as_int().unwrap());
        assert_eq!(total, 2000);
    }
}
