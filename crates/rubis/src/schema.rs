//! RUBiS key schema.
//!
//! RUBiS has 7 base tables plus the materialized aggregates and top-K indexes
//! the paper's port adds. Every record is addressed by a [`Key`] built by one
//! of the constructors in [`keys`].

use doppel_common::{Key, Table};

/// Capacity of the top-K index records (items per category/region, bids per
/// item). The original RUBiS pages show 20–25 entries per listing page.
pub const INDEX_TOP_K: usize = 25;

/// Key constructors for every RUBiS table, aggregate and index.
pub mod keys {
    use super::*;

    /// Users table row.
    pub fn user(id: u64) -> Key {
        Key::new(Table::RubisUser, id, 0)
    }

    /// Items table row.
    pub fn item(id: u64) -> Key {
        Key::new(Table::RubisItem, id, 0)
    }

    /// Categories table row.
    pub fn category(id: u64) -> Key {
        Key::new(Table::RubisCategory, id, 0)
    }

    /// Regions table row.
    pub fn region(id: u64) -> Key {
        Key::new(Table::RubisRegion, id, 0)
    }

    /// Bids table row.
    pub fn bid(id: u64) -> Key {
        Key::new(Table::RubisBid, id, 0)
    }

    /// Buy-now table row.
    pub fn buy_now(id: u64) -> Key {
        Key::new(Table::RubisBuyNow, id, 0)
    }

    /// Comments table row.
    pub fn comment(id: u64) -> Key {
        Key::new(Table::RubisComment, id, 0)
    }

    /// Materialized highest bid for an item (integer, updated with `Max`).
    pub fn max_bid(item: u64) -> Key {
        Key::new(Table::RubisMaxBid, item, 0)
    }

    /// Materialized highest bidder for an item (ordered tuple, updated with
    /// `OPut` ordered by `[amount, timestamp]`).
    pub fn max_bidder(item: u64) -> Key {
        Key::new(Table::RubisMaxBidder, item, 0)
    }

    /// Materialized number of bids on an item (integer, updated with `Add`).
    pub fn num_bids(item: u64) -> Key {
        Key::new(Table::RubisNumBids, item, 0)
    }

    /// Materialized rating of a user (integer, updated with `Add`).
    pub fn user_rating(user: u64) -> Key {
        Key::new(Table::RubisUserRating, user, 0)
    }

    /// Top-K index of items in a category (ordered by item id, i.e. newest
    /// items first).
    pub fn items_by_category(category: u64) -> Key {
        Key::new(Table::RubisItemsByCategory, category, 0)
    }

    /// Top-K index of items in a region.
    pub fn items_by_region(region: u64) -> Key {
        Key::new(Table::RubisItemsByRegion, region, 0)
    }

    /// Top-K index of the bids on an item (ordered by amount).
    pub fn bids_per_item(item: u64) -> Key {
        Key::new(Table::RubisBidsPerItem, item, 0)
    }

    /// Top-K index of the comments received by a user (ordered by time).
    pub fn comments_by_user(user: u64) -> Key {
        Key::new(Table::RubisCommentsByUser, user, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::keys;
    use doppel_common::Table;

    #[test]
    fn keys_land_in_their_tables() {
        assert_eq!(keys::user(1).table(), Table::RubisUser);
        assert_eq!(keys::item(1).table(), Table::RubisItem);
        assert_eq!(keys::category(1).table(), Table::RubisCategory);
        assert_eq!(keys::region(1).table(), Table::RubisRegion);
        assert_eq!(keys::bid(1).table(), Table::RubisBid);
        assert_eq!(keys::buy_now(1).table(), Table::RubisBuyNow);
        assert_eq!(keys::comment(1).table(), Table::RubisComment);
        assert_eq!(keys::max_bid(1).table(), Table::RubisMaxBid);
        assert_eq!(keys::max_bidder(1).table(), Table::RubisMaxBidder);
        assert_eq!(keys::num_bids(1).table(), Table::RubisNumBids);
        assert_eq!(keys::user_rating(1).table(), Table::RubisUserRating);
        assert_eq!(keys::items_by_category(1).table(), Table::RubisItemsByCategory);
        assert_eq!(keys::items_by_region(1).table(), Table::RubisItemsByRegion);
        assert_eq!(keys::bids_per_item(1).table(), Table::RubisBidsPerItem);
        assert_eq!(keys::comments_by_user(1).table(), Table::RubisCommentsByUser);
    }

    #[test]
    fn same_id_different_tables_are_distinct() {
        assert_ne!(keys::user(5), keys::item(5));
        assert_ne!(keys::max_bid(5), keys::num_bids(5));
        assert_eq!(keys::user(5), keys::user(5));
    }
}
