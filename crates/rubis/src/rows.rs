//! RUBiS row types and their byte-string encoding.
//!
//! RUBiS rows are stored as [`Value::Bytes`] records. The encoding is JSON:
//! compact enough for a benchmark, self-describing for debugging, and — most
//! importantly — identical for every engine being compared, so serialization
//! cost cancels out of the comparisons.

use bytes::Bytes;
use doppel_common::Value;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// Encodes a row struct into a [`Value::Bytes`].
pub fn encode<T: Serialize>(row: &T) -> Value {
    Value::Bytes(Bytes::from(serde_json::to_vec(row).expect("row encoding cannot fail")))
}

/// Decodes a row struct from a [`Value`], returning `None` for missing or
/// non-byte values.
pub fn decode<T: DeserializeOwned>(value: Option<&Value>) -> Option<T> {
    match value {
        Some(Value::Bytes(b)) => serde_json::from_slice(b).ok(),
        _ => None,
    }
}

/// A row in the users table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRow {
    /// Primary key.
    pub id: u64,
    /// Login name.
    pub nickname: String,
    /// Home region (foreign key into the regions table).
    pub region: u64,
    /// Account creation timestamp (logical).
    pub created_at: i64,
}

/// A row in the items table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemRow {
    /// Primary key.
    pub id: u64,
    /// Auction title.
    pub name: String,
    /// Seller (foreign key into the users table).
    pub seller: u64,
    /// Category (foreign key).
    pub category: u64,
    /// Starting price in cents.
    pub initial_price: i64,
    /// Buy-now price in cents (0 = none).
    pub buy_now_price: i64,
    /// Auction end timestamp (logical).
    pub end_date: i64,
}

/// A row in the bids table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BidRow {
    /// Primary key.
    pub id: u64,
    /// The item being bid on.
    pub item: u64,
    /// The bidding user.
    pub bidder: u64,
    /// Bid amount in cents.
    pub amount: i64,
    /// Bid timestamp (logical).
    pub placed_at: i64,
}

/// A row in the comments table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommentRow {
    /// Primary key.
    pub id: u64,
    /// The commenting user.
    pub author: u64,
    /// The user being commented on (an auction's seller).
    pub about_user: u64,
    /// The item the comment refers to.
    pub item: u64,
    /// Rating delta in [-5, 5].
    pub rating: i64,
    /// Comment text.
    pub text: String,
}

/// A row in the buy-now table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuyNowRow {
    /// Primary key.
    pub id: u64,
    /// The purchased item.
    pub item: u64,
    /// The buying user.
    pub buyer: u64,
    /// Quantity purchased.
    pub quantity: i64,
    /// Purchase timestamp (logical).
    pub bought_at: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_row_roundtrip() {
        let row = UserRow { id: 7, nickname: "alice".into(), region: 3, created_at: 99 };
        let v = encode(&row);
        let back: UserRow = decode(Some(&v)).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn item_row_roundtrip() {
        let row = ItemRow {
            id: 1,
            name: "vintage lamp".into(),
            seller: 2,
            category: 3,
            initial_price: 1500,
            buy_now_price: 0,
            end_date: 1234,
        };
        let back: ItemRow = decode(Some(&encode(&row))).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn bid_comment_buynow_roundtrip() {
        let bid = BidRow { id: 1, item: 2, bidder: 3, amount: 500, placed_at: 10 };
        assert_eq!(decode::<BidRow>(Some(&encode(&bid))).unwrap(), bid);
        let c = CommentRow {
            id: 1,
            author: 2,
            about_user: 3,
            item: 4,
            rating: 5,
            text: "great seller".into(),
        };
        assert_eq!(decode::<CommentRow>(Some(&encode(&c))).unwrap(), c);
        let b = BuyNowRow { id: 1, item: 2, buyer: 3, quantity: 1, bought_at: 9 };
        assert_eq!(decode::<BuyNowRow>(Some(&encode(&b))).unwrap(), b);
    }

    #[test]
    fn decode_handles_missing_and_wrong_types() {
        assert_eq!(decode::<UserRow>(None), None);
        assert_eq!(decode::<UserRow>(Some(&Value::Int(3))), None);
        assert_eq!(decode::<UserRow>(Some(&Value::from("not json"))), None);
    }
}
