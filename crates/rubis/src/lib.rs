//! A port of the RUBiS auction benchmark to the Doppel framework (§7, §8.8).
//!
//! "We used RUBiS, an auction website modeled after eBay, to evaluate Doppel
//! on a realistic application. RUBiS users can register items for auction,
//! place bids, make comments, and browse listings. RUBiS has 7 tables (users,
//! items, categories, regions, bids, buy now, and comments) and 26
//! interactions based on 17 database transactions."
//!
//! The implementation follows the paper's port:
//!
//! * the materialized aggregates `maxBid`, `maxBidder` and `numBids` per item
//!   and `userRating` per user are separate records;
//! * `StoreBid`, `StoreComment` and `StoreItem` exist in two forms: the
//!   *classic* read-modify-write form (Figure 6) and the *Doppel* form
//!   (Figure 7) that uses the commutative `Max`, `Add`, `OPut` and
//!   `TopKInsert` operations so the transactions can run in split phases;
//! * top-K set indexes (`itemsByCategory`, `itemsByRegion`, `bidsPerItem`)
//!   accelerate the browsing transactions;
//! * the workload mixes RUBiS-B (the standard bidding mix, ~7% writes,
//!   uniform item popularity) and RUBiS-C (50% bids on Zipfian-popular items)
//!   drive the whole application through the same [`doppel_workloads::Driver`]
//!   harness as the microbenchmarks.
//!
//! As in the paper, "the implementation includes only the database
//! transactions; there are no web servers or browsers."

pub mod data;
pub mod procs;
pub mod rows;
pub mod schema;
pub mod txns;
pub mod workload;

pub use data::{RubisData, RubisScale};
pub use procs::{hint_hot_items, register_rubis, rubis_registry, RubisProcs, RUBIS_PROCS};
pub use rows::{BidRow, BuyNowRow, CommentRow, ItemRow, UserRow};
pub use schema::keys;
pub use txns::TxnStyle;
pub use workload::{RubisCall, RubisCallGenerator, RubisMix, RubisWorkload};
