//! RUBiS transaction mixes and the [`Workload`] implementation driving them.
//!
//! Two mixes reproduce §8.8:
//!
//! * **RUBiS-B** — "the Bidding workload specified in the RUBiS benchmark,
//!   which consists of 15% read-write transactions and 85% read-only
//!   transactions; this ends up producing 7% total writes and 93% total
//!   reads. … There are 1M users bidding on 33K auctions, and access is
//!   uniform."
//! * **RUBiS-C** — "a higher-contention workload … 50% of its transactions
//!   are bids on items chosen with a Zipfian distribution and varying α. This
//!   approximates very popular auctions nearing their close. The workload
//!   executes non-bid transactions in correspondingly reduced proportions."

use crate::data::{RubisData, RubisScale};
use crate::procs::{args as proc_args, rubis_registry, RubisProcs};
use crate::txns::TxnStyle;
use doppel_common::{Args, Engine, ProcId, ProcRegistry};
use doppel_workloads::driver::{GeneratedTxn, TxnGenerator, Workload};
use doppel_workloads::zipf::ZipfSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The transaction mix to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RubisMix {
    /// The standard bidding mix (≈7% writes, uniform item popularity).
    Bidding,
    /// The contended mix: 50% `StoreBid` on Zipfian-popular items.
    Contended {
        /// Zipf α for item popularity.
        alpha: f64,
    },
}

/// Relative weights of the individual transactions in the RUBiS-B mix,
/// chosen to produce roughly the paper's 7% write / 93% read split across the
/// 17 transactions.
const BIDDING_WRITE_WEIGHTS: &[(Txn, f64)] = &[
    (Txn::StoreBid, 3.7),
    (Txn::StoreComment, 1.3),
    (Txn::RegisterUser, 1.0),
    (Txn::StoreItem, 0.7),
    (Txn::StoreBuyNow, 0.3),
];

const BIDDING_READ_WEIGHTS: &[(Txn, f64)] = &[
    (Txn::SearchItemsByCategory, 22.0),
    (Txn::SearchItemsByRegion, 12.0),
    (Txn::ViewItem, 22.0),
    (Txn::ViewUserInfo, 8.0),
    (Txn::ViewBidHistory, 6.0),
    (Txn::BrowseCategories, 5.0),
    (Txn::BrowseRegions, 3.0),
    (Txn::AboutMe, 4.0),
    (Txn::PutBidView, 5.0),
    (Txn::PutCommentView, 2.0),
    (Txn::BuyNowView, 2.0),
    (Txn::ViewUserComments, 2.0),
];

/// The 17 transaction kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Txn {
    RegisterUser,
    StoreItem,
    StoreBid,
    StoreBuyNow,
    StoreComment,
    ViewItem,
    ViewUserInfo,
    ViewBidHistory,
    SearchItemsByCategory,
    SearchItemsByRegion,
    BrowseCategories,
    BrowseRegions,
    AboutMe,
    PutBidView,
    PutCommentView,
    BuyNowView,
    ViewUserComments,
}

impl Txn {
    fn is_write(&self) -> bool {
        matches!(
            self,
            Txn::RegisterUser | Txn::StoreItem | Txn::StoreBid | Txn::StoreBuyNow | Txn::StoreComment
        )
    }
}

/// The RUBiS workload, pluggable into [`doppel_workloads::Driver`].
///
/// Every generated transaction is an invocation of the RUBiS *procedure
/// pack* ([`crate::procs`]) — the registry-backed path a networked client
/// uses — so per-procedure statistics accumulate in
/// [`RubisWorkload::registry`] during a driver run, and the same generator
/// ([`RubisWorkload::call_generator`]) can feed wire-level `InvokeProc`
/// clients.
pub struct RubisWorkload {
    /// Table sizes.
    pub scale: RubisScale,
    /// Transaction mix.
    pub mix: RubisMix,
    /// Whether contended writes use the classic or the Doppel (commutative)
    /// transaction style.
    pub style: TxnStyle,
    registry: Arc<ProcRegistry>,
    procs: RubisProcs,
    item_sampler: Arc<ZipfSampler>,
    /// Pre-normalised cumulative (weight, txn) list for mix sampling.
    mix_cdf: Vec<(f64, Txn)>,
}

impl RubisWorkload {
    /// Creates the RUBiS-B bidding workload.
    pub fn bidding(scale: RubisScale, style: TxnStyle) -> Self {
        Self::build(scale, RubisMix::Bidding, style)
    }

    /// Creates the RUBiS-C contended workload with Zipf parameter `alpha`.
    pub fn contended(scale: RubisScale, alpha: f64, style: TxnStyle) -> Self {
        Self::build(scale, RubisMix::Contended { alpha }, style)
    }

    fn build(scale: RubisScale, mix: RubisMix, style: TxnStyle) -> Self {
        scale.validate().expect("invalid RUBiS scale");
        let alpha = match mix {
            RubisMix::Bidding => 0.0,
            RubisMix::Contended { alpha } => alpha,
        };
        let item_sampler = Arc::new(ZipfSampler::new(scale.items, alpha));
        let mix_cdf = Self::mix_cdf(mix);
        let registry = rubis_registry();
        let procs = RubisProcs::resolve(&registry);
        RubisWorkload { scale, mix, style, registry, procs, item_sampler, mix_cdf }
    }

    /// The procedure registry the generated transactions invoke
    /// (per-procedure statistics accumulate here during a run).
    pub fn registry(&self) -> &Arc<ProcRegistry> {
        &self.registry
    }

    /// A generator producing wire-level `(name, Args)` invocations of the
    /// same mix — what a remote `InvokeProc` client submits.
    pub fn call_generator(&self, core: usize, seed: u64) -> RubisCallGenerator {
        RubisCallGenerator {
            scale: self.scale,
            style: self.style,
            registry: Arc::clone(&self.registry),
            procs: self.procs,
            mix_cdf: self.mix_cdf.clone(),
            item_sampler: Arc::clone(&self.item_sampler),
            rng: SmallRng::seed_from_u64(seed ^ ((core as u64 + 1) << 32)),
            core: core as u64,
            next_id: 0,
            clock: 0,
        }
    }

    /// Builds the cumulative mix distribution.
    fn mix_cdf(mix: RubisMix) -> Vec<(f64, Txn)> {
        let mut weights: Vec<(Txn, f64)> = Vec::new();
        match mix {
            RubisMix::Bidding => {
                weights.extend_from_slice(BIDDING_WRITE_WEIGHTS);
                weights.extend_from_slice(BIDDING_READ_WEIGHTS);
            }
            RubisMix::Contended { .. } => {
                // 50% StoreBid; every other transaction keeps its relative
                // share of the remaining 50%.
                let others: Vec<(Txn, f64)> = BIDDING_WRITE_WEIGHTS
                    .iter()
                    .chain(BIDDING_READ_WEIGHTS.iter())
                    .filter(|(t, _)| *t != Txn::StoreBid)
                    .copied()
                    .collect();
                let other_total: f64 = others.iter().map(|(_, w)| w).sum();
                weights.push((Txn::StoreBid, 50.0));
                for (t, w) in others {
                    weights.push((t, 50.0 * w / other_total));
                }
            }
        }
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        weights
            .into_iter()
            .map(|(t, w)| {
                acc += w / total;
                (acc, t)
            })
            .collect()
    }

    /// Fraction of transactions in the mix that write (for reporting and
    /// tests).
    pub fn write_fraction(&self) -> f64 {
        let mut prev = 0.0;
        let mut writes = 0.0;
        for (cum, txn) in &self.mix_cdf {
            if txn.is_write() {
                writes += cum - prev;
            }
            prev = *cum;
        }
        writes
    }
}

impl Workload for RubisWorkload {
    fn name(&self) -> String {
        let mix = match self.mix {
            RubisMix::Bidding => "RUBiS-B".to_string(),
            RubisMix::Contended { alpha } => format!("RUBiS-C(alpha={alpha:.2})"),
        };
        format!("{mix}[{:?}]", self.style)
    }

    fn load(&self, engine: &dyn Engine) {
        RubisData::new(self.scale).load(engine);
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(RubisGenerator { inner: self.call_generator(core, seed) })
    }

    fn proc_registry(&self) -> Option<Arc<ProcRegistry>> {
        Some(Arc::clone(&self.registry))
    }
}

/// One sampled invocation of the RUBiS procedure pack.
pub struct RubisCall {
    /// Registry id of the procedure.
    pub proc: ProcId,
    /// Registered procedure name (what goes on the wire).
    pub name: &'static str,
    /// The argument vector.
    pub args: Args,
    /// True for the write transactions of the mix.
    pub is_write: bool,
}

/// Samples the configured RUBiS mix as `(procedure, args)` invocations —
/// shared by the in-process driver path and wire-level clients.
pub struct RubisCallGenerator {
    scale: RubisScale,
    style: TxnStyle,
    registry: Arc<ProcRegistry>,
    procs: RubisProcs,
    mix_cdf: Vec<(f64, Txn)>,
    item_sampler: Arc<ZipfSampler>,
    rng: SmallRng,
    core: u64,
    /// Per-worker id allocator for freshly inserted rows.
    next_id: u64,
    /// Logical clock used for timestamps.
    clock: i64,
}

impl RubisCallGenerator {
    /// The registry the sampled calls belong to.
    pub fn registry(&self) -> &Arc<ProcRegistry> {
        &self.registry
    }

    /// Allocates an id that cannot collide with pre-loaded rows (which use
    /// ids below 2^40) or with other workers' allocations.
    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        (1 << 40) | (self.core << 32) | self.next_id
    }

    fn pick_txn(&mut self) -> Txn {
        let u: f64 = self.rng.gen();
        for (cum, txn) in &self.mix_cdf {
            if u <= *cum {
                return *txn;
            }
        }
        self.mix_cdf.last().expect("mix is never empty").1
    }

    fn pick_item(&mut self) -> u64 {
        self.item_sampler.sample(&mut self.rng)
    }

    fn pick_user(&mut self) -> u64 {
        self.rng.gen_range(0..self.scale.users)
    }

    /// Samples the next invocation of the mix.
    pub fn next_call(&mut self) -> RubisCall {
        self.clock += 1;
        let kind = self.pick_txn();
        let style = self.style;
        let p = self.procs;
        let (proc, name, args) = match kind {
            Txn::StoreBid => {
                let item = self.pick_item();
                let bidder = self.pick_user();
                // Bid above the initial price so max-bid keeps advancing.
                let amount = 1_000 + self.rng.gen_range(0..1_000_000i64);
                let id = self.fresh_id();
                (
                    p.store_bid,
                    "rubis.store_bid",
                    proc_args::store_bid(id, bidder, item, amount, self.clock, style),
                )
            }
            Txn::StoreComment => {
                let about_user = self.pick_user();
                let author = self.pick_user();
                let item = self.pick_item();
                let rating = self.rng.gen_range(-1..=5);
                let id = self.fresh_id();
                (
                    p.store_comment,
                    "rubis.store_comment",
                    proc_args::store_comment(
                        id,
                        author,
                        about_user,
                        item,
                        rating,
                        "nice transaction",
                        style,
                    ),
                )
            }
            Txn::RegisterUser => {
                let region = self.rng.gen_range(0..self.scale.regions);
                let id = self.fresh_id();
                let nickname = format!("user-{}-{}", self.core, self.next_id);
                (
                    p.register_user,
                    "rubis.register_user",
                    proc_args::register_user(id, &nickname, region, self.clock),
                )
            }
            Txn::StoreItem => {
                let seller = self.pick_user();
                let category = self.rng.gen_range(0..self.scale.categories);
                let region = self.rng.gen_range(0..self.scale.regions);
                let price = self.rng.gen_range(100..10_000);
                let id = self.fresh_id();
                (
                    p.store_item,
                    "rubis.store_item",
                    proc_args::store_item(
                        id,
                        seller,
                        category,
                        region,
                        "freshly listed item",
                        price,
                        self.clock + 1_000_000,
                        style,
                    ),
                )
            }
            Txn::StoreBuyNow => {
                let item = self.pick_item();
                let buyer = self.pick_user();
                let id = self.fresh_id();
                (
                    p.store_buy_now,
                    "rubis.store_buy_now",
                    proc_args::store_buy_now(id, item, buyer, 1, self.clock),
                )
            }
            Txn::ViewItem => {
                (p.view_item, "rubis.view_item", proc_args::view_item(self.pick_item()))
            }
            Txn::ViewUserInfo => (
                p.view_user_info,
                "rubis.view_user_info",
                proc_args::view_user_info(self.pick_user()),
            ),
            Txn::ViewBidHistory => (
                p.view_bid_history,
                "rubis.view_bid_history",
                proc_args::view_bid_history(self.pick_item()),
            ),
            Txn::SearchItemsByCategory => (
                p.search_items_by_category,
                "rubis.search_items_by_category",
                proc_args::search_items_by_category(self.rng.gen_range(0..self.scale.categories)),
            ),
            Txn::SearchItemsByRegion => (
                p.search_items_by_region,
                "rubis.search_items_by_region",
                proc_args::search_items_by_region(self.rng.gen_range(0..self.scale.regions)),
            ),
            Txn::BrowseCategories => (
                p.browse_categories,
                "rubis.browse_categories",
                proc_args::browse_categories(self.scale.categories),
            ),
            Txn::BrowseRegions => (
                p.browse_regions,
                "rubis.browse_regions",
                proc_args::browse_regions(self.scale.regions),
            ),
            Txn::AboutMe => (p.about_me, "rubis.about_me", proc_args::about_me(self.pick_user())),
            Txn::PutBidView => {
                (p.put_bid_view, "rubis.put_bid_view", proc_args::put_bid_view(self.pick_item()))
            }
            Txn::PutCommentView => {
                let about = self.pick_user();
                let item = self.pick_item();
                (
                    p.put_comment_view,
                    "rubis.put_comment_view",
                    proc_args::put_comment_view(about, item),
                )
            }
            Txn::BuyNowView => {
                (p.buy_now_view, "rubis.buy_now_view", proc_args::buy_now_view(self.pick_item()))
            }
            Txn::ViewUserComments => (
                p.view_user_comments,
                "rubis.view_user_comments",
                proc_args::view_user_comments(self.pick_user()),
            ),
        };
        RubisCall { proc, name, args, is_write: kind.is_write() }
    }
}

/// [`TxnGenerator`] adapter: binds each sampled call in the registry.
struct RubisGenerator {
    inner: RubisCallGenerator,
}

impl TxnGenerator for RubisGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        let call = self.inner.next_call();
        let registry = Arc::clone(&self.inner.registry);
        GeneratedTxn { proc: registry.call(call.proc, call.args), is_write: call.is_write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::keys;
    use doppel_workloads::driver::{BenchOptions, Driver};
    use std::time::Duration;

    #[test]
    fn bidding_mix_write_fraction_matches_paper() {
        let w = RubisWorkload::bidding(RubisScale::small(), TxnStyle::Doppel);
        let f = w.write_fraction();
        assert!((0.05..=0.09).contains(&f), "RUBiS-B write fraction {f} should be ≈7%");
    }

    #[test]
    fn contended_mix_is_half_bids() {
        let w = RubisWorkload::contended(RubisScale::small(), 1.8, TxnStyle::Doppel);
        assert!(w.write_fraction() > 0.5, "RUBiS-C is at least 50% writes (bids)");
        // Statistically verify ~50% of generated transactions are bids.
        let mut gen = w.generator(0, 7);
        let n = 5_000;
        let bids = (0..n)
            .filter(|_| {
                let t = gen.next_txn();
                t.is_write && t.proc.name() == "rubis.store_bid"
            })
            .count();
        let frac = bids as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "StoreBid fraction {frac}");
    }

    #[test]
    fn generated_ids_do_not_collide_across_workers() {
        let w = RubisWorkload::bidding(RubisScale::small(), TxnStyle::Doppel);
        let mut a = w.call_generator(0, 1);
        let mut b = w.call_generator(1, 2);
        let ids_a: Vec<u64> = (0..100).map(|_| a.fresh_id()).collect();
        let ids_b: Vec<u64> = (0..100).map(|_| b.fresh_id()).collect();
        for id in &ids_a {
            assert!(!ids_b.contains(id));
            assert!(*id >= 1 << 40, "fresh ids must not collide with preloaded rows");
        }
    }

    #[test]
    fn call_generator_names_resolve_in_the_registry() {
        let w = RubisWorkload::bidding(RubisScale::small(), TxnStyle::Doppel);
        let mut gen = w.call_generator(0, 3);
        for _ in 0..200 {
            let call = gen.next_call();
            assert_eq!(
                w.registry().lookup(call.name),
                Some(call.proc),
                "{} must resolve to its own id",
                call.name
            );
            assert_eq!(w.registry().is_read_only(call.proc), !call.is_write);
        }
    }

    #[test]
    fn rubis_b_runs_on_occ_and_preserves_bid_counts() {
        let engine = doppel_occ::OccEngine::new(2, 256);
        let w = RubisWorkload::bidding(RubisScale::small(), TxnStyle::Doppel);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(150)));
        assert!(result.committed > 0);
        // Sum of per-item bid counters equals the number of bid rows created.
        let mut num_bids_total = 0i64;
        for item in 0..w.scale.items {
            num_bids_total += engine
                .global_get(keys::num_bids(item))
                .and_then(|v| v.as_int())
                .unwrap_or(0);
        }
        let mut bid_rows = 0i64;
        // Bid rows use fresh ids ≥ 2^40; count them via the store.
        engine.store().for_each(|k, r| {
            if k.table() == doppel_common::Table::RubisBid && r.read_unlocked().is_some() {
                bid_rows += 1;
            }
        });
        assert_eq!(num_bids_total, bid_rows);
    }

    #[test]
    fn rubis_c_on_doppel_splits_hot_auction_metadata() {
        let cfg = doppel_common::DoppelConfig {
            workers: 2,
            phase_len: Duration::from_millis(5),
            split_min_conflicts: 2,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let engine = doppel_db::DoppelDb::start(cfg);
        let scale = RubisScale { users: 100, items: 10, categories: 3, regions: 2 };
        let w = RubisWorkload::contended(scale, 1.8, TxnStyle::Doppel);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(250)));
        assert!(result.committed > 0);
        // Consistency: per-item bid counters equal bid rows, even though the
        // counters were maintained through split per-core slices.
        let mut num_bids_total = 0i64;
        for item in 0..scale.items {
            num_bids_total += engine
                .global_get(keys::num_bids(item))
                .and_then(|v| v.as_int())
                .unwrap_or(0);
        }
        let shared = engine.shared();
        let mut bid_rows = 0i64;
        shared.store.for_each(|k, r| {
            if k.table() == doppel_common::Table::RubisBid && r.read_unlocked().is_some() {
                bid_rows += 1;
            }
        });
        assert_eq!(num_bids_total, bid_rows);
    }

    #[test]
    fn workload_names() {
        assert!(RubisWorkload::bidding(RubisScale::small(), TxnStyle::Doppel)
            .name()
            .contains("RUBiS-B"));
        assert!(RubisWorkload::contended(RubisScale::small(), 1.4, TxnStyle::Classic)
            .name()
            .contains("RUBiS-C"));
    }
}
