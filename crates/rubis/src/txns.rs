//! The 17 RUBiS database transactions.
//!
//! The write transactions that touch contended auction metadata exist in two
//! styles:
//!
//! * [`TxnStyle::Classic`] — the original read-modify-write form (Figure 6 of
//!   the paper): read the current max bid / bid count / index, compute, write
//!   back with `Put`. These cannot be split, so under contention every engine
//!   serializes them.
//! * [`TxnStyle::Doppel`] — the commutative form (Figure 7): `Max` for the
//!   highest bid, `OPut` (ordered by `[amount, timestamp]`) for the highest
//!   bidder, `Add` for the bid count and rating, `TopKInsert` for the
//!   indexes. Doppel can mark all of these records split and execute
//!   concurrent bids on popular auctions in parallel.
//!
//! Read-only transactions are shared between the two styles.

use crate::rows::{decode, encode, BidRow, BuyNowRow, CommentRow, ItemRow, UserRow};
use crate::schema::{keys, INDEX_TOP_K};
use doppel_common::{OrderKey, Procedure, TopKSet, Tx, TxError, Value};

/// Which form of the contended write transactions to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStyle {
    /// Read-modify-write `Get`/`Put` (Figure 6) — not splittable.
    Classic,
    /// Commutative operations (Figure 7) — splittable by Doppel.
    Doppel,
}

// ---------------------------------------------------------------------------
// Write transactions
// ---------------------------------------------------------------------------

/// Transaction 1: register a new user.
pub struct RegisterUser {
    /// New user id (allocated by the caller).
    pub user_id: u64,
    /// Nickname.
    pub nickname: String,
    /// Home region.
    pub region: u64,
    /// Registration timestamp.
    pub now: i64,
}

impl Procedure for RegisterUser {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let row = UserRow {
            id: self.user_id,
            nickname: self.nickname.clone(),
            region: self.region,
            created_at: self.now,
        };
        tx.put(keys::user(self.user_id), encode(&row))?;
        tx.put(keys::user_rating(self.user_id), Value::Int(0))
    }

    fn name(&self) -> &'static str {
        "RegisterUser"
    }
}

/// Transaction 2: put a new item up for auction (`StoreItem` / `RegisterItem`).
pub struct StoreItem {
    /// New item id (allocated by the caller).
    pub item_id: u64,
    /// Seller.
    pub seller: u64,
    /// Category the item is listed under.
    pub category: u64,
    /// Region the seller lives in.
    pub region: u64,
    /// Item name.
    pub name: String,
    /// Starting price in cents.
    pub initial_price: i64,
    /// Auction end timestamp.
    pub end_date: i64,
    /// Classic or Doppel index maintenance.
    pub style: TxnStyle,
}

impl Procedure for StoreItem {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let row = ItemRow {
            id: self.item_id,
            name: self.name.clone(),
            seller: self.seller,
            category: self.category,
            initial_price: self.initial_price,
            buy_now_price: 0,
            end_date: self.end_date,
        };
        tx.put(keys::item(self.item_id), encode(&row))?;
        tx.put(keys::max_bid(self.item_id), Value::Int(self.initial_price))?;
        tx.put(keys::num_bids(self.item_id), Value::Int(0))?;

        // Insert the item into the category and region browse indexes,
        // ordered by item id so newer items rank first.
        let order = OrderKey::from(self.item_id as i64);
        let payload = self.item_id.to_le_bytes().to_vec();
        match self.style {
            TxnStyle::Doppel => {
                tx.topk_insert(keys::items_by_category(self.category), order.clone(), payload.clone().into(), INDEX_TOP_K)?;
                tx.topk_insert(keys::items_by_region(self.region), order, payload.into(), INDEX_TOP_K)?;
            }
            TxnStyle::Classic => {
                classic_topk_insert(tx, keys::items_by_category(self.category), order.clone(), payload.clone())?;
                classic_topk_insert(tx, keys::items_by_region(self.region), order, payload)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "StoreItem"
    }
}

/// Transaction 3: place a bid (`StoreBid`, Figures 6 and 7 of the paper).
pub struct StoreBid {
    /// New bid id (allocated by the caller).
    pub bid_id: u64,
    /// The bidding user.
    pub bidder: u64,
    /// The auctioned item.
    pub item: u64,
    /// Bid amount in cents.
    pub amount: i64,
    /// Coarse-grained timestamp used as the `OPut` tie-breaker.
    pub now: i64,
    /// Classic or Doppel auction-metadata maintenance.
    pub style: TxnStyle,
}

impl Procedure for StoreBid {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        // Insert the bid row itself (never contended: fresh key).
        let bid = BidRow {
            id: self.bid_id,
            item: self.item,
            bidder: self.bidder,
            amount: self.amount,
            placed_at: self.now,
        };
        tx.put(keys::bid(self.bid_id), encode(&bid))?;

        match self.style {
            TxnStyle::Doppel => {
                // Figure 7: commutative operations only — no reads of the
                // contended auction metadata, so Doppel can run this in a
                // split phase.
                tx.max(keys::max_bid(self.item), self.amount)?;
                tx.oput(
                    keys::max_bidder(self.item),
                    OrderKey::pair(self.amount, self.now),
                    self.bidder.to_le_bytes().to_vec().into(),
                )?;
                tx.add(keys::num_bids(self.item), 1)?;
                tx.topk_insert(
                    keys::bids_per_item(self.item),
                    OrderKey::pair(self.amount, self.bid_id as i64),
                    self.bid_id.to_le_bytes().to_vec().into(),
                    INDEX_TOP_K,
                )?;
            }
            TxnStyle::Classic => {
                // Figure 6: read the current values, compare, write back.
                let highest = tx.get_int(keys::max_bid(self.item))?;
                if self.amount > highest {
                    tx.put(keys::max_bid(self.item), Value::Int(self.amount))?;
                    tx.put(keys::max_bidder(self.item), Value::Int(self.bidder as i64))?;
                }
                let num = tx.get_int(keys::num_bids(self.item))?;
                tx.put(keys::num_bids(self.item), Value::Int(num + 1))?;
                classic_topk_insert(
                    tx,
                    keys::bids_per_item(self.item),
                    OrderKey::pair(self.amount, self.bid_id as i64),
                    self.bid_id.to_le_bytes().to_vec(),
                )?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "StoreBid"
    }
}

/// Transaction 4: buy an item outright (`StoreBuyNow`).
pub struct StoreBuyNow {
    /// New buy-now id (allocated by the caller).
    pub buy_now_id: u64,
    /// The purchased item.
    pub item: u64,
    /// The buyer.
    pub buyer: u64,
    /// Quantity purchased.
    pub quantity: i64,
    /// Purchase timestamp.
    pub now: i64,
}

impl Procedure for StoreBuyNow {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let row = BuyNowRow {
            id: self.buy_now_id,
            item: self.item,
            buyer: self.buyer,
            quantity: self.quantity,
            bought_at: self.now,
        };
        tx.put(keys::buy_now(self.buy_now_id), encode(&row))
    }

    fn name(&self) -> &'static str {
        "StoreBuyNow"
    }
}

/// Transaction 5: comment on a user after an auction (`StoreComment`).
pub struct StoreComment {
    /// New comment id (allocated by the caller).
    pub comment_id: u64,
    /// The commenting user.
    pub author: u64,
    /// The user being rated (the auction's seller).
    pub about_user: u64,
    /// The related item.
    pub item: u64,
    /// Rating delta.
    pub rating: i64,
    /// Comment text.
    pub text: String,
    /// Classic or Doppel rating maintenance.
    pub style: TxnStyle,
}

impl Procedure for StoreComment {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let row = CommentRow {
            id: self.comment_id,
            author: self.author,
            about_user: self.about_user,
            item: self.item,
            rating: self.rating,
            text: self.text.clone(),
        };
        tx.put(keys::comment(self.comment_id), encode(&row))?;
        let order = OrderKey::from(self.comment_id as i64);
        let payload = self.comment_id.to_le_bytes().to_vec();
        match self.style {
            TxnStyle::Doppel => {
                tx.add(keys::user_rating(self.about_user), self.rating)?;
                tx.topk_insert(keys::comments_by_user(self.about_user), order, payload.into(), INDEX_TOP_K)?;
            }
            TxnStyle::Classic => {
                let rating = tx.get_int(keys::user_rating(self.about_user))?;
                tx.put(keys::user_rating(self.about_user), Value::Int(rating + self.rating))?;
                classic_topk_insert(tx, keys::comments_by_user(self.about_user), order, payload)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "StoreComment"
    }
}

/// Read-modify-write maintenance of a top-K index record, used by the classic
/// transaction style.
fn classic_topk_insert(
    tx: &mut dyn Tx,
    key: doppel_common::Key,
    order: OrderKey,
    payload: Vec<u8>,
) -> Result<(), TxError> {
    let mut set = match tx.get(key)? {
        Some(Value::TopK(set)) => set,
        _ => TopKSet::new(INDEX_TOP_K),
    };
    set.insert(order, tx.core(), payload);
    tx.put(key, Value::TopK(set))
}

// ---------------------------------------------------------------------------
// Read-only transactions
// ---------------------------------------------------------------------------

/// Transaction 6: view an item page (metadata plus auction aggregates).
pub struct ViewItem {
    /// The item to view.
    pub item: u64,
}

impl ViewItem {
    /// The page's reads; returns `(max_bid, num_bids)` so the registered
    /// procedure form can ship the aggregates back to a remote client. The
    /// read set is exactly [`Procedure::run`]'s.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<(i64, i64), TxError> {
        let _item: Option<ItemRow> = decode(tx.get(keys::item(self.item))?.as_ref());
        let max_bid = tx.get_int(keys::max_bid(self.item))?;
        let num_bids = tx.get_int(keys::num_bids(self.item))?;
        let _max_bidder = tx.get(keys::max_bidder(self.item))?;
        Ok((max_bid, num_bids))
    }
}

impl Procedure for ViewItem {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "ViewItem"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 7: view a user's profile.
pub struct ViewUserInfo {
    /// The user to view.
    pub user: u64,
}

impl ViewUserInfo {
    /// The page's reads; returns the user's rating.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        let _user: Option<UserRow> = decode(tx.get(keys::user(self.user))?.as_ref());
        let rating = tx.get_int(keys::user_rating(self.user))?;
        let _comments = tx.get(keys::comments_by_user(self.user))?;
        Ok(rating)
    }
}

impl Procedure for ViewUserInfo {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "ViewUserInfo"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 8: view the bid history of an item (reads the top-K bid index
/// and then the referenced bid rows).
pub struct ViewBidHistory {
    /// The item whose bids are listed.
    pub item: u64,
}

impl ViewBidHistory {
    /// The page's reads; returns the number of bids listed.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        let mut listed = 0i64;
        let index = tx.get(keys::bids_per_item(self.item))?;
        if let Some(Value::TopK(set)) = index {
            for entry in set.iter() {
                let bid_id = u64::from_le_bytes(
                    entry.payload.as_ref().try_into().unwrap_or([0u8; 8]),
                );
                let _bid: Option<BidRow> = decode(tx.get(keys::bid(bid_id))?.as_ref());
                listed += 1;
            }
        }
        Ok(listed)
    }
}

impl Procedure for ViewBidHistory {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "ViewBidHistory"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 9: list items in a category (reads the top-K index and the
/// referenced item rows).
pub struct SearchItemsByCategory {
    /// The category browsed.
    pub category: u64,
}

impl SearchItemsByCategory {
    /// The page's reads; returns the number of items listed.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        read_item_index(tx, keys::items_by_category(self.category))
    }
}

impl Procedure for SearchItemsByCategory {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "SearchItemsByCategory"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 10: list items in a region.
pub struct SearchItemsByRegion {
    /// The region browsed.
    pub region: u64,
}

impl SearchItemsByRegion {
    /// The page's reads; returns the number of items listed.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        read_item_index(tx, keys::items_by_region(self.region))
    }
}

impl Procedure for SearchItemsByRegion {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "SearchItemsByRegion"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

fn read_item_index(tx: &mut dyn Tx, key: doppel_common::Key) -> Result<i64, TxError> {
    let mut listed = 0i64;
    if let Some(Value::TopK(set)) = tx.get(key)? {
        for entry in set.iter() {
            let item_id =
                u64::from_le_bytes(entry.payload.as_ref().try_into().unwrap_or([0u8; 8]));
            let _item: Option<ItemRow> = decode(tx.get(keys::item(item_id))?.as_ref());
            listed += 1;
        }
    }
    Ok(listed)
}

/// Transaction 11: browse the category list.
pub struct BrowseCategories {
    /// Number of categories in the database.
    pub categories: u64,
}

impl BrowseCategories {
    /// The page's reads; returns the number of category rows found.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        let mut found = 0i64;
        for c in 0..self.categories.min(20) {
            if tx.get(keys::category(c))?.is_some() {
                found += 1;
            }
        }
        Ok(found)
    }
}

impl Procedure for BrowseCategories {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "BrowseCategories"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 12: browse the region list.
pub struct BrowseRegions {
    /// Number of regions in the database.
    pub regions: u64,
}

impl BrowseRegions {
    /// The page's reads; returns the number of region rows found.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        let mut found = 0i64;
        for r in 0..self.regions.min(62) {
            if tx.get(keys::region(r))?.is_some() {
                found += 1;
            }
        }
        Ok(found)
    }
}

impl Procedure for BrowseRegions {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "BrowseRegions"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 13: the "About Me" page — a user's profile, rating and
/// received comments.
pub struct AboutMe {
    /// The logged-in user.
    pub user: u64,
}

impl AboutMe {
    /// The page's reads; returns `(rating, comments listed)`.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<(i64, i64), TxError> {
        let _user: Option<UserRow> = decode(tx.get(keys::user(self.user))?.as_ref());
        let rating = tx.get_int(keys::user_rating(self.user))?;
        let mut listed = 0i64;
        if let Some(Value::TopK(set)) = tx.get(keys::comments_by_user(self.user))? {
            for entry in set.iter() {
                let comment_id =
                    u64::from_le_bytes(entry.payload.as_ref().try_into().unwrap_or([0u8; 8]));
                let _c: Option<CommentRow> = decode(tx.get(keys::comment(comment_id))?.as_ref());
                listed += 1;
            }
        }
        Ok((rating, listed))
    }
}

impl Procedure for AboutMe {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "AboutMe"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 14: the page shown before placing a bid (item details plus
/// current auction state).
pub struct PutBidView {
    /// The item about to be bid on.
    pub item: u64,
}

impl PutBidView {
    /// The page's reads; returns `(max_bid, num_bids)` — what a bidder sees
    /// before choosing an amount.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<(i64, i64), TxError> {
        let _item: Option<ItemRow> = decode(tx.get(keys::item(self.item))?.as_ref());
        let max_bid = tx.get_int(keys::max_bid(self.item))?;
        let num_bids = tx.get_int(keys::num_bids(self.item))?;
        Ok((max_bid, num_bids))
    }
}

impl Procedure for PutBidView {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "PutBidView"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 15: the page shown before leaving a comment.
pub struct PutCommentView {
    /// The user being commented on.
    pub about_user: u64,
    /// The related item.
    pub item: u64,
}

impl Procedure for PutCommentView {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let _item: Option<ItemRow> = decode(tx.get(keys::item(self.item))?.as_ref());
        let _user: Option<UserRow> = decode(tx.get(keys::user(self.about_user))?.as_ref());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "PutCommentView"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 16: the buy-now confirmation page.
pub struct BuyNowView {
    /// The item being purchased.
    pub item: u64,
}

impl Procedure for BuyNowView {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let _item: Option<ItemRow> = decode(tx.get(keys::item(self.item))?.as_ref());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "BuyNowView"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// Transaction 17: list the comments written about a user.
pub struct ViewUserComments {
    /// The user whose received comments are listed.
    pub user: u64,
}

impl ViewUserComments {
    /// The page's reads; returns the number of comments listed.
    pub fn view(&self, tx: &mut dyn Tx) -> Result<i64, TxError> {
        let mut listed = 0i64;
        if let Some(Value::TopK(set)) = tx.get(keys::comments_by_user(self.user))? {
            for entry in set.iter() {
                let comment_id =
                    u64::from_le_bytes(entry.payload.as_ref().try_into().unwrap_or([0u8; 8]));
                let _c: Option<CommentRow> = decode(tx.get(keys::comment(comment_id))?.as_ref());
                listed += 1;
            }
        }
        Ok(listed)
    }
}

impl Procedure for ViewUserComments {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        self.view(tx).map(|_| ())
    }

    fn name(&self) -> &'static str {
        "ViewUserComments"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{RubisData, RubisScale};
    use doppel_common::Engine;
    use doppel_occ::OccEngine;
    use std::sync::Arc;

    fn engine_with_data() -> OccEngine {
        let engine = OccEngine::new(1, 64);
        RubisData::new(RubisScale::small()).load(&engine);
        engine
    }

    fn bid(style: TxnStyle, id: u64, bidder: u64, item: u64, amount: i64, now: i64) -> Arc<StoreBid> {
        Arc::new(StoreBid { bid_id: id, bidder, item, amount, now, style })
    }

    #[test]
    fn store_bid_updates_aggregates_in_both_styles() {
        for style in [TxnStyle::Classic, TxnStyle::Doppel] {
            let engine = engine_with_data();
            let mut h = engine.handle(0);
            let item = 7u64;
            let start = engine.global_get(keys::max_bid(item)).unwrap().as_int().unwrap();
            assert!(h.execute(bid(style, 1_000, 3, item, start + 50, 1)).is_committed());
            assert!(h.execute(bid(style, 1_001, 4, item, start + 20, 2)).is_committed());

            assert_eq!(
                engine.global_get(keys::max_bid(item)).unwrap().as_int().unwrap(),
                start + 50,
                "style {style:?}: max bid"
            );
            assert_eq!(
                engine.global_get(keys::num_bids(item)).unwrap().as_int().unwrap(),
                2,
                "style {style:?}: bid count"
            );
            // Both bid rows exist.
            assert!(engine.global_get(keys::bid(1_000)).is_some());
            assert!(engine.global_get(keys::bid(1_001)).is_some());
            // The bids-per-item index holds both bids.
            let idx = engine.global_get(keys::bids_per_item(item)).unwrap();
            assert_eq!(idx.as_topk().unwrap().len(), 2, "style {style:?}: index size");
        }
    }

    #[test]
    fn doppel_style_max_bidder_is_highest_amount() {
        let engine = engine_with_data();
        let mut h = engine.handle(0);
        let item = 3u64;
        let base = engine.global_get(keys::max_bid(item)).unwrap().as_int().unwrap();
        h.execute(bid(TxnStyle::Doppel, 1, 10, item, base + 300, 5));
        h.execute(bid(TxnStyle::Doppel, 2, 11, item, base + 100, 6));
        let winner = engine.global_get(keys::max_bidder(item)).unwrap();
        let tuple = winner.as_tuple().unwrap();
        let bidder = u64::from_le_bytes(tuple.payload.as_ref().try_into().unwrap());
        assert_eq!(bidder, 10);
        assert_eq!(tuple.order.primary(), base + 300);
    }

    #[test]
    fn store_comment_updates_rating() {
        for style in [TxnStyle::Classic, TxnStyle::Doppel] {
            let engine = engine_with_data();
            let mut h = engine.handle(0);
            let c = Arc::new(StoreComment {
                comment_id: 500,
                author: 1,
                about_user: 2,
                item: 3,
                rating: 5,
                text: "great".into(),
                style,
            });
            assert!(h.execute(c).is_committed());
            assert_eq!(
                engine.global_get(keys::user_rating(2)).unwrap().as_int().unwrap(),
                5,
                "style {style:?}"
            );
            assert!(engine.global_get(keys::comment(500)).is_some());
            assert!(engine.global_get(keys::comments_by_user(2)).is_some());
        }
    }

    #[test]
    fn store_item_inserts_into_indexes() {
        for style in [TxnStyle::Classic, TxnStyle::Doppel] {
            let engine = engine_with_data();
            let mut h = engine.handle(0);
            let item = Arc::new(StoreItem {
                item_id: 90_000,
                seller: 1,
                category: 2,
                region: 3,
                name: "new lamp".into(),
                initial_price: 500,
                end_date: 99,
                style,
            });
            assert!(h.execute(item).is_committed());
            assert!(engine.global_get(keys::item(90_000)).is_some());
            assert_eq!(engine.global_get(keys::num_bids(90_000)), Some(Value::Int(0)));
            let cat_idx = engine.global_get(keys::items_by_category(2)).unwrap();
            assert!(cat_idx.as_topk().unwrap().iter().any(|e| {
                u64::from_le_bytes(e.payload.as_ref().try_into().unwrap()) == 90_000
            }));
            assert!(engine.global_get(keys::items_by_region(3)).is_some());
        }
    }

    #[test]
    fn register_user_and_buy_now() {
        let engine = engine_with_data();
        let mut h = engine.handle(0);
        assert!(h
            .execute(Arc::new(RegisterUser {
                user_id: 70_000,
                nickname: "newbie".into(),
                region: 1,
                now: 5,
            }))
            .is_committed());
        assert!(engine.global_get(keys::user(70_000)).is_some());
        assert_eq!(engine.global_get(keys::user_rating(70_000)), Some(Value::Int(0)));

        assert!(h
            .execute(Arc::new(StoreBuyNow {
                buy_now_id: 1,
                item: 5,
                buyer: 70_000,
                quantity: 1,
                now: 6,
            }))
            .is_committed());
        assert!(engine.global_get(keys::buy_now(1)).is_some());
    }

    #[test]
    fn read_transactions_run_against_loaded_data() {
        let engine = engine_with_data();
        let mut h = engine.handle(0);
        // Seed some activity so the indexes exist.
        h.execute(bid(TxnStyle::Doppel, 1, 1, 2, 10_000, 1));
        h.execute(Arc::new(StoreComment {
            comment_id: 1,
            author: 1,
            about_user: 2,
            item: 2,
            rating: 3,
            text: "ok".into(),
            style: TxnStyle::Doppel,
        }));

        let reads: Vec<Arc<dyn Procedure>> = vec![
            Arc::new(ViewItem { item: 2 }),
            Arc::new(ViewUserInfo { user: 2 }),
            Arc::new(ViewBidHistory { item: 2 }),
            Arc::new(SearchItemsByCategory { category: 0 }),
            Arc::new(SearchItemsByRegion { region: 0 }),
            Arc::new(BrowseCategories { categories: 5 }),
            Arc::new(BrowseRegions { regions: 4 }),
            Arc::new(AboutMe { user: 2 }),
            Arc::new(PutBidView { item: 2 }),
            Arc::new(PutCommentView { about_user: 2, item: 2 }),
            Arc::new(BuyNowView { item: 2 }),
            Arc::new(ViewUserComments { user: 2 }),
        ];
        for proc in reads {
            assert!(proc.is_read_only(), "{} must be read-only", proc.name());
            assert!(h.execute(proc.clone()).is_committed(), "{} failed", proc.name());
        }
    }
}
