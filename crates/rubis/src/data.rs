//! RUBiS database sizing and initial population.

use crate::rows::{encode, ItemRow, UserRow};
use crate::schema::keys;
use doppel_common::{Engine, Value};

/// Sizes of the RUBiS tables.
///
/// The paper's RUBiS-B experiment uses "1M users bidding on 33K auctions"
/// with the standard RUBiS category/region counts; [`RubisScale::paper`]
/// reproduces that, while [`RubisScale::small`] is a scaled-down version for
/// tests and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RubisScale {
    /// Number of registered users.
    pub users: u64,
    /// Number of open auctions (items).
    pub items: u64,
    /// Number of item categories.
    pub categories: u64,
    /// Number of user regions.
    pub regions: u64,
}

impl RubisScale {
    /// The sizes used in §8.8 of the paper.
    pub fn paper() -> Self {
        RubisScale { users: 1_000_000, items: 33_000, categories: 20, regions: 62 }
    }

    /// A small configuration suitable for unit tests.
    pub fn small() -> Self {
        RubisScale { users: 200, items: 50, categories: 5, regions: 4 }
    }

    /// Validates that the scale is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 || self.items == 0 || self.categories == 0 || self.regions == 0 {
            return Err("all RUBiS table sizes must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for RubisScale {
    fn default() -> Self {
        RubisScale::paper()
    }
}

/// Initial data loader.
pub struct RubisData {
    /// Table sizes.
    pub scale: RubisScale,
}

impl RubisData {
    /// Creates a loader for the given scale.
    pub fn new(scale: RubisScale) -> Self {
        scale.validate().expect("invalid RUBiS scale");
        RubisData { scale }
    }

    /// Populates the engine's store with users, items, categories, regions
    /// and zeroed aggregates, bypassing concurrency control (benchmark
    /// pre-population, §8.1).
    pub fn load(&self, engine: &dyn Engine) {
        let s = &self.scale;
        for c in 0..s.categories {
            engine.load(keys::category(c), Value::from(format!("category-{c}").as_str()));
        }
        for r in 0..s.regions {
            engine.load(keys::region(r), Value::from(format!("region-{r}").as_str()));
        }
        for u in 0..s.users {
            let row = UserRow {
                id: u,
                nickname: format!("user{u}"),
                region: u % s.regions,
                created_at: 0,
            };
            engine.load(keys::user(u), encode(&row));
            engine.load(keys::user_rating(u), Value::Int(0));
        }
        for i in 0..s.items {
            let row = ItemRow {
                id: i,
                name: format!("item{i}"),
                seller: i % s.users,
                category: i % s.categories,
                initial_price: 100 + (i as i64 % 900),
                buy_now_price: if i % 5 == 0 { 5_000 } else { 0 },
                end_date: 1_000_000,
            };
            engine.load(keys::item(i), encode(&row));
            engine.load(keys::max_bid(i), Value::Int(row.initial_price));
            engine.load(keys::num_bids(i), Value::Int(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rows::decode;
    use doppel_occ::OccEngine;

    #[test]
    fn scales() {
        assert_eq!(RubisScale::paper().users, 1_000_000);
        assert_eq!(RubisScale::default(), RubisScale::paper());
        assert!(RubisScale::small().validate().is_ok());
        let bad = RubisScale { users: 0, ..RubisScale::small() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn load_populates_all_tables() {
        let engine = OccEngine::new(1, 64);
        let scale = RubisScale::small();
        RubisData::new(scale).load(&engine);

        let user: UserRow = decode(engine.global_get(keys::user(10)).as_ref()).unwrap();
        assert_eq!(user.id, 10);
        assert!(user.region < scale.regions);

        let item: ItemRow = decode(engine.global_get(keys::item(3)).as_ref()).unwrap();
        assert_eq!(item.id, 3);
        assert!(item.category < scale.categories);

        assert_eq!(engine.global_get(keys::num_bids(3)), Some(Value::Int(0)));
        assert_eq!(
            engine.global_get(keys::max_bid(3)).unwrap().as_int().unwrap(),
            item.initial_price
        );
        assert_eq!(engine.global_get(keys::user_rating(10)), Some(Value::Int(0)));
        assert!(engine.global_get(keys::category(0)).is_some());
        assert!(engine.global_get(keys::region(0)).is_some());
        // Indexes start absent and are created lazily by TopKInsert.
        assert!(engine.global_get(keys::items_by_category(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid RUBiS scale")]
    fn zero_scale_panics() {
        let _ = RubisData::new(RubisScale { users: 0, items: 1, categories: 1, regions: 1 });
    }
}
