//! RUBiS as a registered procedure pack.
//!
//! The paper's model is transactions known to the system in advance; this
//! module registers all 17 RUBiS database transactions in a
//! [`ProcRegistry`], so the whole auction application is invocable *by name*
//! — locally through the transaction service, or over TCP via the wire
//! protocol's `InvokeProc` message. The bodies delegate to the transaction
//! structs in [`crate::txns`], so a registered invocation and the original
//! closure-style procedure are the same code operating on the same keys.
//!
//! Write procedures whose contended-record maintenance exists in two forms
//! (Figures 6 and 7 of the paper) take a trailing *style* argument:
//! `0` = classic read-modify-write, `1` = commutative Doppel operations.
//! The [`args`] module builds well-formed argument vectors for every
//! procedure, and [`RubisProcs`] resolves the pack's [`ProcId`]s once for
//! hot-path invocation without name lookups.

use crate::schema::keys;
use crate::txns::{
    AboutMe, BrowseCategories, BrowseRegions, BuyNowView, PutBidView, PutCommentView,
    RegisterUser, SearchItemsByCategory, SearchItemsByRegion, StoreBid, StoreBuyNow, StoreComment,
    StoreItem, TxnStyle, ViewBidHistory, ViewItem, ViewUserComments, ViewUserInfo,
};
use doppel_common::{Args, OpKind, ProcId, ProcRegistry, ProcResult, TxError};
use std::sync::Arc;

/// Names of the procedures [`register_rubis`] adds, in registration order
/// (for `--help` output and tests).
pub const RUBIS_PROCS: &[&str] = &[
    "rubis.register_user",
    "rubis.store_item",
    "rubis.store_bid",
    "rubis.store_buy_now",
    "rubis.store_comment",
    "rubis.view_item",
    "rubis.view_user_info",
    "rubis.view_bid_history",
    "rubis.search_items_by_category",
    "rubis.search_items_by_region",
    "rubis.browse_categories",
    "rubis.browse_regions",
    "rubis.about_me",
    "rubis.put_bid_view",
    "rubis.put_comment_view",
    "rubis.buy_now_view",
    "rubis.view_user_comments",
];

fn style_arg(args: &Args, i: usize) -> Result<TxnStyle, TxError> {
    match args.get_int(i)? {
        0 => Ok(TxnStyle::Classic),
        1 => Ok(TxnStyle::Doppel),
        _ => Err(TxError::UserAbort { reason: "rubis: style must be 0 (classic) or 1 (doppel)" }),
    }
}

/// Encodes a [`TxnStyle`] as its wire integer.
pub fn style_code(style: TxnStyle) -> i64 {
    match style {
        TxnStyle::Classic => 0,
        TxnStyle::Doppel => 1,
    }
}

/// Registers the 17 RUBiS transactions. See [`args`] for each procedure's
/// argument vector; read procedures return the page's aggregates:
///
/// * `rubis.view_item` / `rubis.put_bid_view` → `[max_bid, num_bids]`
/// * `rubis.view_user_info` → `[rating]`
/// * `rubis.about_me` → `[rating, comments_listed]`
/// * the index/browse reads → `[rows_listed]`
pub fn register_rubis(reg: &mut ProcRegistry) {
    reg.register("rubis.register_user", |ctx, a| {
        let p = RegisterUser {
            user_id: a.get_u64(0)?,
            nickname: a.get_str(1)?.to_string(),
            region: a.get_u64(2)?,
            now: a.get_int(3)?,
        };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });
    reg.register("rubis.store_item", |ctx, a| {
        let p = StoreItem {
            item_id: a.get_u64(0)?,
            seller: a.get_u64(1)?,
            category: a.get_u64(2)?,
            region: a.get_u64(3)?,
            name: a.get_str(4)?.to_string(),
            initial_price: a.get_int(5)?,
            end_date: a.get_int(6)?,
            style: style_arg(a, 7)?,
        };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });
    reg.register("rubis.store_bid", |ctx, a| {
        let p = StoreBid {
            bid_id: a.get_u64(0)?,
            bidder: a.get_u64(1)?,
            item: a.get_u64(2)?,
            amount: a.get_int(3)?,
            now: a.get_int(4)?,
            style: style_arg(a, 5)?,
        };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });
    reg.register("rubis.store_buy_now", |ctx, a| {
        let p = StoreBuyNow {
            buy_now_id: a.get_u64(0)?,
            item: a.get_u64(1)?,
            buyer: a.get_u64(2)?,
            quantity: a.get_int(3)?,
            now: a.get_int(4)?,
        };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });
    reg.register("rubis.store_comment", |ctx, a| {
        let p = StoreComment {
            comment_id: a.get_u64(0)?,
            author: a.get_u64(1)?,
            about_user: a.get_u64(2)?,
            item: a.get_u64(3)?,
            rating: a.get_int(4)?,
            text: a.get_str(5)?.to_string(),
            style: style_arg(a, 6)?,
        };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });

    reg.register_read_only("rubis.view_item", |ctx, a| {
        let (max_bid, num_bids) = ViewItem { item: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(max_bid).int(num_bids))
    });
    reg.register_read_only("rubis.view_user_info", |ctx, a| {
        let rating = ViewUserInfo { user: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(rating))
    });
    reg.register_read_only("rubis.view_bid_history", |ctx, a| {
        let listed = ViewBidHistory { item: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(listed))
    });
    reg.register_read_only("rubis.search_items_by_category", |ctx, a| {
        let listed = SearchItemsByCategory { category: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(listed))
    });
    reg.register_read_only("rubis.search_items_by_region", |ctx, a| {
        let listed = SearchItemsByRegion { region: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(listed))
    });
    reg.register_read_only("rubis.browse_categories", |ctx, a| {
        let found = BrowseCategories { categories: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(found))
    });
    reg.register_read_only("rubis.browse_regions", |ctx, a| {
        let found = BrowseRegions { regions: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(found))
    });
    reg.register_read_only("rubis.about_me", |ctx, a| {
        let (rating, listed) = AboutMe { user: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(rating).int(listed))
    });
    reg.register_read_only("rubis.put_bid_view", |ctx, a| {
        let (max_bid, num_bids) = PutBidView { item: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(max_bid).int(num_bids))
    });
    reg.register_read_only("rubis.put_comment_view", |ctx, a| {
        let p = PutCommentView { about_user: a.get_u64(0)?, item: a.get_u64(1)? };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });
    reg.register_read_only("rubis.buy_now_view", |ctx, a| {
        let p = BuyNowView { item: a.get_u64(0)? };
        doppel_common::Procedure::run(&p, ctx.tx())?;
        Ok(ProcResult::new())
    });
    reg.register_read_only("rubis.view_user_comments", |ctx, a| {
        let listed = ViewUserComments { user: a.get_u64(0)? }.view(ctx.tx())?;
        Ok(ProcResult::new().int(listed))
    });
}

/// A fresh shared registry holding only the RUBiS pack.
pub fn rubis_registry() -> Arc<ProcRegistry> {
    let mut reg = ProcRegistry::new();
    register_rubis(&mut reg);
    Arc::new(reg)
}

/// Declares the auction-metadata records of `items` contended under
/// `rubis.store_bid` (paper §8.8: popular auctions nearing their close). A
/// server fronting a Doppel engine labels them split at startup instead of
/// waiting for the conflict counters.
pub fn hint_hot_items(reg: &mut ProcRegistry, items: impl IntoIterator<Item = u64>) {
    let bid = reg.lookup("rubis.store_bid").expect("rubis pack is registered");
    for item in items {
        reg.hint_contended(bid, keys::max_bid(item), OpKind::Max);
        reg.hint_contended(bid, keys::max_bidder(item), OpKind::OPut);
        reg.hint_contended(bid, keys::num_bids(item), OpKind::Add);
        reg.hint_contended(bid, keys::bids_per_item(item), OpKind::TopKInsert);
    }
}

/// The pack's procedure ids, resolved once so hot paths (workload
/// generators) invoke without per-transaction name lookups.
#[derive(Clone, Copy, Debug)]
pub struct RubisProcs {
    /// `rubis.register_user`.
    pub register_user: ProcId,
    /// `rubis.store_item`.
    pub store_item: ProcId,
    /// `rubis.store_bid`.
    pub store_bid: ProcId,
    /// `rubis.store_buy_now`.
    pub store_buy_now: ProcId,
    /// `rubis.store_comment`.
    pub store_comment: ProcId,
    /// `rubis.view_item`.
    pub view_item: ProcId,
    /// `rubis.view_user_info`.
    pub view_user_info: ProcId,
    /// `rubis.view_bid_history`.
    pub view_bid_history: ProcId,
    /// `rubis.search_items_by_category`.
    pub search_items_by_category: ProcId,
    /// `rubis.search_items_by_region`.
    pub search_items_by_region: ProcId,
    /// `rubis.browse_categories`.
    pub browse_categories: ProcId,
    /// `rubis.browse_regions`.
    pub browse_regions: ProcId,
    /// `rubis.about_me`.
    pub about_me: ProcId,
    /// `rubis.put_bid_view`.
    pub put_bid_view: ProcId,
    /// `rubis.put_comment_view`.
    pub put_comment_view: ProcId,
    /// `rubis.buy_now_view`.
    pub buy_now_view: ProcId,
    /// `rubis.view_user_comments`.
    pub view_user_comments: ProcId,
}

impl RubisProcs {
    /// Resolves every pack procedure in `reg`.
    ///
    /// # Panics
    ///
    /// Panics if the RUBiS pack was not registered in `reg`.
    pub fn resolve(reg: &ProcRegistry) -> RubisProcs {
        let get = |name: &str| reg.lookup(name).unwrap_or_else(|| panic!("{name} not registered"));
        RubisProcs {
            register_user: get("rubis.register_user"),
            store_item: get("rubis.store_item"),
            store_bid: get("rubis.store_bid"),
            store_buy_now: get("rubis.store_buy_now"),
            store_comment: get("rubis.store_comment"),
            view_item: get("rubis.view_item"),
            view_user_info: get("rubis.view_user_info"),
            view_bid_history: get("rubis.view_bid_history"),
            search_items_by_category: get("rubis.search_items_by_category"),
            search_items_by_region: get("rubis.search_items_by_region"),
            browse_categories: get("rubis.browse_categories"),
            browse_regions: get("rubis.browse_regions"),
            about_me: get("rubis.about_me"),
            put_bid_view: get("rubis.put_bid_view"),
            put_comment_view: get("rubis.put_comment_view"),
            buy_now_view: get("rubis.buy_now_view"),
            view_user_comments: get("rubis.view_user_comments"),
        }
    }
}

/// Argument-vector builders, one per registered procedure. These are the
/// single source of truth for each procedure's calling convention: the
/// workload generator, the networked example and the benchmark all build
/// their invocations here.
pub mod args {
    use super::*;

    /// `rubis.register_user(user_id, nickname, region, now)`.
    pub fn register_user(user_id: u64, nickname: &str, region: u64, now: i64) -> Args {
        Args::new().uint(user_id).str(nickname).uint(region).int(now)
    }

    /// `rubis.store_item(item_id, seller, category, region, name, initial_price, end_date, style)`.
    #[allow(clippy::too_many_arguments)]
    pub fn store_item(
        item_id: u64,
        seller: u64,
        category: u64,
        region: u64,
        name: &str,
        initial_price: i64,
        end_date: i64,
        style: TxnStyle,
    ) -> Args {
        Args::new()
            .uint(item_id)
            .uint(seller)
            .uint(category)
            .uint(region)
            .str(name)
            .int(initial_price)
            .int(end_date)
            .int(style_code(style))
    }

    /// `rubis.store_bid(bid_id, bidder, item, amount, now, style)`.
    pub fn store_bid(
        bid_id: u64,
        bidder: u64,
        item: u64,
        amount: i64,
        now: i64,
        style: TxnStyle,
    ) -> Args {
        Args::new()
            .uint(bid_id)
            .uint(bidder)
            .uint(item)
            .int(amount)
            .int(now)
            .int(style_code(style))
    }

    /// `rubis.store_buy_now(buy_now_id, item, buyer, quantity, now)`.
    pub fn store_buy_now(buy_now_id: u64, item: u64, buyer: u64, quantity: i64, now: i64) -> Args {
        Args::new().uint(buy_now_id).uint(item).uint(buyer).int(quantity).int(now)
    }

    /// `rubis.store_comment(comment_id, author, about_user, item, rating, text, style)`.
    pub fn store_comment(
        comment_id: u64,
        author: u64,
        about_user: u64,
        item: u64,
        rating: i64,
        text: &str,
        style: TxnStyle,
    ) -> Args {
        Args::new()
            .uint(comment_id)
            .uint(author)
            .uint(about_user)
            .uint(item)
            .int(rating)
            .str(text)
            .int(style_code(style))
    }

    /// `rubis.view_item(item)`.
    pub fn view_item(item: u64) -> Args {
        Args::new().uint(item)
    }

    /// `rubis.view_user_info(user)`.
    pub fn view_user_info(user: u64) -> Args {
        Args::new().uint(user)
    }

    /// `rubis.view_bid_history(item)`.
    pub fn view_bid_history(item: u64) -> Args {
        Args::new().uint(item)
    }

    /// `rubis.search_items_by_category(category)`.
    pub fn search_items_by_category(category: u64) -> Args {
        Args::new().uint(category)
    }

    /// `rubis.search_items_by_region(region)`.
    pub fn search_items_by_region(region: u64) -> Args {
        Args::new().uint(region)
    }

    /// `rubis.browse_categories(categories)`.
    pub fn browse_categories(categories: u64) -> Args {
        Args::new().uint(categories)
    }

    /// `rubis.browse_regions(regions)`.
    pub fn browse_regions(regions: u64) -> Args {
        Args::new().uint(regions)
    }

    /// `rubis.about_me(user)`.
    pub fn about_me(user: u64) -> Args {
        Args::new().uint(user)
    }

    /// `rubis.put_bid_view(item)`.
    pub fn put_bid_view(item: u64) -> Args {
        Args::new().uint(item)
    }

    /// `rubis.put_comment_view(about_user, item)`.
    pub fn put_comment_view(about_user: u64, item: u64) -> Args {
        Args::new().uint(about_user).uint(item)
    }

    /// `rubis.buy_now_view(item)`.
    pub fn buy_now_view(item: u64) -> Args {
        Args::new().uint(item)
    }

    /// `rubis.view_user_comments(user)`.
    pub fn view_user_comments(user: u64) -> Args {
        Args::new().uint(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{RubisData, RubisScale};
    use doppel_common::{Engine, Procedure};
    use doppel_occ::OccEngine;

    fn loaded_engine() -> OccEngine {
        let engine = OccEngine::new(1, 64);
        RubisData::new(RubisScale::small()).load(&engine);
        engine
    }

    #[test]
    fn pack_names_and_read_only_flags() {
        let reg = rubis_registry();
        assert_eq!(reg.names(), RUBIS_PROCS);
        let procs = RubisProcs::resolve(&reg);
        assert!(!reg.is_read_only(procs.store_bid));
        assert!(reg.is_read_only(procs.view_item));
        assert!(reg.is_read_only(procs.view_user_comments));
    }

    #[test]
    fn store_bid_proc_updates_aggregates_and_view_item_reads_them() {
        for style in [TxnStyle::Classic, TxnStyle::Doppel] {
            let engine = loaded_engine();
            let reg = rubis_registry();
            let procs = RubisProcs::resolve(&reg);
            let mut h = engine.handle(0);
            let item = 7u64;
            let start = engine.global_get(keys::max_bid(item)).unwrap().as_int().unwrap();

            let bid = reg.call(procs.store_bid, args::store_bid(1_000, 3, item, start + 50, 1, style));
            assert!(h.execute(bid).is_committed(), "style {style:?}");
            let bid = reg.call(procs.store_bid, args::store_bid(1_001, 4, item, start + 20, 2, style));
            assert!(h.execute(bid).is_committed());

            let view = reg.call(procs.view_item, args::view_item(item));
            assert!(h.execute(Arc::clone(&view) as _).is_committed());
            let result = view.take_result().expect("view_item returns aggregates");
            assert_eq!(result.get_int(0).unwrap(), start + 50, "style {style:?}: max bid");
            assert_eq!(result.get_int(1).unwrap(), 2, "style {style:?}: bid count");
        }
    }

    #[test]
    fn bad_style_and_bad_args_abort_cleanly() {
        let engine = loaded_engine();
        let reg = rubis_registry();
        let procs = RubisProcs::resolve(&reg);
        let mut h = engine.handle(0);
        // Style 7 is not a TxnStyle.
        let bad = reg.call(procs.store_bid, args::store_bid(1, 1, 1, 100, 1, TxnStyle::Classic));
        // Rebuild with a corrupt style int by hand:
        let corrupt = reg.call(
            procs.store_bid,
            Args::new().uint(1).uint(1).uint(1).int(100).int(1).int(7),
        );
        match h.execute(corrupt) {
            doppel_common::Outcome::Aborted(TxError::UserAbort { reason }) => {
                assert!(reason.contains("style"));
            }
            other => panic!("expected a style abort, got {other:?}"),
        }
        // Too few arguments.
        let short = reg.call(procs.store_bid, Args::new().uint(1));
        assert!(matches!(
            h.execute(short),
            doppel_common::Outcome::Aborted(TxError::UserAbort { .. })
        ));
        // The well-formed call still works.
        assert!(h.execute(bad).is_committed());
    }

    #[test]
    fn hot_item_hints_cover_the_bid_aggregates() {
        let mut reg = ProcRegistry::new();
        register_rubis(&mut reg);
        hint_hot_items(&mut reg, [0, 1]);
        let hints = reg.contention_hints();
        assert_eq!(hints.len(), 8, "4 aggregate records per hot item");
        assert!(hints.iter().any(|(_, k, op)| *k == keys::max_bid(0) && *op == OpKind::Max));
        assert!(hints
            .iter()
            .any(|(_, k, op)| *k == keys::bids_per_item(1) && *op == OpKind::TopKInsert));
    }

    #[test]
    fn every_read_proc_commits_against_loaded_data() {
        let engine = loaded_engine();
        let reg = rubis_registry();
        let mut h = engine.handle(0);
        let scale = RubisScale::small();
        let reads: Vec<(&str, Args)> = vec![
            ("rubis.view_item", args::view_item(2)),
            ("rubis.view_user_info", args::view_user_info(2)),
            ("rubis.view_bid_history", args::view_bid_history(2)),
            ("rubis.search_items_by_category", args::search_items_by_category(0)),
            ("rubis.search_items_by_region", args::search_items_by_region(0)),
            ("rubis.browse_categories", args::browse_categories(scale.categories)),
            ("rubis.browse_regions", args::browse_regions(scale.regions)),
            ("rubis.about_me", args::about_me(2)),
            ("rubis.put_bid_view", args::put_bid_view(2)),
            ("rubis.put_comment_view", args::put_comment_view(2, 2)),
            ("rubis.buy_now_view", args::buy_now_view(2)),
            ("rubis.view_user_comments", args::view_user_comments(2)),
        ];
        for (name, a) in reads {
            let call = reg.call_by_name(name, a).unwrap();
            assert!(call.is_read_only(), "{name} must be read-only");
            assert!(h.execute(call).is_committed(), "{name} failed");
        }
    }
}
