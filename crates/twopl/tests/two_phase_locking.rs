//! Integration tests of the 2PL engine: serializability under concurrent
//! multi-key transactions and read stability while locks are held.

use doppel_common::{Engine, Key, Outcome, ProcedureFn, TxError, Value};
use doppel_twopl::TwoplEngine;
use std::sync::Arc;

/// The classic bank-transfer check: concurrent transfers between accounts
/// preserve the total balance, and no transaction ever observes a negative
/// total (which would mean it read between another transaction's two writes).
#[test]
fn transfers_preserve_total_and_isolation() {
    let accounts = 8u64;
    let initial = 1_000i64;
    let engine = Arc::new(TwoplEngine::new(4, 64));
    for a in 0..accounts {
        engine.load(Key::raw(a), Value::Int(initial));
    }

    let mut handles = Vec::new();
    for core in 0..4usize {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut handle = engine.handle(core);
            let mut x = (core as u64 + 1) * 0x9E37;
            for _ in 0..2_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let from = Key::raw(x % accounts);
                let to = Key::raw((x >> 8) % accounts);
                let amount = (x % 50) as i64;
                if from == to {
                    continue;
                }
                let transfer = Arc::new(ProcedureFn::new("transfer", move |tx| {
                    let balance = tx.get_int(from)?;
                    if balance < amount {
                        return Err(TxError::UserAbort { reason: "insufficient funds" });
                    }
                    tx.put(from, Value::Int(balance - amount))?;
                    tx.add(to, amount)
                }));
                match handle.execute(transfer) {
                    Outcome::Committed(_) | Outcome::Aborted(TxError::UserAbort { .. }) => {}
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }));
    }

    for h in handles {
        h.join().unwrap();
    }

    let total: i64 = (0..accounts)
        .map(|a| engine.global_get(Key::raw(a)).unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total, accounts as i64 * initial, "transfers must conserve money");
    for a in 0..accounts {
        assert!(
            engine.global_get(Key::raw(a)).unwrap().as_int().unwrap() >= 0,
            "no account may go negative"
        );
    }
}

/// Read-only transactions under 2PL see a consistent snapshot even while
/// writers are running: a writer keeps two keys equal, a reader asserts it
/// never sees them differ.
#[test]
fn readers_see_consistent_pairs() {
    let engine = Arc::new(TwoplEngine::new(2, 16));
    let a = Key::raw(1);
    let b = Key::raw(2);
    engine.load(a, Value::Int(0));
    engine.load(b, Value::Int(0));

    let writer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let mut handle = engine.handle(0);
            for i in 1..=3_000i64 {
                let w = Arc::new(ProcedureFn::new("pair-write", move |tx| {
                    tx.put(a, Value::Int(i))?;
                    tx.put(b, Value::Int(i))
                }));
                assert!(handle.execute(w).is_committed());
            }
        })
    };
    let reader = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let mut handle = engine.handle(1);
            for _ in 0..3_000 {
                let observed = Arc::new(std::sync::Mutex::new((0i64, 0i64)));
                let sink = Arc::clone(&observed);
                let r = Arc::new(ProcedureFn::read_only("pair-read", move |tx| {
                    let va = tx.get_int(Key::raw(1))?;
                    let vb = tx.get_int(Key::raw(2))?;
                    *sink.lock().unwrap() = (va, vb);
                    Ok(())
                }));
                assert!(handle.execute(r).is_committed());
                let (va, vb) = *observed.lock().unwrap();
                assert_eq!(va, vb, "2PL readers must never see a half-applied pair");
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
}

/// User aborts roll back cleanly: buffered writes are discarded and locks are
/// released so later transactions proceed.
#[test]
fn user_abort_discards_buffered_writes() {
    let engine = TwoplEngine::new(1, 16);
    engine.load(Key::raw(1), Value::Int(5));
    let mut handle = engine.handle(0);
    let aborting = Arc::new(ProcedureFn::new("abort", |tx| {
        tx.put(Key::raw(1), Value::Int(999))?;
        tx.add(Key::raw(2), 1)?;
        Err(TxError::UserAbort { reason: "changed my mind" })
    }));
    assert!(matches!(handle.execute(aborting), Outcome::Aborted(TxError::UserAbort { .. })));
    assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(5)));
    assert_eq!(engine.global_get(Key::raw(2)), None);
    // The record locks were released: a follow-up transaction commits.
    let ok = Arc::new(ProcedureFn::new("after", |tx| tx.add(Key::raw(1), 1)));
    assert!(handle.execute(ok).is_committed());
    assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(6)));
}
