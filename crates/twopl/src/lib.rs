//! Two-phase locking baseline engine.
//!
//! The paper compares Doppel against a conventional 2PL engine: "2PL waits
//! for a write lock on the key, reads it, and then writes the new value. 2PL
//! never aborts." (§8.2) and "2PL uses Go's read-write mutexes" (§8.1).
//!
//! This crate implements strict two-phase locking over the shared
//! [`doppel_store::Store`]:
//!
//! * a [`LockManager`] provides per-record shared/exclusive locks with
//!   **wait-die** deadlock avoidance (transaction timestamps decide whether a
//!   requester blocks or backs off);
//! * a transaction acquires a shared lock for every record it reads and an
//!   exclusive lock for every record it writes, holds all locks until commit
//!   (growing/shrinking phases), applies its buffered writes, then releases;
//! * when wait-die forces a transaction to back off it is retried internally
//!   with its original timestamp, so — like the paper's 2PL — the engine
//!   never reports an abort to the caller for lock conflicts (the retried
//!   transaction eventually becomes the oldest requester and wins).

pub mod engine;
pub mod lock_manager;
pub mod tx;

pub use engine::{TwoplEngine, TwoplHandle};
pub use lock_manager::{LockManager, LockMode, LockRequestOutcome};
pub use tx::{TwoplTx, TxBuffers};
