//! Per-record shared/exclusive lock manager with wait-die deadlock avoidance.
//!
//! The lock manager is logically separate from the records themselves: it
//! maps [`Key`]s to lock state and tracks which transactions (identified by
//! their start timestamps) hold or wait for each lock. Conflicting requests
//! are resolved with the classic *wait-die* policy:
//!
//! * an **older** requester (smaller timestamp) *waits* for the holders to
//!   release;
//! * a **younger** requester *dies*: the request returns
//!   [`LockRequestOutcome::Die`] and the caller is expected to release all of
//!   its locks and retry the transaction with its original timestamp.
//!
//! Because timestamps are retained across retries, a transaction eventually
//! becomes the oldest active requester and can no longer die, so every
//! transaction finishes — matching the paper's "2PL never aborts" behaviour
//! at the engine interface.

use doppel_common::Key;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// Lock mode for a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) access; compatible with other shared holders.
    Shared,
    /// Exclusive (write) access; incompatible with everything.
    Exclusive,
}

/// Result of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockRequestOutcome {
    /// The lock was granted (possibly after waiting).
    Granted,
    /// Wait-die decided the requester must back off: release everything and
    /// retry the transaction.
    Die,
}

/// Transaction timestamp used for wait-die ordering (smaller = older).
pub type Timestamp = u64;

#[derive(Debug, Default)]
struct LockState {
    /// Current holders: (timestamp, mode). Either any number of `Shared`
    /// holders or exactly one `Exclusive` holder.
    holders: Vec<(Timestamp, LockMode)>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.holders.is_empty()
    }

    fn holds(&self, ts: Timestamp) -> Option<LockMode> {
        self.holders.iter().find(|(t, _)| *t == ts).map(|(_, m)| *m)
    }

    fn oldest_other_holder(&self, ts: Timestamp) -> Option<Timestamp> {
        self.holders.iter().filter(|(t, _)| *t != ts).map(|(t, _)| *t).min()
    }

    /// Can `ts` acquire `mode` right now?
    fn compatible(&self, ts: Timestamp, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == ts || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.iter().all(|(t, _)| *t == ts),
        }
    }

    fn grant(&mut self, ts: Timestamp, mode: LockMode) {
        match self.holders.iter_mut().find(|(t, _)| *t == ts) {
            Some(entry) => {
                // Upgrade shared → exclusive (never downgrade).
                if mode == LockMode::Exclusive {
                    entry.1 = LockMode::Exclusive;
                }
            }
            None => self.holders.push((ts, mode)),
        }
    }

    fn release(&mut self, ts: Timestamp) -> bool {
        let before = self.holders.len();
        self.holders.retain(|(t, _)| *t != ts);
        self.holders.len() != before
    }
}

struct Shard {
    locks: Mutex<HashMap<Key, LockState>>,
    released: Condvar,
}

/// The lock manager: a sharded table of per-record lock states.
pub struct LockManager {
    shards: Vec<Shard>,
    mask: u64,
}

impl LockManager {
    /// Creates a lock manager with `shards` shards (rounded up to a power of
    /// two).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        LockManager {
            shards: (0..shards)
                .map(|_| Shard { locks: Mutex::new(HashMap::new()), released: Condvar::new() })
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    fn shard(&self, key: &Key) -> &Shard {
        &self.shards[(key.stable_hash() & self.mask) as usize]
    }

    /// Requests `mode` on `key` for transaction `ts`, blocking while wait-die
    /// allows waiting.
    ///
    /// Returns [`LockRequestOutcome::Die`] when the requester is younger than
    /// a conflicting holder and must back off.
    pub fn acquire(&self, ts: Timestamp, key: Key, mode: LockMode) -> LockRequestOutcome {
        let shard = self.shard(&key);
        let mut table = shard.locks.lock();
        loop {
            let must_wait = {
                let state = table.entry(key).or_default();
                // Re-acquiring a mode we already hold (or hold more strongly)
                // is a no-op.
                if let Some(held) = state.holds(ts) {
                    if held == LockMode::Exclusive || mode == LockMode::Shared {
                        return LockRequestOutcome::Granted;
                    }
                }
                if state.compatible(ts, mode) {
                    state.grant(ts, mode);
                    return LockRequestOutcome::Granted;
                }
                // Conflict: wait-die. Wait only if we are older than every
                // other holder; otherwise die.
                match state.oldest_other_holder(ts) {
                    Some(oldest) if ts < oldest => true,
                    _ => return LockRequestOutcome::Die,
                }
            };
            debug_assert!(must_wait);
            shard.released.wait(&mut table);
            // Loop around and re-examine the state.
        }
    }

    /// Releases every lock held by transaction `ts` on the given keys.
    pub fn release_all<'a>(&self, ts: Timestamp, keys: impl IntoIterator<Item = &'a Key>) {
        // Group by shard so each shard lock is taken once.
        for key in keys {
            let shard = self.shard(key);
            let mut table = shard.locks.lock();
            let mut remove = false;
            if let Some(state) = table.get_mut(key) {
                if state.release(ts) && state.is_free() {
                    remove = true;
                }
            }
            if remove {
                table.remove(key);
            }
            shard.released.notify_all();
        }
    }

    /// Number of keys that currently have lock state (diagnostics only).
    pub fn active_locks(&self) -> usize {
        self.shards.iter().map(|s| s.locks.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new(4);
        assert_eq!(lm.acquire(1, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        assert_eq!(lm.acquire(2, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        lm.release_all(1, [&Key::raw(1)]);
        lm.release_all(2, [&Key::raw(1)]);
        assert_eq!(lm.active_locks(), 0);
    }

    #[test]
    fn younger_exclusive_requester_dies() {
        let lm = LockManager::new(4);
        assert_eq!(lm.acquire(1, Key::raw(1), LockMode::Exclusive), LockRequestOutcome::Granted);
        // ts=2 is younger than holder ts=1 → die immediately, no blocking.
        assert_eq!(lm.acquire(2, Key::raw(1), LockMode::Exclusive), LockRequestOutcome::Die);
        assert_eq!(lm.acquire(2, Key::raw(1), LockMode::Shared), LockRequestOutcome::Die);
        lm.release_all(1, [&Key::raw(1)]);
        assert_eq!(lm.acquire(2, Key::raw(1), LockMode::Exclusive), LockRequestOutcome::Granted);
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new(4);
        assert_eq!(lm.acquire(5, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        // Re-acquire shared: no-op.
        assert_eq!(lm.acquire(5, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        // Upgrade to exclusive while sole holder.
        assert_eq!(lm.acquire(5, Key::raw(1), LockMode::Exclusive), LockRequestOutcome::Granted);
        // Exclusive also satisfies later shared requests by the same txn.
        assert_eq!(lm.acquire(5, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        // Other (younger) transactions die.
        assert_eq!(lm.acquire(9, Key::raw(1), LockMode::Shared), LockRequestOutcome::Die);
        lm.release_all(5, [&Key::raw(1)]);
    }

    #[test]
    fn upgrade_with_other_shared_holder_follows_wait_die() {
        let lm = LockManager::new(4);
        assert_eq!(lm.acquire(3, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        assert_eq!(lm.acquire(7, Key::raw(1), LockMode::Shared), LockRequestOutcome::Granted);
        // ts=7 wants to upgrade but ts=3 (older) also holds shared → die.
        assert_eq!(lm.acquire(7, Key::raw(1), LockMode::Exclusive), LockRequestOutcome::Die);
        lm.release_all(3, [&Key::raw(1)]);
        lm.release_all(7, [&Key::raw(1)]);
    }

    #[test]
    fn older_requester_waits_for_release() {
        let lm = Arc::new(LockManager::new(4));
        // Younger transaction (ts=10) holds the lock.
        assert_eq!(lm.acquire(10, Key::raw(1), LockMode::Exclusive), LockRequestOutcome::Granted);
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            // Older transaction (ts=1) must wait, then get the lock.
            lm2.acquire(1, Key::raw(1), LockMode::Exclusive)
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "older requester should still be waiting");
        lm.release_all(10, [&Key::raw(1)]);
        assert_eq!(waiter.join().unwrap(), LockRequestOutcome::Granted);
        lm.release_all(1, [&Key::raw(1)]);
        assert_eq!(lm.active_locks(), 0);
    }

    #[test]
    fn concurrent_exclusive_holders_are_serialized() {
        let lm = Arc::new(LockManager::new(8));
        let counter = Arc::new(Mutex::new(0i64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let ts = t * 1_000_000 + i + 1;
                    loop {
                        match lm.acquire(ts, Key::raw(0), LockMode::Exclusive) {
                            LockRequestOutcome::Granted => break,
                            LockRequestOutcome::Die => std::thread::yield_now(),
                        }
                    }
                    {
                        let mut c = counter.lock();
                        *c += 1;
                    }
                    lm.release_all(ts, [&Key::raw(0)]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
        assert_eq!(lm.active_locks(), 0);
    }
}
