//! The 2PL engine and its per-worker handle.

use crate::lock_manager::LockManager;
use crate::tx::{TwoplTx, TxBuffers};
use doppel_common::{
    CommitSink, Completion, CoreId, Engine, EngineStats, Key, Outcome, Procedure, StatsSnapshot,
    TidGenerator, TxError, TxHandle, Value,
};
use doppel_store::Store;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type SinkCell = Arc<RwLock<Option<Arc<dyn CommitSink>>>>;

/// Shared state of the 2PL engine.
pub struct TwoplEngine {
    store: Arc<Store>,
    locks: Arc<LockManager>,
    stats: Arc<EngineStats>,
    sink: SinkCell,
    next_ts: Arc<AtomicU64>,
    workers: usize,
}

impl TwoplEngine {
    /// Creates an engine with `workers` workers and `shards` store shards.
    pub fn new(workers: usize, shards: usize) -> Self {
        TwoplEngine {
            store: Arc::new(Store::new(shards)),
            locks: Arc::new(LockManager::new(shards)),
            stats: Arc::new(EngineStats::new()),
            sink: Arc::new(RwLock::new(None)),
            next_ts: Arc::new(AtomicU64::new(1)),
            workers,
        }
    }

    /// The underlying store (for tests and invariant checks).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

impl Engine for TwoplEngine {
    fn name(&self) -> &'static str {
        "2PL"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn handle(&self, core: CoreId) -> Box<dyn TxHandle> {
        assert!(core < self.workers, "core {core} out of range (workers = {})", self.workers);
        Box::new(TwoplHandle {
            core,
            store: Arc::clone(&self.store),
            locks: Arc::clone(&self.locks),
            stats: Arc::clone(&self.stats),
            // Captured once so the commit path carries no shared sink-cell
            // read (attach must precede handle creation).
            sink: self.sink.read().clone(),
            next_ts: Arc::clone(&self.next_ts),
            tid_gen: TidGenerator::new(core),
            bufs: TxBuffers::default(),
        })
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn global_get(&self, k: Key) -> Option<Value> {
        self.store.read_unlocked(&k)
    }

    fn load(&self, k: Key, v: Value) {
        self.store.load(k, v);
    }

    fn attach_commit_sink(&self, sink: Arc<dyn CommitSink>) {
        *self.sink.write() = Some(sink);
    }

    fn for_each_record(&self, f: &mut dyn FnMut(Key, &Value)) {
        self.store.for_each(|k, r| {
            if let Some(v) = r.read_unlocked() {
                f(*k, &v);
            }
        });
    }

    fn note_recovered(&self, records: u64) {
        EngineStats::add(&self.stats.recovered_txns, records);
    }

    fn shutdown(&self) {
        if let Some(sink) = self.sink.read().as_ref() {
            self.stats.absorb_log(&sink.sync());
        }
    }
}

/// Per-worker 2PL execution handle.
pub struct TwoplHandle {
    core: CoreId,
    store: Arc<Store>,
    locks: Arc<LockManager>,
    stats: Arc<EngineStats>,
    sink: Option<Arc<dyn CommitSink>>,
    next_ts: Arc<AtomicU64>,
    tid_gen: TidGenerator,
    /// Transaction buffers reused across transactions (and across wait-die
    /// retries of the same transaction), so steady-state execution allocates
    /// nothing for lock bookkeeping or buffered writes.
    bufs: TxBuffers,
}

impl TxHandle for TwoplHandle {
    fn core(&self) -> CoreId {
        self.core
    }

    fn execute(&mut self, proc: Arc<dyn Procedure>) -> Outcome {
        // The wait-die timestamp is assigned once per transaction and kept
        // across internal retries, so a repeatedly dying transaction
        // eventually becomes the oldest requester and completes — "2PL never
        // aborts" (§8.2).
        let ts = self.next_ts.fetch_add(1, Ordering::Relaxed);
        let mut backoff = 0u32;
        let mut bufs = std::mem::take(&mut self.bufs);
        loop {
            let mut tx = TwoplTx::from_parts(&self.store, &self.locks, self.core, ts, bufs);
            let run = proc.run(&mut tx);
            match run {
                Ok(()) => {
                    let committed = tx.commit_durable(&mut self.tid_gen, self.sink.as_deref());
                    self.bufs = tx.into_buffers();
                    return match committed {
                        Ok((tid, receipt)) => {
                            self.stats.absorb_log(&receipt);
                            EngineStats::bump(&self.stats.commits);
                            Outcome::Committed(tid)
                        }
                        Err(e) => {
                            EngineStats::bump(&self.stats.user_aborts);
                            Outcome::Aborted(e)
                        }
                    };
                }
                Err(TxError::LockBusy { .. }) => {
                    // Wait-die told us to back off: release the transaction's
                    // locks (keeping its buffers for the retry), yield, retry.
                    bufs = tx.into_buffers();
                    EngineStats::bump(&self.stats.conflicts);
                    backoff = (backoff + 1).min(10);
                    for _ in 0..(1u32 << backoff.min(6)) {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                }
                Err(e) => {
                    self.bufs = tx.into_buffers();
                    EngineStats::bump(&self.stats.user_aborts);
                    return Outcome::Aborted(e);
                }
            }
        }
    }

    fn safepoint(&mut self) {
        // 2PL has no phases; nothing to do.
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::ProcedureFn;

    #[test]
    fn engine_basics() {
        let engine = TwoplEngine::new(2, 8);
        engine.load(Key::raw(0), Value::Int(0));
        let mut h = engine.handle(0);
        let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(0), 1)));
        for _ in 0..5 {
            assert!(h.execute(proc.clone()).is_committed());
        }
        assert_eq!(engine.global_get(Key::raw(0)), Some(Value::Int(5)));
        assert_eq!(engine.stats().commits, 5);
        assert_eq!(engine.name(), "2PL");
    }

    #[test]
    fn never_aborts_under_contention() {
        let engine = Arc::new(TwoplEngine::new(4, 8));
        engine.load(Key::raw(7), Value::Int(0));
        let per_worker = 250;
        let mut handles = Vec::new();
        for core in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut h = engine.handle(core);
                let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(7), 1)));
                for _ in 0..per_worker {
                    // Every call must commit: 2PL retries internally.
                    assert!(h.execute(proc.clone()).is_committed());
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(engine.global_get(Key::raw(7)), Some(Value::Int(4 * per_worker)));
        assert_eq!(engine.stats().commits, 4 * per_worker as u64);
    }

    #[test]
    fn multi_key_transactions_do_not_deadlock() {
        // Transactions touching the same pair of keys in opposite orders
        // would deadlock without wait-die.
        let engine = Arc::new(TwoplEngine::new(2, 8));
        engine.load(Key::raw(1), Value::Int(0));
        engine.load(Key::raw(2), Value::Int(0));
        let mut handles = Vec::new();
        for core in 0..2usize {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut h = engine.handle(core);
                let proc: Arc<dyn Procedure> = if core == 0 {
                    Arc::new(ProcedureFn::new("fwd", |tx| {
                        tx.add(Key::raw(1), 1)?;
                        tx.add(Key::raw(2), 1)
                    }))
                } else {
                    Arc::new(ProcedureFn::new("rev", |tx| {
                        tx.add(Key::raw(2), 1)?;
                        tx.add(Key::raw(1), 1)
                    }))
                };
                for _ in 0..300 {
                    assert!(h.execute(proc.clone()).is_committed());
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(600)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(600)));
    }

    #[test]
    fn user_abort_propagates_and_releases_locks() {
        let engine = TwoplEngine::new(1, 8);
        engine.load(Key::raw(1), Value::Int(0));
        let mut h = engine.handle(0);
        let proc = Arc::new(ProcedureFn::new("fail", |tx| {
            tx.add(Key::raw(1), 1)?;
            Err(TxError::UserAbort { reason: "no" })
        }));
        let out = h.execute(proc);
        assert!(matches!(out, Outcome::Aborted(TxError::UserAbort { .. })));
        // The write was never applied and the locks are free.
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(0)));
        let ok = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
        assert!(h.execute(ok).is_committed());
    }
}
