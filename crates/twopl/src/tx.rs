//! The 2PL transaction context.

use crate::lock_manager::{LockManager, LockMode, LockRequestOutcome, Timestamp};
use doppel_common::{CoreId, Key, Op, OpKind, Tid, TidGenerator, TxError, Value};
use doppel_store::Store;
use std::collections::HashMap;

/// A running strict-2PL transaction.
///
/// The transaction acquires shared locks for reads and exclusive locks for
/// writes as operations are issued (growing phase), buffers its writes, and
/// applies them at commit before releasing every lock (shrinking phase).
/// Wait-die conflicts surface as [`TxError::LockBusy`]; the
/// [`crate::TwoplEngine`] handle retries the whole procedure internally with
/// the same timestamp, so callers never observe lock-induced aborts.
pub struct TwoplTx<'s> {
    store: &'s Store,
    locks: &'s LockManager,
    core: CoreId,
    ts: Timestamp,
    /// Keys whose locks this transaction holds.
    held: Vec<Key>,
    /// Buffered writes, applied at commit.
    writes: HashMap<Key, Op>,
    /// Order in which writes were first buffered (applied in this order).
    write_order: Vec<Key>,
}

/// The reusable buffers of a [`TwoplTx`], pooled by [`crate::TwoplHandle`]
/// across transactions and wait-die retries so the hot path performs no
/// per-transaction allocation for lock bookkeeping or the write buffer.
#[derive(Default)]
pub struct TxBuffers {
    held: Vec<Key>,
    writes: HashMap<Key, Op>,
    write_order: Vec<Key>,
}

impl<'s> TwoplTx<'s> {
    /// Starts a 2PL transaction with wait-die timestamp `ts`.
    pub fn new(store: &'s Store, locks: &'s LockManager, core: CoreId, ts: Timestamp) -> Self {
        Self::from_parts(store, locks, core, ts, TxBuffers::default())
    }

    /// Starts a 2PL transaction reusing previously allocated buffers
    /// (recovered from a finished transaction via [`TwoplTx::into_buffers`]).
    pub fn from_parts(
        store: &'s Store,
        locks: &'s LockManager,
        core: CoreId,
        ts: Timestamp,
        mut bufs: TxBuffers,
    ) -> Self {
        bufs.held.clear();
        bufs.writes.clear();
        bufs.write_order.clear();
        TwoplTx {
            store,
            locks,
            core,
            ts,
            held: bufs.held,
            writes: bufs.writes,
            write_order: bufs.write_order,
        }
    }

    /// Releases any locks still held and returns the internal buffers with
    /// their capacity intact, for reuse by the next transaction.
    pub fn into_buffers(mut self) -> TxBuffers {
        self.release();
        TxBuffers {
            held: std::mem::take(&mut self.held),
            writes: std::mem::take(&mut self.writes),
            write_order: std::mem::take(&mut self.write_order),
        }
    }

    /// The wait-die timestamp of this transaction.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    fn lock(&mut self, key: Key, mode: LockMode) -> Result<(), TxError> {
        match self.locks.acquire(self.ts, key, mode) {
            LockRequestOutcome::Granted => {
                if !self.held.contains(&key) {
                    self.held.push(key);
                }
                Ok(())
            }
            LockRequestOutcome::Die => Err(TxError::LockBusy { key }),
        }
    }

    fn buffer(&mut self, key: Key, op: Op) {
        if self.writes.insert(key, op).is_none() {
            self.write_order.push(key);
        }
    }

    /// Releases every lock held and clears buffered state. Called on both
    /// commit and abort paths.
    pub fn release(&mut self) {
        self.locks.release_all(self.ts, self.held.iter());
        self.held.clear();
        self.writes.clear();
        self.write_order.clear();
    }

    /// Applies the buffered writes (under the exclusive locks acquired during
    /// the growing phase), bumps record TIDs and releases all locks.
    pub fn commit(&mut self, tid_gen: &mut TidGenerator) -> Result<Tid, TxError> {
        self.commit_durable(tid_gen, None).map(|(tid, _)| tid)
    }

    /// [`TwoplTx::commit`] with write-ahead logging: when `sink` is given,
    /// the write set is appended **before** the logical locks are released,
    /// so two conflicting transactions log in their serialization order.
    pub fn commit_durable(
        &mut self,
        tid_gen: &mut TidGenerator,
        sink: Option<&dyn doppel_common::CommitSink>,
    ) -> Result<(Tid, doppel_common::LogReceipt), TxError> {
        let commit_tid = tid_gen.next();
        for key in &self.write_order {
            let op = &self.writes[key];
            let record = self.store.get_or_create(*key);
            // The logical lock manager already guarantees exclusive access;
            // the record lock is taken briefly so the value mutation and TID
            // publication stay atomic with respect to other engines' readers
            // (and debug assertions).
            record.lock_spin();
            match record.apply_and_unlock(op, commit_tid) {
                Ok(()) => {}
                Err(e) => {
                    self.release();
                    return Err(e);
                }
            }
        }
        let receipt = match sink {
            Some(sink) if !self.write_order.is_empty() => {
                // Stream the write set in lock-acquisition order straight out
                // of the buffer — no owned `Vec<(Key, Op)>` rebuild, no
                // per-entry op clone.
                let writes = &self.writes;
                sink.log_commit(
                    commit_tid,
                    &mut self.write_order.iter().map(|k| (*k, &writes[k])),
                )
            }
            _ => doppel_common::LogReceipt::default(),
        };
        self.release();
        Ok((commit_tid, receipt))
    }
}

impl doppel_common::Tx for TwoplTx<'_> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn get(&mut self, k: Key) -> Result<Option<Value>, TxError> {
        self.lock(k, LockMode::Shared)?;
        let committed = self.store.get_or_create(k).read_unlocked();
        match self.writes.get(&k) {
            Some(op) => Ok(Some(op.apply_to(committed.as_ref())?)),
            None => Ok(committed),
        }
    }

    fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
        self.lock(k, LockMode::Exclusive)?;
        match op.kind() {
            OpKind::Put => {
                self.buffer(k, op);
            }
            _ => {
                // Read-modify-write under the exclusive lock: read the current
                // value (plus our own buffered effect), compute, buffer a Put.
                let committed = self.store.get_or_create(k).read_unlocked();
                let current = match self.writes.get(&k) {
                    Some(buffered) => Some(buffered.apply_to(committed.as_ref())?),
                    None => committed,
                };
                let new = op.apply_to(current.as_ref())?;
                self.buffer(k, Op::Put(new));
            }
        }
        Ok(())
    }
}

impl Drop for TwoplTx<'_> {
    fn drop(&mut self) {
        // A transaction abandoned mid-flight (user abort, die, panic in the
        // procedure) must not leave locks behind.
        if !self.held.is_empty() {
            self.locks.release_all(self.ts, self.held.iter());
            self.held.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::Tx;

    fn setup() -> (Store, LockManager) {
        let s = Store::new(16);
        for i in 0..10 {
            s.load(Key::raw(i), Value::Int(i as i64));
        }
        (s, LockManager::new(16))
    }

    #[test]
    fn read_write_commit() {
        let (s, lm) = setup();
        let mut gen = TidGenerator::new(0);
        let mut tx = TwoplTx::new(&s, &lm, 0, 1);
        assert_eq!(tx.get(Key::raw(3)).unwrap(), Some(Value::Int(3)));
        tx.add(Key::raw(3), 10).unwrap();
        assert_eq!(tx.get(Key::raw(3)).unwrap(), Some(Value::Int(13)));
        tx.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(3)), Some(Value::Int(13)));
        assert_eq!(lm.active_locks(), 0);
    }

    #[test]
    fn younger_conflicting_txn_dies() {
        let (s, lm) = setup();
        let mut old_tx = TwoplTx::new(&s, &lm, 0, 1);
        old_tx.add(Key::raw(1), 1).unwrap();
        let mut young_tx = TwoplTx::new(&s, &lm, 1, 2);
        let err = young_tx.add(Key::raw(1), 1).unwrap_err();
        assert_eq!(err, TxError::LockBusy { key: Key::raw(1) });
        let mut gen = TidGenerator::new(0);
        old_tx.commit(&mut gen).unwrap();
        // After the older transaction commits, the younger can proceed.
        let mut retry = TwoplTx::new(&s, &lm, 1, 2);
        retry.add(Key::raw(1), 1).unwrap();
        retry.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(1)), Some(Value::Int(3)));
    }

    #[test]
    fn drop_releases_locks() {
        let (s, lm) = setup();
        {
            let mut tx = TwoplTx::new(&s, &lm, 0, 1);
            tx.get(Key::raw(1)).unwrap();
            tx.add(Key::raw(2), 1).unwrap();
            assert_eq!(lm.active_locks(), 2);
            // Dropped without commit (e.g. user abort).
        }
        assert_eq!(lm.active_locks(), 0);
        assert_eq!(s.read_unlocked(&Key::raw(2)), Some(Value::Int(2)));
    }

    #[test]
    fn shared_then_exclusive_upgrade_on_same_key() {
        let (s, lm) = setup();
        let mut gen = TidGenerator::new(0);
        let mut tx = TwoplTx::new(&s, &lm, 0, 1);
        let v = tx.get(Key::raw(5)).unwrap().unwrap().as_int().unwrap();
        tx.put(Key::raw(5), Value::Int(v * 2)).unwrap();
        tx.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(5)), Some(Value::Int(10)));
    }

    #[test]
    fn insert_new_key() {
        let (s, lm) = setup();
        let mut gen = TidGenerator::new(0);
        let mut tx = TwoplTx::new(&s, &lm, 0, 1);
        assert_eq!(tx.get(Key::raw(99)).unwrap(), None);
        tx.put(Key::raw(99), Value::from("new row")).unwrap();
        tx.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(99)), Some(Value::from("new row")));
    }
}
