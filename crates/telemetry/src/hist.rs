//! Mergeable log-linear latency histograms.
//!
//! The paper's tables report mean and tail (p99) latencies; the live
//! introspection path additionally ships whole distributions over the wire.
//! [`Histogram`] is the one histogram type behind both: a fixed-footprint
//! log-linear (HDR-style) bucketing over nanosecond durations — cheap to
//! update on a hot path, mergeable across workers and across wire hops, and
//! accurate to ~1.5% at the quantiles anything here reports.
//!
//! # Layout
//!
//! Values are bucketed in 256 ns units (`x = ns >> 8`). The first 32 buckets
//! are linear (one per unit, covering 0..8.2 µs); above that, each octave of
//! `x` is split into 32 linear sub-buckets, so the relative bucket width is
//! at most 1/32 ≈ 3.1% (≤ ~1.6% error at the midpoint representative).
//! 512 buckets of `u32` — a fixed 2 KiB count array — reach 2^28 ns ≈ 268 ms;
//! larger values clamp into the last bucket while the exact maximum is
//! tracked separately. The mean is exact (a running sum), only quantiles are
//! subject to bucket resolution.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Total bucket count: 32 linear + 15 octaves × 32 sub-buckets.
pub const BUCKETS: usize = 512;
/// Sub-buckets per octave in the logarithmic region.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32
/// Resolution floor: values are quantized to 256 ns units.
const UNIT_BITS: u32 = 8;

fn bucket_for(ns: u64) -> usize {
    let x = ns >> UNIT_BITS;
    if x < SUB {
        return x as usize;
    }
    // Octave of x (≥ 5 here) and its position within the octave.
    let o = 63 - x.leading_zeros();
    let idx = (SUB as u32 * (o - (SUB_BITS - 1)) + ((x >> (o - SUB_BITS)) as u32 & (SUB as u32 - 1)))
        as usize;
    idx.min(BUCKETS - 1)
}

/// The value range `[lo, hi)` of a bucket, in nanoseconds.
fn bucket_range_ns(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        return (idx << UNIT_BITS, (idx + 1) << UNIT_BITS);
    }
    let group = idx >> SUB_BITS; // 1..=15
    let sub = idx & (SUB - 1);
    let shift = (group - 1) as u32;
    let lo = (SUB + sub) << shift;
    let hi = lo + (1 << shift);
    (lo << UNIT_BITS, hi << UNIT_BITS)
}

/// A mergeable log-linear latency histogram over [`Duration`]s.
///
/// # Examples
///
/// ```
/// use doppel_telemetry::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for us in 1..=1000 {
///     h.record(Duration::from_micros(us));
/// }
/// let p99 = h.quantile_us(0.99);
/// assert!((985..=1000).contains(&p99), "p99={p99}");
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u32>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], total: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one observation given in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let b = &mut self.counts[bucket_for(ns)];
        *b = b.saturating_add(1);
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean in nanoseconds (0 when empty). Exact, not bucketed.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1e3
    }

    /// The `q`-quantile (e.g. 0.99) in nanoseconds, 0 when empty.
    ///
    /// Returns the midpoint of the bucket containing the `q`-th observation,
    /// clamped to the exact observed maximum — within half a bucket width
    /// (≤ ~1.6%) of the true quantile for in-range values.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c as u64;
            if seen >= target {
                if idx == BUCKETS - 1 {
                    // Overflow bucket: unbounded above, so the exact maximum
                    // is the only honest representative.
                    return self.max_ns;
                }
                let (lo, hi) = bucket_range_ns(idx);
                return (lo + (hi - lo) / 2).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// The `q`-quantile in microseconds, 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.quantile_ns(q) / 1000
    }

    /// Maximum observed value in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Maximum observed value in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_ns / 1000
    }

    /// Produces the summary the paper's tables report (p50/p95 added for the
    /// service latency-vs-throughput curves).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_us: self.mean_us(),
            p50_us: self.quantile_ns(0.50) as f64 / 1e3,
            p95_us: self.quantile_ns(0.95) as f64 / 1e3,
            p99_us: self.quantile_ns(0.99) as f64 / 1e3,
            max_us: self.max_ns as f64 / 1e3,
        }
    }

    /// The raw bucket counts (for wire encoding; see `bucket_bounds_ns` for
    /// the value ranges they represent).
    pub fn bucket_counts(&self) -> &[u32] {
        &self.counts
    }

    /// The exact running sum in nanoseconds (for wire encoding).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Rebuilds a histogram from its wire parts. `counts` longer than the
    /// fixed bucket count is truncated; shorter is zero-padded, so decoding
    /// is total.
    pub fn from_parts(counts: &[u32], total: u64, sum_ns: u128, max_ns: u64) -> Histogram {
        let mut full = vec![0u32; BUCKETS];
        for (dst, src) in full.iter_mut().zip(counts.iter()) {
            *dst = *src;
        }
        Histogram { counts: full, total, sum_ns, max_ns }
    }

    /// The `[lo, hi)` nanosecond range of bucket `idx`.
    pub fn bucket_bounds_ns(idx: usize) -> (u64, u64) {
        bucket_range_ns(idx.min(BUCKETS - 1))
    }

    /// Bucket-wise difference `self - earlier`: the distribution of
    /// observations recorded *between* the two snapshots, for interval
    /// percentiles from cumulative polls. Subtraction saturates (a
    /// mismatched pair yields an empty interval, not a panic), and the
    /// interval maximum is not recoverable from cumulative state, so the
    /// later snapshot's maximum stands in (an upper bound).
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let counts: Vec<u32> = self
            .counts
            .iter()
            .zip(earlier.counts.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        Histogram {
            counts,
            total: self.total.saturating_sub(earlier.total),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }
}

/// Mean / p50 / p95 / p99 / max latency summary, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// Maximum latency (µs).
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev_hi = 0;
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_range_ns(idx);
            assert_eq!(lo, prev_hi, "gap before bucket {idx}");
            assert!(hi > lo, "empty bucket {idx}");
            prev_hi = hi;
        }
        // Every in-range value maps to the bucket whose range contains it.
        for ns in [0, 1, 255, 256, 8191, 8192, 100_000, 1 << 20, (1 << 28) - 1] {
            let idx = bucket_for(ns);
            let (lo, hi) = bucket_range_ns(idx);
            assert!(ns >= lo && ns < hi, "ns={ns} idx={idx} range=({lo},{hi})");
        }
        // Out-of-range values clamp into the last bucket.
        assert_eq!(bucket_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(20));
        h.record(Duration::from_micros(30));
        assert_eq!(h.count(), 3);
        assert!((h.mean_us() - 20.0).abs() < 1e-9);
        assert_eq!(h.max_us(), 30);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(20)); // the 1% tail: a stashed read
        let p99 = h.quantile_us(0.99) as f64;
        assert!(p99 <= 105.0, "p99 {p99} should still be in the body");
        let p999 = h.quantile_us(0.9999) as f64;
        assert!(p999 >= 19_000.0, "p99.99 {p999} should capture the 20ms stash");
    }

    #[test]
    fn quantile_accuracy_within_bucket_resolution() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.5) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.02, "p50={p50}");
        let p99 = h.quantile_us(0.99) as f64;
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.02, "p99={p99}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(50));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 500);
        assert!((a.mean_us() - (5.0 + 500.0 + 50.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut h = Histogram::new();
        for us in [3u64, 77, 1042, 250_000] {
            h.record(Duration::from_micros(us));
        }
        let back = Histogram::from_parts(h.bucket_counts(), h.count(), h.sum_ns(), h.max_ns());
        assert_eq!(back, h);
        assert_eq!(back.quantile_us(0.99), h.quantile_us(0.99));
    }

    #[test]
    fn summary_quantiles_are_ordered() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        assert!(s.p50_us <= s.p95_us, "p50 {} > p95 {}", s.p50_us, s.p95_us);
        assert!(s.p95_us <= s.p99_us, "p95 {} > p99 {}", s.p95_us, s.p99_us);
        assert!(s.p99_us <= s.max_us, "p99 {} > max {}", s.p99_us, s.max_us);
        assert!((s.p95_us - 9_500.0).abs() / 9_500.0 < 0.02, "p95={}", s.p95_us);
    }

    #[test]
    fn values_beyond_range_clamp_but_keep_exact_max() {
        let mut h = Histogram::new();
        h.record(Duration::from_secs(10)); // far past the 268ms bucket range
        assert_eq!(h.max_ns(), 10_000_000_000);
        // The quantile clamps to the exact maximum rather than the bucket cap.
        assert_eq!(h.quantile_ns(1.0), 10_000_000_000);
    }
}
