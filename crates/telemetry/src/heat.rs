//! Per-key conflict heat: a striped, lock-free top-K sketch.
//!
//! Doppel's classifier decides which records to split from conflict counts;
//! the observability layer wants the same signal *live* — which keys are hot
//! right now — without unbounded memory or a lock on the conflict path.
//! [`HeatSketch`] is a small fixed-size hash table of `(key, hit count)`
//! slots: recording a key CAS-claims a slot on first sight and then bumps a
//! relaxed counter. When a stripe's probe window is full the hit is counted
//! as dropped rather than evicting anyone — the table biases toward keys
//! seen early, which for a conflict sketch is exactly the persistent-hotspot
//! set the paper cares about (and a dropped count makes the bias visible).

use std::sync::atomic::{AtomicU64, Ordering};

/// Stripes (independently probed regions, hashed by key).
const STRIPES: usize = 16;
/// Slots per stripe.
const SLOTS: usize = 64;
/// Linear-probe window within a stripe.
const PROBE: usize = 8;
/// Slot-empty sentinel (a real key of this value would be miscounted as
/// dropped; `u64::MAX` is not a key any workload here generates).
const EMPTY: u64 = u64::MAX;

struct Slot {
    key: AtomicU64,
    hits: AtomicU64,
}

/// A fixed-footprint striped sketch of per-key hit counts.
pub struct HeatSketch {
    slots: Vec<Slot>,
    dropped: AtomicU64,
}

/// One entry of the hot-key table: a key and its observed hit count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotKey {
    /// The raw key.
    pub key: u64,
    /// Hits recorded against it.
    pub hits: u64,
}

impl Default for HeatSketch {
    fn default() -> Self {
        HeatSketch::new()
    }
}

impl HeatSketch {
    /// Creates an empty sketch.
    pub fn new() -> HeatSketch {
        let mut slots = Vec::with_capacity(STRIPES * SLOTS);
        for _ in 0..STRIPES * SLOTS {
            slots.push(Slot { key: AtomicU64::new(EMPTY), hits: AtomicU64::new(0) });
        }
        HeatSketch { slots, dropped: AtomicU64::new(0) }
    }

    fn probe_base(key: u64) -> usize {
        // Fibonacci hashing spreads sequential keys across stripes and
        // within each stripe's slot ring.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let stripe = (h >> 60) as usize % STRIPES;
        let slot = (h >> 32) as usize % SLOTS;
        stripe * SLOTS + slot
    }

    /// Records one hit against `key`. Lock-free; never allocates.
    pub fn record(&self, key: u64) {
        if key == EMPTY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let base = Self::probe_base(key);
        let stripe_start = base - base % SLOTS;
        for i in 0..PROBE {
            let idx = stripe_start + (base + i) % SLOTS;
            let slot = &self.slots[idx];
            let cur = slot.key.load(Ordering::Relaxed);
            if cur == key {
                slot.hits.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if cur == EMPTY {
                match slot.key.compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Relaxed) {
                    Ok(_) => {
                        slot.hits.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(raced) if raced == key => {
                        slot.hits.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => continue, // someone else claimed it; keep probing
                }
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// The `k` hottest keys, sorted by descending hit count.
    pub fn top_k(&self, k: usize) -> Vec<HotKey> {
        let mut entries: Vec<HotKey> = self
            .slots
            .iter()
            .filter_map(|s| {
                let key = s.key.load(Ordering::Acquire);
                let hits = s.hits.load(Ordering::Relaxed);
                (key != EMPTY && hits > 0).then_some(HotKey { key, hits })
            })
            .collect();
        entries.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.key.cmp(&b.key)));
        entries.truncate(k);
        entries
    }

    /// Hits that could not be attributed because their probe window was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranks_hot_keys() {
        let sketch = HeatSketch::new();
        for _ in 0..100 {
            sketch.record(7);
        }
        for _ in 0..10 {
            sketch.record(8);
        }
        sketch.record(9);
        let top = sketch.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], HotKey { key: 7, hits: 100 });
        assert_eq!(top[1], HotKey { key: 8, hits: 10 });
        assert_eq!(sketch.dropped(), 0);
    }

    #[test]
    fn full_probe_window_drops_instead_of_evicting() {
        let sketch = HeatSketch::new();
        // Saturate every slot of every stripe, then some: far more distinct
        // keys than the sketch has slots.
        for key in 0..100_000u64 {
            sketch.record(key);
        }
        let recorded: u64 = sketch.top_k(usize::MAX).iter().map(|h| h.hits).sum();
        assert_eq!(recorded + sketch.dropped(), 100_000);
        assert!(sketch.dropped() > 0, "a saturated sketch must report drops");
        // Established keys still count after saturation.
        let survivor = sketch.top_k(1)[0].key;
        sketch.record(survivor);
        assert_eq!(sketch.top_k(1)[0].hits, 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing_attributed() {
        let sketch = std::sync::Arc::new(HeatSketch::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let sketch = std::sync::Arc::clone(&sketch);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        sketch.record(42);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sketch.top_k(1)[0], HotKey { key: 42, hits: 40_000 });
    }
}
