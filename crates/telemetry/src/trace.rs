//! Phase-timeline tracing: per-thread event rings exported as Chrome
//! trace-event JSON.
//!
//! The paper's behavior is fundamentally *temporal* — when did the split
//! phase start, how long did reconciliation stall worker 3, when was this
//! transaction stashed and when was it replayed — and counters cannot show
//! it. This module records timestamped events into fixed-size per-thread
//! ring buffers and exports them in the Chrome trace-event format, so
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) render the phase
//! timeline directly.
//!
//! Two off switches, layered:
//!
//! * **Runtime**: tracing is disabled by default; [`set_enabled`] flips one
//!   global atomic. Disabled, every emit is a single relaxed load and a
//!   branch — no ring registration, no clock read, no allocation.
//! * **Compile time**: building `doppel_telemetry` without the `trace`
//!   feature replaces every emit with an empty `#[inline(always)]` function.
//!
//! Rings hold a fixed number of events and overwrite the oldest on wrap
//! (recent history wins: the interesting window is usually the last few
//! phases before the dump). Dropped-event counts are reported in the export.

use std::time::Instant;

/// What happened. The discriminant is stored per event; names and Chrome
/// phase types live in [`EventKind::name`] / [`EventKind::is_span`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A joined phase (span: start → transition release).
    PhaseJoined = 0,
    /// A split phase (span).
    PhaseSplit = 1,
    /// One worker's reconciliation: merging its per-core slices (span).
    Reconcile = 2,
    /// One stashed transaction's replay in a joined phase (span; arg =
    /// replay outcome, 1 committed / 0 aborted).
    StashReplay = 3,
    /// A transaction was enqueued to a core's submission queue (instant;
    /// arg = core).
    TxnEnqueue = 4,
    /// A transaction's execution on a worker (span; arg = core).
    TxnExec = 5,
    /// A transaction committed (instant; arg = core).
    TxnCommit = 6,
    /// A transaction aborted (instant; arg = core).
    TxnAbort = 7,
    /// A transaction was stashed for later replay (instant; arg = core).
    TxnStash = 8,
    /// A WAL group-commit fsync (span; arg = records in the batch).
    WalFsync = 9,
    /// The reactor shed a connection (instant; arg = connection token).
    ReactorShed = 10,
    /// The adaptive tuner took a decision — promote/demote a split label,
    /// adjust the phase length, retune thresholds (instant; arg = tuner
    /// epoch). Correlate with the decision history in `doppel-stat`.
    TunerDecision = 11,
}

impl EventKind {
    /// The event name shown on the Perfetto timeline.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseJoined => "phase.joined",
            EventKind::PhaseSplit => "phase.split",
            EventKind::Reconcile => "reconcile",
            EventKind::StashReplay => "stash.replay",
            EventKind::TxnEnqueue => "txn.enqueue",
            EventKind::TxnExec => "txn.exec",
            EventKind::TxnCommit => "txn.commit",
            EventKind::TxnAbort => "txn.abort",
            EventKind::TxnStash => "txn.stash",
            EventKind::WalFsync => "wal.fsync",
            EventKind::ReactorShed => "reactor.shed",
            EventKind::TunerDecision => "tuner.decision",
        }
    }

    /// True for events with a duration (Chrome `"ph":"X"`); false for
    /// instants (`"ph":"i"`).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::PhaseJoined
                | EventKind::PhaseSplit
                | EventKind::Reconcile
                | EventKind::StashReplay
                | EventKind::TxnExec
                | EventKind::WalFsync
        )
    }

    /// The trace category (Perfetto groups and filters by it).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::PhaseJoined | EventKind::PhaseSplit => "phase",
            EventKind::Reconcile | EventKind::StashReplay => "reconcile",
            EventKind::WalFsync => "wal",
            EventKind::ReactorShed => "net",
            EventKind::TunerDecision => "tuner",
            _ => "txn",
        }
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::EventKind;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};
    use std::time::Instant;

    /// Events kept per thread before the oldest is overwritten.
    const RING_CAPACITY: usize = 8192;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    /// The single time origin every ring timestamps against.
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    #[derive(Clone, Copy)]
    struct Event {
        ts_ns: u64,
        dur_ns: u64,
        kind: EventKind,
        arg: u64,
    }

    struct RingInner {
        events: Vec<Event>,
        /// Next write position; wraps at capacity.
        head: usize,
        /// Total events ever written (≥ `events.len()`).
        written: u64,
    }

    struct Ring {
        name: String,
        inner: Mutex<RingInner>,
    }

    impl Ring {
        fn push(&self, ev: Event) {
            // Single-writer in practice (the owning thread); the mutex is
            // uncontended except against a concurrent export.
            let mut inner = self.inner.lock();
            if inner.events.len() < RING_CAPACITY {
                inner.events.push(ev);
            } else {
                let head = inner.head;
                inner.events[head] = ev;
            }
            inner.head = (inner.head + 1) % RING_CAPACITY;
            inner.written += 1;
        }
    }

    fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
        static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static THREAD_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    }

    fn with_ring(f: impl FnOnce(&Ring)) {
        THREAD_RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                let name = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| "unnamed".to_owned());
                let ring = Arc::new(Ring {
                    name,
                    inner: Mutex::new(RingInner {
                        events: Vec::with_capacity(RING_CAPACITY),
                        head: 0,
                        written: 0,
                    }),
                });
                rings().lock().push(Arc::clone(&ring));
                ring
            });
            f(ring);
        });
    }

    /// True when tracing is currently recording.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (process-wide).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
        if on {
            // Pin the epoch now so the first events don't race to define t=0.
            epoch();
        }
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn instant(kind: EventKind, arg: u64) {
        if !enabled() {
            return;
        }
        let ts_ns = now_ns();
        with_ring(|r| r.push(Event { ts_ns, dur_ns: 0, kind, arg }));
    }

    /// Records a span that started at `start` and ends now.
    #[inline]
    pub fn span_since(kind: EventKind, arg: u64, start: Instant) {
        if !enabled() {
            return;
        }
        let end = now_ns();
        let dur_ns = start.elapsed().as_nanos().min(end as u128) as u64;
        with_ring(|r| {
            r.push(Event { ts_ns: end.saturating_sub(dur_ns), dur_ns, kind, arg })
        });
    }

    /// Total events recorded so far across all threads (monotonic; counts
    /// overwritten events too). Test and introspection hook.
    pub fn events_recorded() -> u64 {
        rings().lock().iter().map(|r| r.inner.lock().written).sum()
    }

    /// Exports everything recorded so far as a Chrome trace-event JSON
    /// document (the `{"traceEvents": [...]}` object form Perfetto loads).
    pub fn export_chrome_json() -> String {
        let rings = rings().lock();
        let mut out = String::with_capacity(64 * 1024);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(s);
        };
        for (tid, ring) in rings.iter().enumerate() {
            // Thread-name metadata first, so the timeline shows real names.
            let name: String = ring.name.chars().filter(|c| *c != '"' && *c != '\\').collect();
            emit(
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut out,
            );
            let inner = ring.inner.lock();
            let dropped = inner.written.saturating_sub(inner.events.len() as u64);
            if dropped > 0 {
                emit(
                    &format!(
                        "{{\"name\":\"events_dropped\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0,\
                         \"pid\":1,\"tid\":{tid},\"args\":{{\"count\":{dropped}}}}}"
                    ),
                    &mut out,
                );
            }
            // Oldest-first: the ring wraps at `head`.
            let n = inner.events.len();
            let start = if n < RING_CAPACITY { 0 } else { inner.head };
            for i in 0..n {
                let ev = inner.events[(start + i) % n];
                let ts = ev.ts_ns as f64 / 1e3; // Chrome wants microseconds
                let name = ev.kind.name();
                let cat = ev.kind.category();
                let line = if ev.kind.is_span() {
                    let dur = ev.dur_ns as f64 / 1e3;
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts:.3},\
                         \"dur\":{dur:.3},\"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                        ev.arg
                    )
                } else {
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{ts:.3},\"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                        ev.arg
                    )
                };
                emit(&line, &mut out);
            }
        }
        out.push_str("]}");
        out
    }

    #[cfg(test)]
    pub(super) fn ring_capacity() -> usize {
        RING_CAPACITY
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    //! The compiled-out variant: every entry point is an empty inline
    //! function, so instrumented call sites cost nothing at all.
    use super::EventKind;
    use std::time::Instant;

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    #[inline(always)]
    pub fn instant(_kind: EventKind, _arg: u64) {}

    #[inline(always)]
    pub fn span_since(_kind: EventKind, _arg: u64, _start: Instant) {}

    #[inline(always)]
    pub fn events_recorded() -> u64 {
        0
    }

    pub fn export_chrome_json() -> String {
        "{\"traceEvents\":[]}".to_owned()
    }
}

pub use imp::{enabled, events_recorded, export_chrome_json, instant, set_enabled, span_since};

/// A span guard: captures the start time on construction (only when tracing
/// is enabled) and emits the span on [`Span::end`] or drop.
///
/// # Examples
///
/// ```
/// use doppel_telemetry::trace::{self, EventKind};
///
/// {
///     let _span = trace::Span::start(EventKind::Reconcile, 3);
///     // ... the work being traced ...
/// } // span emitted here (if tracing is enabled)
/// ```
pub struct Span {
    kind: EventKind,
    arg: u64,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span. When tracing is disabled this does not read the clock.
    #[inline]
    pub fn start(kind: EventKind, arg: u64) -> Span {
        let start = if enabled() { Some(Instant::now()) } else { None };
        Span { kind, arg, start }
    }

    /// Ends the span now (equivalent to dropping it).
    #[inline]
    pub fn end(self) {}
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            span_since(self.kind, self.arg, start);
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::time::Duration;

    // The trace switch is process-global, so every test touching it runs
    // under this lock (cargo runs tests in one process, many threads).
    fn guard() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        LOCK.lock()
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        let before = events_recorded();
        for _ in 0..64 {
            instant(EventKind::TxnCommit, 1);
            span_since(EventKind::TxnExec, 1, Instant::now());
            Span::start(EventKind::Reconcile, 0).end();
        }
        assert_eq!(events_recorded(), before, "disabled tracing must be a no-op");
    }

    #[test]
    fn records_and_exports_events() {
        let _g = guard();
        set_enabled(true);
        let before = events_recorded();
        instant(EventKind::TxnStash, 7);
        span_since(EventKind::PhaseSplit, 0, Instant::now() - Duration::from_millis(1));
        set_enabled(false);
        assert!(events_recorded() >= before + 2);
        let json = export_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"txn.stash\""), "{json}");
        assert!(json.contains("\"phase.split\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
    }

    #[test]
    fn ring_wraps_keeping_recent_events() {
        let _g = guard();
        // A dedicated thread gets a fresh ring, so the wraparound arithmetic
        // is observable via the total-written counter and the export.
        let cap = imp::ring_capacity() as u64;
        set_enabled(true);
        // Distinctive arg range so other tests' rings cannot collide.
        let base = 9_000_000u64;
        let handle = std::thread::Builder::new()
            .name("trace-wrap-test".into())
            .spawn(move || {
                for i in 0..(cap + 10) {
                    instant(EventKind::TxnCommit, base + i);
                }
            })
            .unwrap();
        handle.join().unwrap();
        set_enabled(false);
        let json = export_chrome_json();
        // The oldest 10 events were overwritten: the first arg is gone, the
        // newest is kept, and the drop marker reports the overwrite.
        assert!(!json.contains(&format!("{{\"arg\":{base}}}")), "oldest event survived wrap");
        assert!(json.contains(&format!("{{\"arg\":{}}}", base + cap + 9)), "newest event missing");
        assert!(json.contains("\"events_dropped\""), "dropped marker missing");
    }
}
