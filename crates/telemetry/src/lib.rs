//! Observability primitives for the Doppel reproduction.
//!
//! The paper's argument is dynamic — throughput and latency depend on *when*
//! phases change, how long reconciliation stalls workers, and how long
//! stashed transactions wait — so the repo needs more than end-of-run counter
//! totals. This crate is the shared observability layer every other crate
//! instruments against:
//!
//! * [`Histogram`] / [`LatencySummary`] — a mergeable log-linear latency
//!   histogram with a fixed 2 KiB bucket footprint, used by the benchmark
//!   harness, the service, the engine and the wire snapshot alike.
//! * [`Registry`] / [`SharedHistogram`] / [`Counter`] / [`Gauge`] — named
//!   always-on metrics, snapshotted as a self-describing
//!   [`MetricsSnapshot`].
//! * [`HeatSketch`] — a lock-free striped sketch of per-key conflict hits,
//!   exposing a top-K hot-key table.
//! * [`trace`] — opt-in per-thread event rings (phase transitions, the
//!   transaction lifecycle, WAL fsyncs, reactor sheds) exported as Chrome
//!   trace-event JSON for Perfetto; compiled out entirely without the
//!   `trace` feature.
//!
//! This crate is a leaf: it depends only on the `serde` and `parking_lot`
//! shims, so `doppel_common` (and through it every engine) can depend on it
//! without cycles.

pub mod heat;
pub mod hist;
pub mod registry;
pub mod trace;

pub use heat::{HeatSketch, HotKey};
pub use hist::{Histogram, LatencySummary};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry, SharedHistogram};
pub use trace::EventKind;
