//! The metrics registry: named counters, gauges and shared histograms plus
//! the conflict heat sketch, snapshotted as one self-describing bundle.
//!
//! A [`Registry`] is cheap enough to exist unconditionally (creating one
//! allocates; recording into it does not), so instrumented subsystems hold
//! an `Arc<Registry>` and record without checking any enable flag — unlike
//! tracing, metrics are always on.

use crate::heat::{HeatSketch, HotKey};
use crate::hist::Histogram;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stripes in a [`SharedHistogram`]: recording locks only the caller's
/// stripe, so per-core recorders never contend with each other.
const HIST_STRIPES: usize = 16;

/// A lock-free monotonic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge (a value that goes up and down).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Padded to a cache line so adjacent stripes never false-share.
#[repr(align(64))]
struct PaddedHist(Mutex<Histogram>);

/// A histogram shared by concurrent recorders, striped per core.
///
/// Each `record` locks one stripe's mutex — uncontended when callers pass
/// distinct core hints (one worker per core is the deployment model here),
/// and held only for a bucket increment either way.
pub struct SharedHistogram {
    stripes: Vec<PaddedHist>,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        SharedHistogram::new()
    }
}

impl SharedHistogram {
    /// Creates an empty shared histogram.
    pub fn new() -> SharedHistogram {
        let mut stripes = Vec::with_capacity(HIST_STRIPES);
        for _ in 0..HIST_STRIPES {
            stripes.push(PaddedHist(Mutex::new(Histogram::new())));
        }
        SharedHistogram { stripes }
    }

    /// Records `latency`, striping by `core` (any value; wrapped mod the
    /// stripe count). Never allocates.
    pub fn record(&self, core: usize, latency: Duration) {
        self.record_ns(core, latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records a nanosecond value, striping by `core`.
    pub fn record_ns(&self, core: usize, ns: u64) {
        self.stripes[core % HIST_STRIPES].0.lock().record_ns(ns);
    }

    /// Merges every stripe into one point-in-time histogram.
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for stripe in &self.stripes {
            out.merge(&stripe.0.lock());
        }
        out
    }
}

/// A named-metric registry: one per instrumented subsystem.
#[derive(Default)]
pub struct Registry {
    hists: RwLock<Vec<(&'static str, Arc<SharedHistogram>)>>,
    counters: RwLock<Vec<(&'static str, Arc<Counter>)>>,
    gauges: RwLock<Vec<(&'static str, Arc<Gauge>)>>,
    heat: HeatSketch,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The histogram named `name`, created on first request. Callers cache
    /// the `Arc` at startup; the registry lock is not on any hot path.
    pub fn histogram(&self, name: &'static str) -> Arc<SharedHistogram> {
        if let Some((_, h)) = self.hists.read().iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let mut hists = self.hists.write();
        if let Some((_, h)) = hists.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(SharedHistogram::new());
        hists.push((name, Arc::clone(&h)));
        h
    }

    /// The counter named `name`, created on first request.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some((_, c)) = self.counters.read().iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let mut counters = self.counters.write();
        if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        counters.push((name, Arc::clone(&c)));
        c
    }

    /// The gauge named `name`, created on first request.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some((_, g)) = self.gauges.read().iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let mut gauges = self.gauges.write();
        if let Some((_, g)) = gauges.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        gauges.push((name, Arc::clone(&g)));
        g
    }

    /// The conflict heat sketch.
    pub fn heat(&self) -> &HeatSketch {
        &self.heat
    }

    /// Snapshots every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hists = self
            .hists
            .read()
            .iter()
            .map(|(n, h)| (n.to_string(), h.snapshot()))
            .collect();
        let mut scalars: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect();
        scalars.extend(self.gauges.read().iter().map(|(n, g)| (n.to_string(), g.get())));
        MetricsSnapshot { scalars, hists, hot_keys: self.heat.top_k(16) }
    }
}

/// A point-in-time copy of a [`Registry`]: named scalar values (counters and
/// gauges flattened together — self-describing by name), named histograms,
/// and the hot-key table.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter and gauge.
    pub scalars: Vec<(String, u64)>,
    /// `(name, histogram)` for every registered histogram.
    pub hists: Vec<(String, Histogram)>,
    /// The hottest keys by recorded conflict hits, descending.
    pub hot_keys: Vec<HotKey>,
}

impl MetricsSnapshot {
    /// The histogram named `name`, when present.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The scalar named `name`, when present.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Merges `other` into this snapshot: histograms with the same name
    /// merge, scalars with the same name add, hot keys concatenate and
    /// re-rank. Used to combine per-subsystem registries into one bundle.
    pub fn absorb(&mut self, other: MetricsSnapshot) {
        for (name, value) in other.scalars {
            match self.scalars.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += value,
                None => self.scalars.push((name, value)),
            }
        }
        for (name, hist) in other.hists {
            match self.hists.iter_mut().find(|(n, _)| *n == name) {
                Some((_, h)) => h.merge(&hist),
                None => self.hists.push((name, hist)),
            }
        }
        self.hot_keys.extend(other.hot_keys);
        self.hot_keys.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.key.cmp(&b.key)));
        self.hot_keys.truncate(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_metrics_are_created_once() {
        let reg = Registry::new();
        let a = reg.histogram("exec");
        let b = reg.histogram("exec");
        assert!(Arc::ptr_eq(&a, &b));
        a.record(0, Duration::from_micros(10));
        b.record(1, Duration::from_micros(30));
        let snap = reg.snapshot();
        let h = snap.hist("exec").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean_us() - 20.0).abs() < 1e-9);

        reg.counter("stashes").add(5);
        reg.counter("stashes").bump();
        reg.gauge("depth").set(42);
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("stashes"), Some(6));
        assert_eq!(snap.scalar("depth"), Some(42));
        assert_eq!(snap.scalar("missing"), None);
    }

    #[test]
    fn shared_histogram_stripes_merge() {
        let h = SharedHistogram::new();
        for core in 0..64 {
            h.record(core, Duration::from_micros(100));
        }
        assert_eq!(h.snapshot().count(), 64);
    }

    #[test]
    fn absorb_combines_subsystem_snapshots() {
        let engine = Registry::new();
        engine.histogram("stash_replay").record(0, Duration::from_micros(500));
        engine.counter("wal_fsyncs").add(3);
        engine.heat().record(7);
        let service = Registry::new();
        service.histogram("exec").record(0, Duration::from_micros(20));
        service.counter("wal_fsyncs").add(2);

        let mut all = engine.snapshot();
        all.absorb(service.snapshot());
        assert_eq!(all.hist("stash_replay").unwrap().count(), 1);
        assert_eq!(all.hist("exec").unwrap().count(), 1);
        assert_eq!(all.scalar("wal_fsyncs"), Some(5));
        assert_eq!(all.hot_keys[0].key, 7);
    }
}
