//! Silo-style optimistic concurrency control.
//!
//! This crate implements the joined-phase commit protocol of the paper
//! (Figure 2), which is "based on that of Silo":
//!
//! 1. lock the records in the write set, in a global key order, aborting if
//!    any is already locked;
//! 2. generate a commit TID locally from per-core state and the TIDs in the
//!    read set;
//! 3. validate the read set, aborting if any record's TID changed or is
//!    locked by another transaction;
//! 4. apply the buffered writes, publishing the commit TID and releasing the
//!    locks.
//!
//! The crate exposes three layers:
//!
//! * [`ReadSet`] / [`WriteSet`] — the per-transaction bookkeeping;
//! * [`protocol::commit`] — the commit protocol itself, reused verbatim by
//!   Doppel's joined and split phases;
//! * [`OccEngine`] / [`OccTx`] — a complete engine implementing the
//!   [`doppel_common::Engine`] interface, used directly as the paper's "OCC"
//!   baseline.
//!
//! Faithful to the paper's baseline, read-modify-write operations such as
//! `Add` or `Max` are executed optimistically as *read + computed write*:
//! "Doppel without split keys and OCC read the value of a key, compute the
//! new value, and try to lock the key and validate that it hasn't changed
//! since it was first read" (§8.2). This is exactly what makes contended
//! counters collapse under OCC — the behaviour phase reconciliation fixes.

pub mod engine;
pub mod protocol;
pub mod rwsets;
pub mod tx;

pub use engine::{OccEngine, OccHandle};
pub use protocol::commit;
pub use rwsets::{ReadSet, WriteSet};
pub use tx::OccTx;
