//! The OCC commit protocol (Figure 2 of the paper).
//!
//! This function is shared: the OCC baseline engine calls it directly, and
//! Doppel calls it for the reconciled (non-split) part of every transaction
//! in both joined and split phases (Figures 2 and 3 differ only in the extra
//! split-write-set application that Doppel performs afterwards).

use crate::rwsets::{ReadSet, WriteSet};
use doppel_common::{CommitSink, LogReceipt, Tid, TidGenerator, TxError};

/// Runs the three-part OCC commit protocol over the given read and write
/// sets, returning the commit TID on success.
///
/// * **Part 1** — lock every write-set record in global key order; abort with
///   [`TxError::LockBusy`] if any is already locked.
/// * **TID generation** — produce a TID larger than every TID observed in the
///   read set and every TID this worker generated before.
/// * **Part 2** — validate the read set: each record must still carry the TID
///   observed at first read and must not be locked by another transaction;
///   abort with [`TxError::Conflict`] otherwise.
/// * **Part 3** — apply the buffered operations, publish the commit TID and
///   release the locks.
///
/// On abort every lock taken in part 1 is released and the store is left
/// untouched.
pub fn commit(
    read_set: &ReadSet,
    write_set: &mut WriteSet,
    tid_gen: &mut TidGenerator,
) -> Result<Tid, TxError> {
    commit_durable(read_set, write_set, tid_gen, None).map(|(tid, _)| tid)
}

/// [`commit`] with write-ahead logging: when `sink` is given, the write set
/// is logged **while the write locks are still held** — after validation and
/// value application, before TID publication — so the log's append order is
/// a valid serialization order (two conflicting transactions cannot log in
/// the opposite order of their TIDs).
pub fn commit_durable(
    read_set: &ReadSet,
    write_set: &mut WriteSet,
    tid_gen: &mut TidGenerator,
    sink: Option<&dyn CommitSink>,
) -> Result<(Tid, LogReceipt), TxError> {
    // Part 1: lock the write set in key order to prevent deadlock.
    write_set.sort();
    let entries = write_set.entries();
    let mut locked = 0usize;
    for entry in entries {
        if entry.record.try_lock() {
            locked += 1;
        } else {
            // Release everything we already locked and abort.
            for e in &entries[..locked] {
                e.record.unlock();
            }
            return Err(TxError::LockBusy { key: entry.key });
        }
    }

    // Generate the commit TID from local state and observed TIDs.
    let commit_tid =
        tid_gen.next_after(read_set.tids().chain(entries.iter().map(|e| e.record.tid())));

    // Part 2: validate the read set.
    for read in read_set.entries() {
        let in_write_set = write_set.contains(&read.key);
        if !read.record.validate(read.tid, in_write_set) {
            for e in write_set.entries() {
                e.record.unlock();
            }
            return Err(TxError::Conflict { key: read.key });
        }
    }

    // Part 3: apply writes, publish the TID, release the locks.
    match sink {
        None => {
            for entry in write_set.entries() {
                if let Err(e) = entry.record.apply_and_unlock(&entry.op, commit_tid) {
                    // A type mismatch surfaced at apply time: the record's
                    // lock has already been released by `apply_and_unlock`;
                    // release the remaining locks and surface the error.
                    // Records already applied stay applied — this mirrors a
                    // partial failure that the paper's model excludes
                    // (procedures are type-checked by construction), but the
                    // library must not deadlock on malformed input.
                    let failed_key = entry.key;
                    for later in write_set.entries() {
                        if later.key != failed_key && later.record.is_locked() {
                            later.record.unlock();
                        }
                    }
                    return Err(e);
                }
            }
            Ok((commit_tid, LogReceipt::default()))
        }
        Some(sink) => {
            // Durable variant: apply while keeping the locks, log the write
            // set, then publish + unlock. Log order therefore matches the
            // serialization order of conflicting transactions.
            for (i, entry) in write_set.entries().iter().enumerate() {
                if let Err(e) = entry.record.apply_locked(&entry.op) {
                    // Nothing was logged: unlock everything and surface the
                    // error (records before `i` keep their applied values,
                    // exactly like the volatile path above).
                    for (j, other) in write_set.entries().iter().enumerate() {
                        if j < i {
                            other.record.publish_and_unlock(commit_tid);
                        } else if other.record.is_locked() {
                            other.record.unlock();
                        }
                    }
                    return Err(e);
                }
            }
            // Log straight out of the write set: rebuilding an owned op list
            // here used to clone every buffered op on every commit attempt.
            let receipt = sink
                .log_commit(commit_tid, &mut write_set.entries().iter().map(|e| (e.key, &e.op)));
            for entry in write_set.entries() {
                entry.record.publish_and_unlock(commit_tid);
            }
            Ok((commit_tid, receipt))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{Key, Op, Tid, Value};
    use doppel_store::Store;
    use std::sync::Arc;

    fn setup() -> (Store, TidGenerator) {
        let s = Store::new(16);
        for i in 0..10 {
            s.load(Key::raw(i), Value::Int(0));
        }
        (s, TidGenerator::new(1))
    }

    #[test]
    fn commit_applies_writes_and_bumps_tids() {
        let (s, mut gen) = setup();
        let r = s.get(&Key::raw(1)).unwrap();
        let mut rs = ReadSet::new();
        let mut ws = WriteSet::new();
        let (tid, _) = r.read_stable().unwrap();
        rs.record(Key::raw(1), &r, tid);
        ws.buffer(Key::raw(1), &r, Op::Put(Value::Int(99)));
        let commit_tid = commit(&rs, &mut ws, &mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(1)), Some(Value::Int(99)));
        assert_eq!(r.tid(), commit_tid);
        assert!(!r.is_locked());
    }

    #[test]
    fn stale_read_aborts() {
        let (s, mut gen) = setup();
        let r = s.get(&Key::raw(1)).unwrap();
        let (tid, _) = r.read_stable().unwrap();

        // Another transaction commits in between.
        let mut other_gen = TidGenerator::new(2);
        let mut ws2 = WriteSet::new();
        ws2.buffer(Key::raw(1), &r, Op::Add(1));
        commit(&ReadSet::new(), &mut ws2, &mut other_gen).unwrap();

        let mut rs = ReadSet::new();
        let mut ws = WriteSet::new();
        rs.record(Key::raw(1), &r, tid);
        ws.buffer(Key::raw(2), &s.get(&Key::raw(2)).unwrap(), Op::Add(1));
        let err = commit(&rs, &mut ws, &mut gen).unwrap_err();
        assert_eq!(err, TxError::Conflict { key: Key::raw(1) });
        // Aborted commit released all locks and left key 2 unchanged.
        assert!(!s.get(&Key::raw(2)).unwrap().is_locked());
        assert_eq!(s.read_unlocked(&Key::raw(2)), Some(Value::Int(0)));
    }

    #[test]
    fn locked_write_target_aborts_and_releases() {
        let (s, mut gen) = setup();
        let r1 = s.get(&Key::raw(1)).unwrap();
        let r2 = s.get(&Key::raw(2)).unwrap();
        // Someone else holds key 2's lock.
        assert!(r2.try_lock());

        let mut ws = WriteSet::new();
        ws.buffer(Key::raw(1), &r1, Op::Add(1));
        ws.buffer(Key::raw(2), &r2, Op::Add(1));
        let err = commit(&ReadSet::new(), &mut ws, &mut gen).unwrap_err();
        assert_eq!(err, TxError::LockBusy { key: Key::raw(2) });
        // Key 1's lock (taken in part 1) was released on abort.
        assert!(!r1.is_locked());
        r2.unlock();
    }

    #[test]
    fn read_own_write_key_validates() {
        let (s, mut gen) = setup();
        let r = s.get(&Key::raw(3)).unwrap();
        let (tid, _) = r.read_stable().unwrap();
        let mut rs = ReadSet::new();
        let mut ws = WriteSet::new();
        rs.record(Key::raw(3), &r, tid);
        // The same key is also written: validation must accept our own lock.
        ws.buffer(Key::raw(3), &r, Op::Add(7));
        commit(&rs, &mut ws, &mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(3)), Some(Value::Int(7)));
    }

    #[test]
    fn commit_tid_exceeds_observed_tids() {
        let (s, _) = setup();
        let r = s.get(&Key::raw(4)).unwrap();
        // Pre-write the record with a high TID from another core.
        r.lock_spin();
        r.apply_and_unlock(&Op::Add(1), Tid::from_parts(1000, 3)).unwrap();

        let mut gen = TidGenerator::new(1);
        let (tid, _) = r.read_stable().unwrap();
        let mut rs = ReadSet::new();
        let mut ws = WriteSet::new();
        rs.record(Key::raw(4), &r, tid);
        ws.buffer(Key::raw(4), &r, Op::Add(1));
        let commit_tid = commit(&rs, &mut ws, &mut gen).unwrap();
        assert!(commit_tid.seq() > 1000);
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let s = Arc::new(Store::new(16));
        s.load(Key::raw(0), Value::Int(0));
        let threads = 4;
        let per_thread = 300;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut gen = TidGenerator::new(t + 1);
                let mut done = 0;
                while done < per_thread {
                    let r = s.get(&Key::raw(0)).unwrap();
                    let Ok((tid, val)) = r.read_stable() else { continue };
                    let cur = val.unwrap().as_int().unwrap();
                    let mut rs = ReadSet::new();
                    let mut ws = WriteSet::new();
                    rs.record(Key::raw(0), &r, tid);
                    ws.buffer(Key::raw(0), &r, Op::Put(Value::Int(cur + 1)));
                    if commit(&rs, &mut ws, &mut gen).is_ok() {
                        done += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            s.read_unlocked(&Key::raw(0)),
            Some(Value::Int((threads * per_thread) as i64))
        );
    }
}
