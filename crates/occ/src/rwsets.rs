//! Per-transaction read and write sets.
//!
//! "A read set and a write set are maintained for each executing transaction.
//! During execution, a transaction buffers its writes and records the TIDs
//! for all values read or written in its read set." (§5.1)
//!
//! Transactions in the paper's workloads touch a handful of records, so both
//! sets are small vectors with linear lookup; this is faster than hashing for
//! the common case and keeps allocation pressure low (sets are reused across
//! transactions via [`ReadSet::clear`] / [`WriteSet::clear`]).

use doppel_common::{Key, Op, Tid};
use doppel_store::Record;
use std::sync::Arc;

/// One read-set entry: the record, and the TID observed when it was first
/// read.
#[derive(Clone, Debug)]
pub struct ReadEntry {
    /// Key of the record (kept for conflict reporting).
    pub key: Key,
    /// The record itself.
    pub record: Arc<Record>,
    /// TID observed at first read; validation checks it is unchanged.
    pub tid: Tid,
}

/// The transaction's read set.
#[derive(Clone, Debug, Default)]
pub struct ReadSet {
    entries: Vec<ReadEntry>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> Self {
        ReadSet { entries: Vec::new() }
    }

    /// Records that `key` was read with TID `tid`. Only the first read of a
    /// key is recorded; later reads of the same key return the buffered
    /// first-read TID, which is the one validation must check.
    pub fn record(&mut self, key: Key, record: &Arc<Record>, tid: Tid) {
        if !self.contains(&key) {
            self.entries.push(ReadEntry { key, record: Arc::clone(record), tid });
        }
    }

    /// The TID recorded for `key`, if the key was read.
    pub fn tid_of(&self, key: &Key) -> Option<Tid> {
        self.entries.iter().find(|e| &e.key == key).map(|e| e.tid)
    }

    /// True if `key` is in the read set.
    pub fn contains(&self, key: &Key) -> bool {
        self.entries.iter().any(|e| &e.key == key)
    }

    /// All entries, for validation.
    pub fn entries(&self) -> &[ReadEntry] {
        &self.entries
    }

    /// All observed TIDs, used for local TID generation.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.entries.iter().map(|e| e.tid)
    }

    /// Number of distinct keys read.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was read.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the set for reuse by the next transaction.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One write-set entry: the record and the operation to apply at commit.
#[derive(Clone, Debug)]
pub struct WriteEntry {
    /// Key of the record (write sets are locked in key order).
    pub key: Key,
    /// The record itself.
    pub record: Arc<Record>,
    /// The buffered operation.
    pub op: Op,
}

/// The transaction's write set. At most one entry exists per key: a second
/// buffered write replaces the first (callers chain the effect themselves,
/// e.g. by reading their own earlier write before computing the new value).
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    entries: Vec<WriteEntry>,
}

impl WriteSet {
    /// Creates an empty write set.
    pub fn new() -> Self {
        WriteSet { entries: Vec::new() }
    }

    /// Buffers `op` against `key`, replacing any previously buffered write to
    /// the same key.
    pub fn buffer(&mut self, key: Key, record: &Arc<Record>, op: Op) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.key == key) {
            existing.op = op;
        } else {
            self.entries.push(WriteEntry { key, record: Arc::clone(record), op });
        }
    }

    /// The buffered operation for `key`, if any.
    pub fn op_for(&self, key: &Key) -> Option<&Op> {
        self.entries.iter().find(|e| &e.key == key).map(|e| &e.op)
    }

    /// True if `key` has a buffered write.
    pub fn contains(&self, key: &Key) -> bool {
        self.entries.iter().any(|e| &e.key == key)
    }

    /// Sorts the entries by key — the global lock order of the commit
    /// protocol. After this call [`WriteSet::entries`] returns them sorted.
    pub fn sort(&mut self) {
        self.entries.sort_by_key(|e| e.key);
    }

    /// Entries sorted by key — the global lock order of the commit protocol.
    pub fn sorted_entries(&mut self) -> &[WriteEntry] {
        self.sort();
        &self.entries
    }

    /// Entries in insertion order.
    pub fn entries(&self) -> &[WriteEntry] {
        &self.entries
    }

    /// Number of distinct keys written.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the set for reuse by the next transaction.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::Value;
    use doppel_store::Store;

    fn store_with(keys: &[u64]) -> Store {
        let s = Store::new(8);
        for &k in keys {
            s.load(Key::raw(k), Value::Int(0));
        }
        s
    }

    #[test]
    fn read_set_records_first_read_only() {
        let s = store_with(&[1]);
        let r = s.get(&Key::raw(1)).unwrap();
        let mut rs = ReadSet::new();
        rs.record(Key::raw(1), &r, Tid::from_parts(5, 0));
        rs.record(Key::raw(1), &r, Tid::from_parts(9, 0));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.tid_of(&Key::raw(1)), Some(Tid::from_parts(5, 0)));
        assert!(rs.contains(&Key::raw(1)));
        assert!(!rs.contains(&Key::raw(2)));
        rs.clear();
        assert!(rs.is_empty());
    }

    #[test]
    fn write_set_replaces_same_key() {
        let s = store_with(&[1, 2]);
        let r1 = s.get(&Key::raw(1)).unwrap();
        let r2 = s.get(&Key::raw(2)).unwrap();
        let mut ws = WriteSet::new();
        ws.buffer(Key::raw(2), &r2, Op::Add(1));
        ws.buffer(Key::raw(1), &r1, Op::Put(Value::Int(10)));
        ws.buffer(Key::raw(1), &r1, Op::Put(Value::Int(20)));
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.op_for(&Key::raw(1)), Some(&Op::Put(Value::Int(20))));
        assert!(ws.contains(&Key::raw(2)));
        // Sorted entries come back in key order.
        let keys: Vec<Key> = ws.sorted_entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![Key::raw(1), Key::raw(2)]);
        ws.clear();
        assert!(ws.is_empty());
    }

    #[test]
    fn read_set_tids_iterator() {
        let s = store_with(&[1, 2, 3]);
        let mut rs = ReadSet::new();
        for (i, k) in [1u64, 2, 3].iter().enumerate() {
            let r = s.get(&Key::raw(*k)).unwrap();
            rs.record(Key::raw(*k), &r, Tid::from_parts(i as u64 + 1, 0));
        }
        let max = rs.tids().max().unwrap();
        assert_eq!(max, Tid::from_parts(3, 0));
        assert_eq!(rs.entries().len(), 3);
    }
}
