//! The OCC transaction context.
//!
//! [`OccTx`] implements the [`Tx`] operation interface on top of a shared
//! [`Store`] using a read set and a buffered write set. Doppel's joined phase
//! behaves identically (§5.1: "A joined phase can execute any transaction …
//! the protocol treats all records the same"), so the Doppel engine reuses
//! this type for its non-split accesses.

use crate::rwsets::{ReadSet, WriteSet};
use doppel_common::{CoreId, Key, Op, OpKind, Tid, TxError, Value};
use doppel_store::{Record, RecordReadError, Store};
use std::sync::Arc;

/// A running optimistic transaction.
///
/// Reads take consistent `(TID, value)` snapshots and are recorded in the
/// read set; writes are buffered. Read-modify-write operations (`Add`, `Max`,
/// …) are expanded into a read of the current value plus a buffered `Put` of
/// the computed result, exactly as the paper's OCC baseline executes them
/// (§8.2) — which is why they conflict under contention.
pub struct OccTx<'s> {
    store: &'s Store,
    core: CoreId,
    read_set: ReadSet,
    write_set: WriteSet,
}

impl<'s> OccTx<'s> {
    /// Starts a transaction against `store` on worker `core`.
    pub fn new(store: &'s Store, core: CoreId) -> Self {
        Self::from_parts(store, core, ReadSet::new(), WriteSet::new())
    }

    /// Starts a transaction reusing previously allocated set buffers.
    ///
    /// Engine handles keep a `(ReadSet, WriteSet)` scratch pair alive across
    /// transactions (recovered via [`OccTx::into_sets`]) so the per-txn hot
    /// path performs no set allocation. Both sets are cleared here, so handing
    /// in dirty buffers is fine.
    pub fn from_parts(
        store: &'s Store,
        core: CoreId,
        mut read_set: ReadSet,
        mut write_set: WriteSet,
    ) -> Self {
        read_set.clear();
        write_set.clear();
        OccTx { store, core, read_set, write_set }
    }

    /// The read set accumulated so far (used by Doppel's commit path).
    pub fn read_set(&self) -> &ReadSet {
        &self.read_set
    }

    /// The write set accumulated so far (used by Doppel's commit path).
    pub fn write_set_mut(&mut self) -> &mut WriteSet {
        &mut self.write_set
    }

    /// Splits the transaction into its read and write sets, consuming it.
    pub fn into_sets(self) -> (ReadSet, WriteSet) {
        (self.read_set, self.write_set)
    }

    /// Resets the transaction for reuse (clears both sets).
    pub fn reset(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
    }

    /// Reads `key` through the read set, observing earlier writes buffered by
    /// this same transaction (read-your-writes).
    fn tracked_read(&mut self, key: Key) -> Result<Option<Value>, TxError> {
        let record: Arc<Record> = self.store.get_or_create(key);
        let (tid, committed) = match record.read_stable() {
            Ok(snapshot) => snapshot,
            Err(RecordReadError::Locked) => {
                // The paper's OCC aborts when it encounters a locked item and
                // retries the transaction later (§8.1).
                return Err(TxError::LockBusy { key });
            }
        };
        // Record only the first read of a key: validation must check the TID
        // observed then. If the committed value changed since the first read,
        // this returns the newer value, but commit-time validation will abort
        // the transaction anyway (standard OCC behaviour).
        self.read_set.record(key, &record, tid);
        let base = committed;
        // Apply our own buffered write, if any, so the transaction sees its
        // own effects.
        match self.write_set.op_for(&key) {
            Some(op) => Ok(Some(op.apply_to(base.as_ref())?)),
            None => Ok(base),
        }
    }

    /// Buffers a write. Every operation other than a blind `Put` first reads
    /// the record (joining the read set) and buffers the computed result.
    fn tracked_write(&mut self, key: Key, op: Op) -> Result<(), TxError> {
        let record = self.store.get_or_create(key);
        match op.kind() {
            OpKind::Put => {
                self.write_set.buffer(key, &record, op);
                Ok(())
            }
            _ => {
                // Read-modify-write expansion: read current value (validated
                // at commit), compute, buffer the result as a Put.
                let current = self.tracked_read(key)?;
                let new = op.apply_to(current.as_ref())?;
                self.write_set.buffer(key, &record, Op::Put(new));
                Ok(())
            }
        }
    }

    /// Runs the commit protocol (Figure 2) over the accumulated sets.
    pub fn commit(&mut self, tid_gen: &mut doppel_common::TidGenerator) -> Result<Tid, TxError> {
        crate::protocol::commit(&self.read_set, &mut self.write_set, tid_gen)
    }

    /// [`OccTx::commit`] with write-ahead logging: the committed write set is
    /// appended to `sink` while the record locks are held.
    pub fn commit_durable(
        &mut self,
        tid_gen: &mut doppel_common::TidGenerator,
        sink: Option<&dyn doppel_common::CommitSink>,
    ) -> Result<(Tid, doppel_common::LogReceipt), TxError> {
        crate::protocol::commit_durable(&self.read_set, &mut self.write_set, tid_gen, sink)
    }
}

impl doppel_common::Tx for OccTx<'_> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn get(&mut self, k: Key) -> Result<Option<Value>, TxError> {
        self.tracked_read(k)
    }

    fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
        self.tracked_write(k, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{TidGenerator, Tx};

    fn setup() -> (Store, TidGenerator) {
        let s = Store::new(16);
        for i in 0..10 {
            s.load(Key::raw(i), Value::Int(i as i64 * 10));
        }
        (s, TidGenerator::new(0))
    }

    #[test]
    fn read_your_writes_with_put() {
        let (s, mut gen) = setup();
        let mut tx = OccTx::new(&s, 0);
        assert_eq!(tx.get(Key::raw(1)).unwrap(), Some(Value::Int(10)));
        tx.put(Key::raw(1), Value::Int(77)).unwrap();
        assert_eq!(tx.get(Key::raw(1)).unwrap(), Some(Value::Int(77)));
        tx.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(1)), Some(Value::Int(77)));
    }

    #[test]
    fn read_your_writes_with_add() {
        let (s, mut gen) = setup();
        let mut tx = OccTx::new(&s, 0);
        tx.add(Key::raw(2), 5).unwrap();
        // The buffered computed value is visible to this transaction.
        assert_eq!(tx.get(Key::raw(2)).unwrap(), Some(Value::Int(25)));
        tx.add(Key::raw(2), 5).unwrap();
        tx.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(2)), Some(Value::Int(30)));
    }

    #[test]
    fn rmw_ops_join_the_read_set() {
        let (s, _) = setup();
        let mut tx = OccTx::new(&s, 0);
        tx.add(Key::raw(3), 1).unwrap();
        assert!(tx.read_set().contains(&Key::raw(3)), "Add must validate its read");
        let mut tx2 = OccTx::new(&s, 0);
        tx2.put(Key::raw(3), Value::Int(0)).unwrap();
        assert!(!tx2.read_set().contains(&Key::raw(3)), "blind Put must not read");
    }

    #[test]
    fn conflicting_increment_aborts_one_side() {
        let (s, mut gen_a) = setup();
        let mut gen_b = TidGenerator::new(1);

        let mut a = OccTx::new(&s, 0);
        let mut b = OccTx::new(&s, 1);
        a.add(Key::raw(4), 1).unwrap();
        b.add(Key::raw(4), 1).unwrap();
        a.commit(&mut gen_a).unwrap();
        let err = b.commit(&mut gen_b).unwrap_err();
        assert_eq!(err, TxError::Conflict { key: Key::raw(4) });
        assert_eq!(s.read_unlocked(&Key::raw(4)), Some(Value::Int(41)));
    }

    #[test]
    fn missing_keys_read_as_none_and_can_be_inserted() {
        let (s, mut gen) = setup();
        let mut tx = OccTx::new(&s, 0);
        assert_eq!(tx.get(Key::raw(100)).unwrap(), None);
        tx.put(Key::raw(100), Value::from("row")).unwrap();
        tx.commit(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(100)), Some(Value::from("row")));
    }

    #[test]
    fn insert_read_conflict_detected() {
        // A reader that saw "absent" must abort if someone inserts the key
        // before it commits (anti-insert validation).
        let (s, mut gen_a) = setup();
        let mut gen_b = TidGenerator::new(1);
        let mut reader = OccTx::new(&s, 0);
        assert_eq!(reader.get(Key::raw(200)).unwrap(), None);
        reader.put(Key::raw(201), Value::Int(1)).unwrap();

        let mut writer = OccTx::new(&s, 1);
        writer.put(Key::raw(200), Value::Int(9)).unwrap();
        writer.commit(&mut gen_b).unwrap();

        let err = reader.commit(&mut gen_a).unwrap_err();
        assert_eq!(err, TxError::Conflict { key: Key::raw(200) });
    }

    #[test]
    fn locked_record_aborts_read_immediately() {
        let (s, _) = setup();
        let r = s.get(&Key::raw(5)).unwrap();
        assert!(r.try_lock());
        let mut tx = OccTx::new(&s, 0);
        let err = tx.get(Key::raw(5)).unwrap_err();
        assert_eq!(err, TxError::LockBusy { key: Key::raw(5) });
        r.unlock();
    }

    #[test]
    fn reset_clears_state() {
        let (s, _) = setup();
        let mut tx = OccTx::new(&s, 0);
        tx.add(Key::raw(1), 1).unwrap();
        tx.reset();
        assert!(tx.read_set().is_empty());
        assert_eq!(tx.write_set_mut().len(), 0);
    }

    #[test]
    fn type_error_propagates_from_rmw() {
        let (s, _) = setup();
        s.load(Key::raw(50), Value::from("text"));
        let mut tx = OccTx::new(&s, 0);
        let err = tx.add(Key::raw(50), 1).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
    }
}
