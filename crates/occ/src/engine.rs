//! The OCC baseline engine.
//!
//! This is the paper's "OCC" comparison point: plain Silo-style optimistic
//! concurrency control with no phases and no split data. Doppel degenerates
//! to exactly this behaviour when nothing is contended.

use crate::rwsets::{ReadSet, WriteSet};
use crate::tx::OccTx;
use doppel_common::{
    CommitSink, Completion, CoreId, Engine, EngineStats, Key, Outcome, Procedure, StatsSnapshot,
    TidGenerator, TxError, TxHandle, Value,
};
use doppel_store::Store;
use parking_lot::RwLock;
use std::sync::Arc;

/// The engine-side half of commit-hook plumbing, shared by the baseline
/// engines: a sink cell handles read on every commit (a cheap read lock) so
/// attaching durability requires no handle rebuild.
type SinkCell = Arc<RwLock<Option<Arc<dyn CommitSink>>>>;

/// Shared state of the OCC engine.
pub struct OccEngine {
    store: Arc<Store>,
    stats: Arc<EngineStats>,
    sink: SinkCell,
    workers: usize,
}

impl OccEngine {
    /// Creates an engine with `workers` workers and `shards` store shards.
    pub fn new(workers: usize, shards: usize) -> Self {
        OccEngine {
            store: Arc::new(Store::new(shards)),
            stats: Arc::new(EngineStats::new()),
            sink: Arc::new(RwLock::new(None)),
            workers,
        }
    }

    /// The underlying store (for tests and invariant checks).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

impl Engine for OccEngine {
    fn name(&self) -> &'static str {
        "OCC"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn handle(&self, core: CoreId) -> Box<dyn TxHandle> {
        assert!(core < self.workers, "core {core} out of range (workers = {})", self.workers);
        Box::new(OccHandle {
            core,
            store: Arc::clone(&self.store),
            stats: Arc::clone(&self.stats),
            // Captured once: per-commit sink-cell reads would put a shared
            // atomic RMW in every worker's commit path (this is why attach
            // must precede handle creation).
            sink: self.sink.read().clone(),
            tid_gen: TidGenerator::new(core),
            scratch: (ReadSet::new(), WriteSet::new()),
        })
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn global_get(&self, k: Key) -> Option<Value> {
        self.store.read_unlocked(&k)
    }

    fn load(&self, k: Key, v: Value) {
        self.store.load(k, v);
    }

    fn attach_commit_sink(&self, sink: Arc<dyn CommitSink>) {
        *self.sink.write() = Some(sink);
    }

    fn for_each_record(&self, f: &mut dyn FnMut(Key, &Value)) {
        self.store.for_each(|k, r| {
            if let Some(v) = r.read_unlocked() {
                f(*k, &v);
            }
        });
    }

    fn note_recovered(&self, records: u64) {
        EngineStats::add(&self.stats.recovered_txns, records);
    }

    fn shutdown(&self) {
        // Make everything logged so far durable before the engine goes away.
        if let Some(sink) = self.sink.read().as_ref() {
            self.stats.absorb_log(&sink.sync());
        }
    }
}

/// Per-worker OCC execution handle.
pub struct OccHandle {
    core: CoreId,
    store: Arc<Store>,
    stats: Arc<EngineStats>,
    sink: Option<Arc<dyn CommitSink>>,
    tid_gen: TidGenerator,
    /// Read/write set buffers reused across transactions: a transaction takes
    /// them via [`OccTx::from_parts`] and hands them back via
    /// [`OccTx::into_sets`], so steady-state execution allocates no set
    /// storage per transaction.
    scratch: (ReadSet, WriteSet),
}

impl OccHandle {
    fn run_once(&mut self, proc: &dyn Procedure) -> Outcome {
        let (rs, ws) = std::mem::take(&mut self.scratch);
        let mut tx = OccTx::from_parts(&self.store, self.core, rs, ws);
        let outcome = match proc.run(&mut tx) {
            Ok(()) => match tx.commit_durable(&mut self.tid_gen, self.sink.as_deref()) {
                Ok((tid, receipt)) => {
                    self.stats.absorb_log(&receipt);
                    EngineStats::bump(&self.stats.commits);
                    Outcome::Committed(tid)
                }
                Err(e) => {
                    EngineStats::bump(&self.stats.conflicts);
                    Outcome::Aborted(e)
                }
            },
            Err(e) => {
                match &e {
                    TxError::UserAbort { .. } => EngineStats::bump(&self.stats.user_aborts),
                    _ => EngineStats::bump(&self.stats.conflicts),
                }
                Outcome::Aborted(e)
            }
        };
        // Recover the buffers and clear them immediately so pooled
        // `Arc<Record>` handles don't keep records alive between transactions.
        let (mut rs, mut ws) = tx.into_sets();
        rs.clear();
        ws.clear();
        self.scratch = (rs, ws);
        outcome
    }
}

impl TxHandle for OccHandle {
    fn core(&self) -> CoreId {
        self.core
    }

    fn execute(&mut self, proc: Arc<dyn Procedure>) -> Outcome {
        self.run_once(proc.as_ref())
    }

    fn safepoint(&mut self) {
        // OCC has no phases; nothing to do.
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::ProcedureFn;

    #[test]
    fn engine_executes_and_counts() {
        let engine = OccEngine::new(2, 16);
        engine.load(Key::raw(1), Value::Int(0));
        let mut h = engine.handle(0);
        let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
        for _ in 0..10 {
            assert!(h.execute(proc.clone()).is_committed());
        }
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(10)));
        let stats = engine.stats();
        assert_eq!(stats.commits, 10);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(engine.name(), "OCC");
        assert_eq!(engine.workers(), 2);
    }

    #[test]
    fn user_abort_is_counted_separately() {
        let engine = OccEngine::new(1, 4);
        let mut h = engine.handle(0);
        let proc = Arc::new(ProcedureFn::new("fail", |_tx| {
            Err(TxError::UserAbort { reason: "business rule" })
        }));
        let out = h.execute(proc);
        assert!(matches!(out, Outcome::Aborted(TxError::UserAbort { .. })));
        assert_eq!(engine.stats().user_aborts, 1);
        assert_eq!(engine.stats().commits, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let engine = OccEngine::new(1, 4);
        let _ = engine.handle(5);
    }

    #[test]
    fn concurrent_workers_preserve_counter_total() {
        let engine = Arc::new(OccEngine::new(4, 16));
        engine.load(Key::raw(9), Value::Int(0));
        let per_worker = 500;
        let mut handles = Vec::new();
        for core in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut h = engine.handle(core);
                let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(9), 1)));
                let mut committed = 0;
                while committed < per_worker {
                    if h.execute(proc.clone()).is_committed() {
                        committed += 1;
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(engine.global_get(Key::raw(9)), Some(Value::Int(4 * per_worker)));
        let stats = engine.stats();
        assert_eq!(stats.commits, 4 * per_worker as u64);
    }
}
