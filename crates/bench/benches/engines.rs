//! Criterion benchmarks comparing the per-transaction cost of the four
//! engines on single-worker streams (no contention — the contended,
//! multi-worker comparisons are what the `fig*` experiment binaries measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doppel_bench::engines::{build_engine, EngineKind, EngineParams};
use doppel_common::{Key, ProcedureFn, Value};
use std::sync::Arc;

fn bench_single_worker_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/uncontended_increment");
    for kind in EngineKind::ALL {
        let params = EngineParams { workers: 1, ..EngineParams::default() };
        let engine = build_engine(*kind, &params);
        for k in 0..10_000u64 {
            engine.load(Key::raw(k), Value::Int(0));
        }
        let mut handle = engine.handle(0);
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                i = (i + 1) % 10_000;
                let key = Key::raw(i);
                let proc = Arc::new(ProcedureFn::new("incr", move |tx| tx.add(key, 1)));
                assert!(handle.execute(proc).is_committed());
            })
        });
        drop(handle);
        engine.shutdown();
    }
    group.finish();
}

fn bench_multi_key_transaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/five_key_transaction");
    for kind in EngineKind::TRANSACTIONAL {
        let params = EngineParams { workers: 1, ..EngineParams::default() };
        let engine = build_engine(*kind, &params);
        for k in 0..10_000u64 {
            engine.load(Key::raw(k), Value::Int(0));
        }
        let mut handle = engine.handle(0);
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                i += 1;
                let base = (i * 5) % 9_000;
                let proc = Arc::new(ProcedureFn::new("multi", move |tx| {
                    for j in 0..4 {
                        tx.add(Key::raw(base + j), 1)?;
                    }
                    let total = tx.get_int(Key::raw(base))?;
                    tx.put(Key::raw(base + 4), Value::Int(total))
                }));
                assert!(handle.execute(proc).is_committed());
            })
        });
        drop(handle);
        engine.shutdown();
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_worker_increment, bench_multi_key_transaction
);
criterion_main!(benches);
