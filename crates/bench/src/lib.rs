//! Shared infrastructure for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§8). They share:
//!
//! * [`args::Args`] — a small `--flag value` command-line parser (the paper's
//!   full-scale parameters are requested with `--full`; the defaults are
//!   laptop-scale so every experiment finishes in seconds);
//! * [`engines`] — construction of the four engines (Doppel, OCC, 2PL,
//!   Atomic) behind the common [`doppel_common::Engine`] interface;
//! * [`experiment`] — helpers to run one `(engine, workload)` point through
//!   the [`doppel_workloads::Driver`] and to sample Doppel's split-key state
//!   while a run is in progress (needed by Table 2 and Figure 10).

pub mod args;
pub mod engines;
pub mod experiment;
pub mod output;

/// The workspace's one `#[global_allocator]` registration. Every experiment
/// binary — and the root integration tests, which link this crate — runs
/// under [`doppel_common::CountingAlloc`], so the `alloc_*` report columns
/// and the allocation-discipline tests observe real counts. A binary admits
/// exactly one global allocator: do not register another elsewhere.
#[global_allocator]
static GLOBAL_ALLOC: doppel_common::CountingAlloc = doppel_common::CountingAlloc;

pub use args::Args;
pub use engines::{build_engine, EngineKind};
pub use experiment::{run_point, sample_during_run, ExperimentConfig, SampledRun};
pub use output::emit;
