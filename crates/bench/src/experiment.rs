//! Helpers for running experiment points.

use crate::engines::{build_engine, EngineKind, EngineParams};
use doppel_common::Engine;
use doppel_db::DoppelDb;
use doppel_workloads::driver::{BenchOptions, BenchResult, Driver, Workload};
use std::time::{Duration, Instant};

/// Parameters common to all experiment binaries, resolved from command-line
/// arguments by each binary.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Worker threads per engine ("cores" in the paper; 20 for most paper
    /// figures).
    pub cores: usize,
    /// Measurement seconds per data point (20 s in the paper).
    pub seconds: f64,
    /// Number of keys for the microbenchmarks (1 M in the paper).
    pub keys: u64,
    /// Doppel phase length.
    pub phase_len: Duration,
    /// Store shards.
    pub shards: usize,
}

impl ExperimentConfig {
    /// Laptop-scale defaults so every experiment completes in seconds. The
    /// `--full` flag of each binary switches to the paper-scale parameters.
    pub fn quick() -> Self {
        ExperimentConfig {
            cores: 4,
            seconds: 0.4,
            keys: 100_000,
            phase_len: Duration::from_millis(20),
            shards: 1024,
        }
    }

    /// Paper-scale parameters (§8.1): 20 cores, 20-second runs, 1 M keys.
    pub fn paper() -> Self {
        ExperimentConfig {
            cores: 20,
            seconds: 20.0,
            keys: 1_000_000,
            phase_len: Duration::from_millis(20),
            shards: 4096,
        }
    }

    /// Resolves the configuration from parsed arguments: `--full` selects the
    /// paper scale, and individual flags override single values.
    pub fn from_args(args: &crate::args::Args) -> Self {
        let base = if args.flag("full") { Self::paper() } else { Self::quick() };
        ExperimentConfig {
            cores: args.get_usize("cores", base.cores),
            seconds: args.get_f64("seconds", base.seconds),
            keys: args.get_u64("keys", base.keys),
            phase_len: Duration::from_secs_f64(
                args.get_f64("phase-ms", base.phase_len.as_secs_f64() * 1e3) / 1e3,
            ),
            shards: args.get_usize("shards", base.shards),
        }
    }

    /// Engine construction parameters derived from this configuration.
    pub fn engine_params(&self) -> EngineParams {
        EngineParams {
            workers: self.cores,
            shards: self.shards,
            phase_len: self.phase_len,
            disable_splitting: false,
        }
    }

    /// The benchmark options derived from this configuration.
    pub fn bench_options(&self) -> BenchOptions {
        BenchOptions::new(self.cores, Duration::from_secs_f64(self.seconds))
    }
}

/// Runs one `(engine kind, workload)` point: builds a fresh engine, loads the
/// workload, measures, shuts the engine down and returns the result.
pub fn run_point(kind: EngineKind, workload: &dyn Workload, config: &ExperimentConfig) -> BenchResult {
    let engine = build_engine(kind, &config.engine_params());
    let result = Driver::run(engine.as_ref(), workload, &config.bench_options());
    engine.shutdown();
    result
}

/// A run with time-series samples collected while it was executing, used by
/// the Figure 10 (throughput over time) and Table 2 (how many keys Doppel
/// splits) experiments.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// The aggregate result.
    pub result: BenchResult,
    /// `(elapsed seconds, committed transactions so far)` samples.
    pub commit_samples: Vec<(f64, u64)>,
    /// `(elapsed seconds, number of split records)` samples (Doppel only;
    /// empty for other engines).
    pub split_samples: Vec<(f64, usize)>,
    /// The largest set of split keys observed at any sample point (Doppel
    /// only).
    pub max_split_keys: Vec<doppel_common::Key>,
}

/// Runs a Doppel (or other) engine point while sampling commit counts and
/// split-key state every `sample_every`.
///
/// When `kind` is [`EngineKind::Doppel`] the engine is built concretely so
/// the sampler can also read the classifier's current split keys; other
/// engines only produce commit-count samples.
pub fn sample_during_run(
    kind: EngineKind,
    workload: &dyn Workload,
    config: &ExperimentConfig,
    sample_every: Duration,
) -> SampledRun {
    match kind {
        EngineKind::Doppel => {
            let db = DoppelDb::start(doppel_common::DoppelConfig {
                workers: config.cores,
                store_shards: config.shards,
                phase_len: config.phase_len,
                ..Default::default()
            });
            let run = sample_impl(&db, Some(&db), workload, config, sample_every);
            db.shutdown();
            run
        }
        other => {
            let engine = build_engine(other, &config.engine_params());
            let run = sample_impl(engine.as_ref(), None, workload, config, sample_every);
            engine.shutdown();
            run
        }
    }
}

fn sample_impl(
    engine: &dyn Engine,
    doppel: Option<&DoppelDb>,
    workload: &dyn Workload,
    config: &ExperimentConfig,
    sample_every: Duration,
) -> SampledRun {
    let mut commit_samples = Vec::new();
    let mut split_samples = Vec::new();
    let mut max_split_keys: Vec<doppel_common::Key> = Vec::new();
    let started = Instant::now();

    let result = std::thread::scope(|scope| {
        let options = config.bench_options();
        let runner = scope.spawn(move || Driver::run(engine, workload, &options));
        // Sample until the measurement thread finishes.
        loop {
            std::thread::sleep(sample_every);
            let elapsed = started.elapsed().as_secs_f64();
            commit_samples.push((elapsed, engine.stats().commits));
            if let Some(db) = doppel {
                let keys = db.split_keys();
                split_samples.push((elapsed, keys.len()));
                if keys.len() > max_split_keys.len() {
                    max_split_keys = keys.into_iter().map(|(k, _)| k).collect();
                }
            }
            if runner.is_finished() {
                break;
            }
        }
        runner.join().expect("measurement thread panicked")
    });
    SampledRun { result, commit_samples, split_samples, max_split_keys }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use doppel_workloads::incr::Incr1Workload;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            cores: 2,
            seconds: 0.08,
            keys: 64,
            phase_len: Duration::from_millis(5),
            shards: 64,
        }
    }

    #[test]
    fn config_from_args() {
        let quick = ExperimentConfig::from_args(&Args::parse(Vec::<String>::new()));
        assert_eq!(quick.cores, ExperimentConfig::quick().cores);
        let full = ExperimentConfig::from_args(&Args::parse(
            ["--full".to_string(), "--cores".into(), "8".into()].into_iter().collect::<Vec<_>>(),
        ));
        assert_eq!(full.cores, 8);
        assert_eq!(full.keys, ExperimentConfig::paper().keys);
        let custom = ExperimentConfig::from_args(&Args::parse(
            ["--phase-ms".to_string(), "5".into()].into_iter().collect::<Vec<_>>(),
        ));
        assert_eq!(custom.phase_len, Duration::from_millis(5));
    }

    #[test]
    fn run_point_works_for_all_engines() {
        let config = tiny_config();
        let workload = Incr1Workload::new(config.keys, 0.5);
        for kind in EngineKind::ALL {
            let result = run_point(*kind, &workload, &config);
            assert!(result.committed > 0, "{kind:?} committed nothing");
            assert_eq!(result.workers, 2);
        }
    }

    #[test]
    fn sampled_run_collects_time_series() {
        let config = tiny_config();
        let workload = Incr1Workload::new(config.keys, 1.0);
        let sampled =
            sample_during_run(EngineKind::Occ, &workload, &config, Duration::from_millis(20));
        assert!(sampled.result.committed > 0);
        assert!(!sampled.commit_samples.is_empty());
        // Commit samples are monotonically non-decreasing.
        for pair in sampled.commit_samples.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }
}
