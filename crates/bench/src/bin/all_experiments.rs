//! Runs every experiment binary in sequence with shared settings.
//!
//! This is the one-command reproduction of the paper's evaluation section:
//! each child binary prints its table and, when `--out DIR` is given, writes
//! `DIR/<experiment>.{txt,json}`.
//!
//! Run with `--help` (`cargo run --release --bin all_experiments -- --help`)
//! for the full flag list.

use std::process::Command;

/// The experiments, in the order they appear in the paper, plus the
/// beyond-the-paper `scenarios` suite (new splittable operations), the
/// `recovery` durability suite (write-ahead logging + crash recovery), the
/// `service` suite (open-loop latency vs offered load through the
/// transaction service), the `rubis_service` suite (the RUBiS bidding mix
/// over TCP via registered-procedure invocations), the `connections`
/// suite (connection scaling of the reactor vs thread-per-connection
/// front-ends), the `shards` suite (scale-out throughput through the
/// shard router: commutative fast path vs forced two-phase commit) and the
/// `adaptive` suite (tuner-learned split labels vs an oracle labelling on
/// a migrating hot set).
const EXPERIMENTS: &[&str] = &[
    "fig8", "fig9", "fig10", "fig11", "table1", "table2", "fig12", "table3", "fig13", "fig14",
    "table4", "fig15", "ablation", "scenarios", "recovery", "service", "rubis_service",
    "connections", "shards", "adaptive",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    if forwarded.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "all_experiments: run every figure/table binary in sequence with shared settings\n\n\
             Usage: all_experiments [FLAGS]\n\nFlags (forwarded to each experiment):"
        );
        for (_, line) in doppel_bench::args::COMMON_FLAGS {
            println!("{line}");
        }
        println!("  --help           print this message");
        return;
    }
    let current = std::env::current_exe().expect("cannot locate current executable");
    let bin_dir = current.parent().expect("executable has a parent directory").to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n=============================================================");
        println!("== Running {name}");
        println!("=============================================================");
        let path = bin_dir.join(name);
        let status = Command::new(&path).args(&forwarded).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("experiment {name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "could not run {} ({e}); build the binaries first with \
                     `cargo build --release -p doppel-bench --bins`",
                    path.display()
                );
                failures.push(*name);
            }
        }
    }

    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
