//! Figure 12: LIKE benchmark throughput as a function of the fraction of
//! transactions that write, with Zipfian page popularity (α = 1.4), for
//! Doppel, OCC and 2PL.
//!
//! Run with `--help` (`cargo run --release --bin fig12 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::like::LikeWorkload;
use doppel_workloads::report::{Cell, Table};

fn main() {
    let args = Args::from_env_or_usage(
        "Figure 12: LIKE throughput vs write fraction (Zipfian pages, alpha = 1.4)",
        &["  --alpha A        Zipf skew of page popularity"],
    );
    let config = ExperimentConfig::from_args(&args);
    let alpha = args.get_f64("alpha", 1.4);
    let write_percentages: Vec<u64> = if args.flag("full") {
        vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    } else {
        vec![0, 20, 50, 80, 100]
    };
    // The paper's LIKE database has 1M users and 1M pages; reuse --keys for
    // both table sizes.
    let users = config.keys;
    let pages = config.keys;

    let mut table = Table::new(
        format!(
            "Figure 12: LIKE throughput (txns/sec) vs % write transactions (alpha={alpha}, {} \
             cores, {} users/pages, {:.1}s per point)",
            config.cores, users, config.seconds
        ),
        &["write%", "Doppel", "OCC", "2PL"],
    );

    for write_pct in &write_percentages {
        let workload = LikeWorkload::new(users, pages, *write_pct as f64 / 100.0, alpha);
        let mut row: Vec<Cell> = vec![Cell::Int(*write_pct as i64)];
        for kind in EngineKind::TRANSACTIONAL {
            let result = run_point(*kind, &workload, &config);
            eprintln!(
                "  writes={write_pct}% {}: {:.0} txns/sec ({} stashed)",
                kind.label(),
                result.throughput,
                result.stashed
            );
            row.push(Cell::Mtps(result.throughput));
        }
        table.push_row(row);
    }

    emit(&table, "fig12", &args);
}
