//! Figure 10: throughput over time on INCR1 when 10% of transactions
//! increment a hot key whose identity changes periodically (every 5 s in the
//! paper). Shows how quickly Doppel's classifier adapts: throughput dips when
//! the hot key moves, then recovers once the new key is split.
//!
//! Run with `--help` (`cargo run --release --bin fig10 -- --help`)
//! for the full flag list.
//!
//! `--hot` sets the fraction of transactions that write the rotating hot key
//! (0.10 in the paper). On hosts with few physical cores a higher fraction
//! (e.g. `--hot 0.9`) makes the adaptation dips easier to see, because 10%
//! contention on a couple of time-sliced threads is not enough for the
//! classifier to split anything.

use doppel_bench::{emit, sample_during_run, Args, EngineKind, ExperimentConfig};
use doppel_workloads::incr::Incr1Workload;
use doppel_workloads::report::{Cell, Table};
use std::time::Duration;

fn main() {
    let args = Args::from_env_or_usage(
        "Figure 10: INCR1 throughput over time as the hot key rotates",
        &[
            "  --rotate-secs S  rotate the hot key every S seconds",
            "  --hot F          fraction of transactions writing the hot key",
        ],
    );
    let mut config = ExperimentConfig::from_args(&args);
    // The paper runs ~90 s with a 5 s rotation; the quick configuration
    // compresses both so the adaptation is still visible.
    if !args.flag("full") && args.get("seconds").is_none() {
        config.seconds = 3.0;
    }
    let rotate = Duration::from_secs_f64(
        args.get_f64("rotate-secs", if args.flag("full") { 5.0 } else { 0.5 }),
    );
    let sample_every = Duration::from_secs_f64(config.seconds / 40.0);
    let hot = args.get_f64("hot", 0.10);

    let workload = Incr1Workload::new(config.keys, hot).with_rotation(rotate);

    let mut table = Table::new(
        format!(
            "Figure 10: throughput over time, INCR1 with {:.0}% hot-key writes, hot key rotating \
             every {:.1}s ({} cores)",
            hot * 100.0,
            rotate.as_secs_f64(),
            config.cores
        ),
        &["time (s)", "Doppel", "OCC", "2PL"],
    );

    // Collect a time series per engine, then align them on sample index.
    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    for kind in [EngineKind::Doppel, EngineKind::Occ, EngineKind::Twopl] {
        let sampled = sample_during_run(kind, &workload, &config, sample_every);
        // Convert cumulative commit counts into per-interval throughput.
        let mut points = Vec::new();
        let mut prev = (0.0, 0u64);
        for (t, commits) in &sampled.commit_samples {
            let dt = t - prev.0;
            if dt > 0.0 {
                points.push((*t, (commits - prev.1) as f64 / dt));
            }
            prev = (*t, *commits);
        }
        eprintln!(
            "  {}: {:.0} txns/sec overall, {} samples",
            kind.label(),
            sampled.result.throughput,
            points.len()
        );
        series.push(points);
    }

    // `zip` truncates to the shortest series, keeping the rows aligned.
    for ((a, b), c) in series[0].iter().zip(&series[1]).zip(&series[2]) {
        table.push_row(vec![
            Cell::Float(a.0),
            Cell::Mtps(a.1),
            Cell::Mtps(b.1),
            Cell::Mtps(c.1),
        ]);
    }

    emit(&table, "fig10", &args);
}
