//! Figure 15: RUBiS-C throughput as a function of the Zipfian item-popularity
//! parameter α, for Doppel, OCC and 2PL. Doppel matches OCC at low skew and
//! pulls ahead once popular auctions make StoreBid contended.
//!
//! Run with `--help` (`cargo run --release --bin fig15 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_rubis::{RubisScale, RubisWorkload, TxnStyle};
use doppel_workloads::report::{Cell, Table};

fn main() {
    // RUBiS tables are sized by --users/--items; --keys would be ignored.
    let args = Args::from_env_or_usage_excluding(
        "Figure 15: RUBiS-C throughput vs Zipfian item-popularity alpha",
        &["keys"],
        &[
            "  --users N        RUBiS user-table size",
            "  --items N        RUBiS item-table size",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let alphas: Vec<f64> = if args.flag("full") {
        (0..=10).map(|i| i as f64 * 0.2).collect()
    } else {
        vec![0.0, 0.8, 1.2, 1.6, 1.8, 2.0]
    };
    let scale = rubis_scale(&args);

    let mut table = Table::new(
        format!(
            "Figure 15: RUBiS-C throughput (txns/sec) vs Zipf alpha ({} cores, {} users, {} \
             items, {:.1}s per point)",
            config.cores, scale.users, scale.items, config.seconds
        ),
        &["alpha", "Doppel", "OCC", "2PL"],
    );

    for alpha in &alphas {
        let workload = RubisWorkload::contended(scale, *alpha, TxnStyle::Doppel);
        let mut row: Vec<Cell> = vec![Cell::Float(*alpha)];
        for kind in EngineKind::TRANSACTIONAL {
            let result = run_point(*kind, &workload, &config);
            eprintln!("  alpha={alpha:.1} {}: {:.0} txns/sec", kind.label(), result.throughput);
            row.push(Cell::Mtps(result.throughput));
        }
        table.push_row(row);
    }

    emit(&table, "fig15", &args);
}

/// RUBiS table sizes: paper scale with `--full`, scaled down otherwise, with
/// `--users` / `--items` overrides.
fn rubis_scale(args: &Args) -> RubisScale {
    let base = if args.flag("full") {
        RubisScale::paper()
    } else {
        RubisScale { users: 20_000, items: 1_000, categories: 20, regions: 62 }
    };
    RubisScale {
        users: args.get_u64("users", base.users),
        items: args.get_u64("items", base.items),
        ..base
    }
}
