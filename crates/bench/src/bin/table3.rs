//! Table 3: mean and 99th-percentile read/write latencies plus throughput for
//! Doppel, OCC and 2PL on two LIKE workloads — uniform page popularity and
//! skewed popularity (α = 1.4) — with a 50% read / 50% write mix.
//!
//! Doppel's read latency on the skewed workload is expected to be much higher
//! than the others (reads of split data wait for the next joined phase), in
//! exchange for the highest throughput: that trade-off is the point of the
//! table.
//!
//! Run with `--help` (`cargo run --release --bin table3 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::like::LikeWorkload;
use doppel_workloads::report::{Cell, Table};

fn main() {
    let args = Args::from_env_or_usage(
        "Table 3: LIKE latency and throughput for Doppel, OCC and 2PL",
        &[],
    );
    let config = ExperimentConfig::from_args(&args);
    let users = config.keys;
    let pages = config.keys;

    let mut table = Table::new(
        format!(
            "Table 3: LIKE latency and throughput, 50% reads / 50% writes ({} cores, {} \
             users/pages, {:.1}s per point)",
            config.cores, users, config.seconds
        ),
        &[
            "workload",
            "engine",
            "mean R",
            "mean W",
            "99% R",
            "99% W",
            "txns/sec",
        ],
    );

    let workloads = [
        ("uniform", LikeWorkload::uniform(users, pages)),
        ("skewed a=1.4", LikeWorkload::skewed(users, pages)),
    ];

    for (label, workload) in &workloads {
        for kind in EngineKind::TRANSACTIONAL {
            let result = run_point(*kind, workload, &config);
            eprintln!(
                "  {label} {}: {:.0} txns/sec, mean read {:.0}us, mean write {:.0}us",
                kind.label(),
                result.throughput,
                result.read_latency.mean_us,
                result.write_latency.mean_us
            );
            table.push_row(vec![
                Cell::Text(label.to_string()),
                Cell::Text(kind.label().to_string()),
                Cell::Micros(result.read_latency.mean_us),
                Cell::Micros(result.write_latency.mean_us),
                Cell::Micros(result.read_latency.p99_us),
                Cell::Micros(result.write_latency.p99_us),
                Cell::Mtps(result.throughput),
            ]);
        }
    }

    emit(&table, "table3", &args);
}
