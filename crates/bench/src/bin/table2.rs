//! Table 2: the number of keys Doppel decides to split for different Zipf α
//! in the INCRZ benchmark, and the percentage of requests those keys cover.
//!
//! The split decision is sampled while the run is in progress (split keys are
//! a property of Doppel's classifier state, which adapts every phase).
//!
//! Run with `--help` (`cargo run --release --bin table2 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, sample_during_run, Args, EngineKind, ExperimentConfig};
use doppel_workloads::incr::IncrZWorkload;
use doppel_workloads::report::{Cell, Table};
use std::time::Duration;

fn main() {
    let args = Args::from_env_or_usage(
        "Table 2: keys Doppel splits on INCRZ and the request share they cover",
        &[],
    );
    let config = ExperimentConfig::from_args(&args);
    let alphas: Vec<f64> = if args.flag("full") {
        vec![0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    } else {
        vec![0.6, 1.0, 1.4, 2.0]
    };

    let mut table = Table::new(
        format!(
            "Table 2: keys Doppel moves to split data for INCRZ ({} cores, {} keys, {:.1}s per \
             point)",
            config.cores, config.keys, config.seconds
        ),
        &["alpha", "# moved", "% reqs covered", "throughput"],
    );

    for alpha in &alphas {
        let workload = IncrZWorkload::new(config.keys, *alpha);
        let sampled = sample_during_run(
            EngineKind::Doppel,
            &workload,
            &config,
            Duration::from_millis(25),
        );
        // The largest split set observed during the run; keys are popularity
        // ranks, so the covered request fraction is the sum of their Zipf
        // probabilities.
        let moved = sampled.max_split_keys.len();
        let covered: f64 = sampled
            .max_split_keys
            .iter()
            .map(|k| workload.sampler().probability(k.id()))
            .sum();
        eprintln!(
            "  alpha={alpha:.1}: {moved} keys split, {:.1}% of requests, {:.0} txns/sec",
            covered * 100.0,
            sampled.result.throughput
        );
        table.push_row(vec![
            Cell::Float(*alpha),
            Cell::Int(moved as i64),
            Cell::Text(format!("{:.1}%", covered * 100.0)),
            Cell::Mtps(sampled.result.throughput),
        ]);
    }

    emit(&table, "table2", &args);
}
