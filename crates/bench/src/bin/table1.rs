//! Table 1: the percentage of writes that go to the 1st, 2nd, 10th and 100th
//! most popular keys in Zipfian distributions with 1 M keys, for various α.
//!
//! This is an analytical property of the Zipf sampler, not a measurement; it
//! validates that the workload generator used by INCRZ, LIKE and RUBiS-C
//! reproduces exactly the distributions the paper evaluated.
//!
//! Run with `--help` (`cargo run --release --bin table1 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, Args};
use doppel_workloads::report::{Cell, Table};
use doppel_workloads::zipf::ZipfSampler;

fn main() {
    // Purely analytic: no engines run, so only the flags actually read are
    // advertised (the common measurement flags would be ignored).
    let args = Args::from_env_or_custom_usage(
        "Table 1: Zipf write concentration on the most popular keys",
        &[
            "  --keys N         size of the key space (default 1000000)",
            "  --out DIR        also write the table as DIR/table1.{json,txt}",
        ],
    );
    let keys = args.get_u64("keys", 1_000_000);
    let alphas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0];
    let ranks = [0u64, 1, 9, 99];

    let mut table = Table::new(
        format!("Table 1: % of writes to the Nth most popular key ({keys} keys)"),
        &["alpha", "1st", "2nd", "10th", "100th"],
    );

    for alpha in alphas {
        let sampler = ZipfSampler::new(keys, alpha);
        let mut row: Vec<Cell> = vec![Cell::Float(alpha)];
        for rank in ranks {
            row.push(Cell::Text(format!("{:.4}%", sampler.probability(rank) * 100.0)));
        }
        table.push_row(row);
    }

    emit(&table, "table1", &args);
}
