//! Figure 11: total INCRZ throughput as a function of the Zipfian skew
//! parameter α, for Doppel, OCC, 2PL and Atomic.
//!
//! Run with `--help` (`cargo run --release --bin fig11 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::incr::IncrZWorkload;
use doppel_workloads::report::{Cell, Table};

fn main() {
    let args = Args::from_env_or_usage(
        "Figure 11: INCRZ throughput vs Zipfian skew alpha",
        &[],
    );
    let config = ExperimentConfig::from_args(&args);
    let alphas: Vec<f64> = if args.flag("full") {
        (0..=10).map(|i| i as f64 * 0.2).collect()
    } else {
        vec![0.0, 0.6, 1.0, 1.4, 1.8, 2.0]
    };

    let mut table = Table::new(
        format!(
            "Figure 11: INCRZ throughput (txns/sec) vs Zipf alpha ({} cores, {} keys, {:.1}s \
             per point)",
            config.cores, config.keys, config.seconds
        ),
        &["alpha", "Doppel", "OCC", "2PL", "Atomic"],
    );

    for alpha in &alphas {
        let workload = IncrZWorkload::new(config.keys, *alpha);
        let mut row: Vec<Cell> = vec![Cell::Float(*alpha)];
        for kind in EngineKind::ALL {
            let result = run_point(*kind, &workload, &config);
            eprintln!("  alpha={alpha:.1} {}: {:.0} txns/sec", kind.label(), result.throughput);
            row.push(Cell::Mtps(result.throughput));
        }
        table.push_row(row);
    }

    emit(&table, "fig11", &args);
}
