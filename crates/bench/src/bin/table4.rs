//! Table 4: RUBiS-B (uniform bidding mix) and RUBiS-C (50% bids with Zipfian
//! item popularity, α = 1.8) throughput for Doppel, OCC and 2PL.
//!
//! Run with `--help` (`cargo run --release --bin table4 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_rubis::{RubisScale, RubisWorkload, TxnStyle};
use doppel_workloads::report::{Cell, Table};

fn main() {
    // RUBiS tables are sized by --users/--items; --keys would be ignored.
    let args = Args::from_env_or_usage_excluding(
        "Table 4: RUBiS-B and RUBiS-C throughput for Doppel, OCC and 2PL",
        &["keys"],
        &[
            "  --alpha A        Zipf skew of item popularity for RUBiS-C",
            "  --users N        RUBiS user-table size",
            "  --items N        RUBiS item-table size",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let alpha = args.get_f64("alpha", 1.8);
    let scale = rubis_scale(&args);

    let mut table = Table::new(
        format!(
            "Table 4: RUBiS throughput (txns/sec), RUBiS-C alpha={alpha} ({} cores, {} users, \
             {} items, {:.1}s per point)",
            config.cores, scale.users, scale.items, config.seconds
        ),
        &["engine", "RUBiS-B", "RUBiS-C", "C stashed", "C aborts"],
    );

    let rubis_b = RubisWorkload::bidding(scale, TxnStyle::Doppel);
    let rubis_c = RubisWorkload::contended(scale, alpha, TxnStyle::Doppel);

    for kind in EngineKind::TRANSACTIONAL {
        let b = run_point(*kind, &rubis_b, &config);
        let c = run_point(*kind, &rubis_c, &config);
        eprintln!(
            "  {}: RUBiS-B {:.0} txns/sec, RUBiS-C {:.0} txns/sec",
            kind.label(),
            b.throughput,
            c.throughput
        );
        table.push_row(vec![
            Cell::Text(kind.label().to_string()),
            Cell::Mtps(b.throughput),
            Cell::Mtps(c.throughput),
            Cell::Int(c.stashed as i64),
            Cell::Int(c.aborts as i64),
        ]);
    }

    emit(&table, "table4", &args);
}

/// RUBiS table sizes: paper scale with `--full`, scaled down otherwise, with
/// `--users` / `--items` overrides.
fn rubis_scale(args: &Args) -> RubisScale {
    let base = if args.flag("full") {
        RubisScale::paper()
    } else {
        RubisScale { users: 20_000, items: 1_000, categories: 20, regions: 62 }
    };
    RubisScale {
        users: args.get_u64("users", base.users),
        items: args.get_u64("items", base.items),
        ..base
    }
}
