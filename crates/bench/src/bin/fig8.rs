//! Figure 8: total INCR1 throughput as a function of the percentage of
//! transactions that increment the single hot key, for Doppel, OCC, 2PL and
//! Atomic.
//!
//! Run with `--help` (`cargo run --release --bin fig8 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::incr::Incr1Workload;
use doppel_workloads::report::{Cell, Table};

fn main() {
    let args = Args::from_env_or_usage(
        "Figure 8: INCR1 throughput vs % of transactions writing the single hot key",
        &[],
    );
    let config = ExperimentConfig::from_args(&args);
    // DOPPEL_TRACE=1 turns event tracing on for the whole run — the knob the
    // tracing-overhead numbers in README.md are measured with.
    if std::env::var_os("DOPPEL_TRACE").is_some_and(|v| v != "0") {
        doppel_telemetry::trace::set_enabled(true);
        eprintln!("  (event tracing enabled via DOPPEL_TRACE)");
    }
    // The paper sweeps 0–100%; the quick configuration uses fewer points.
    let hot_percentages: Vec<u64> = if args.flag("full") {
        vec![0, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    } else {
        vec![0, 10, 20, 50, 80, 100]
    };

    let mut table = Table::new(
        format!(
            "Figure 8: INCR1 throughput (txns/sec) vs % transactions writing the hot key \
             ({} cores, {} keys, {:.1}s per point)",
            config.cores, config.keys, config.seconds
        ),
        &["hot%", "Doppel", "OCC", "2PL", "Atomic", "Doppel/OCC", "allocs/txn"],
    );

    for hot in &hot_percentages {
        let workload = Incr1Workload::new(config.keys, *hot as f64 / 100.0);
        let mut row: Vec<Cell> = vec![Cell::Int(*hot as i64)];
        let mut doppel_tput = 0.0;
        let mut occ_tput = 0.0;
        // Allocation traffic pooled across the row's four engine runs: the
        // headline hot-path allocation number for the INCR workload.
        let mut row_stats = doppel_common::StatsSnapshot::default();
        for kind in EngineKind::ALL {
            let result = run_point(*kind, &workload, &config);
            eprintln!(
                "  hot={hot}% {}: {:.0} txns/sec ({} commits, {} aborts, {} allocs/txn)",
                kind.label(),
                result.throughput,
                result.committed,
                result.aborts,
                result
                    .engine_stats
                    .allocs_per_commit()
                    .map_or("-".to_string(), |x| format!("{x:.2}")),
            );
            match kind {
                EngineKind::Doppel => doppel_tput = result.throughput,
                EngineKind::Occ => occ_tput = result.throughput,
                _ => {}
            }
            row_stats = row_stats.merge(&result.engine_stats);
            row.push(Cell::Mtps(result.throughput));
        }
        row.push(Cell::Float(if occ_tput > 0.0 { doppel_tput / occ_tput } else { 0.0 }));
        row.push(row_stats.allocs_per_commit().map_or(Cell::Empty, Cell::Float));
        table.push_row(row);
    }

    emit(&table, "fig8", &args);
}
