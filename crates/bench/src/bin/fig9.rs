//! Figure 9: per-core INCR1 throughput when every transaction increments the
//! same single key, as the number of cores grows. Perfect scalability would
//! be a horizontal line; serialized schemes decay as 1/x.
//!
//! Run with `--help` (`cargo run --release --bin fig9 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::incr::Incr1Workload;
use doppel_workloads::report::{Cell, Table};

fn main() {
    // The worker count is swept, so --cores would be ignored: exclude it.
    let args = Args::from_env_or_usage_excluding(
        "Figure 9: per-core INCR1 throughput on one contended key as cores grow",
        &["cores"],
        &["  --max-cores N    sweep worker counts from 1 up to N"],
    );
    let mut config = ExperimentConfig::from_args(&args);
    let max_cores = args.get_usize("max-cores", if args.flag("full") { 80 } else { 8 });
    let core_counts: Vec<usize> = {
        let mut counts = vec![1usize, 2, 4];
        let mut c = 8;
        while c <= max_cores {
            counts.push(c);
            c *= 2;
        }
        counts.retain(|c| *c <= max_cores);
        counts.dedup();
        counts
    };

    let mut table = Table::new(
        format!(
            "Figure 9: per-core throughput (txns/sec/core) for INCR1 with 100% hot-key writes \
             ({} keys, {:.1}s per point)",
            config.keys, config.seconds
        ),
        &["cores", "Doppel", "OCC", "2PL", "Atomic"],
    );

    let workload = Incr1Workload::new(config.keys, 1.0);
    for cores in core_counts {
        config.cores = cores;
        let mut row: Vec<Cell> = vec![Cell::Int(cores as i64)];
        for kind in EngineKind::ALL {
            let result = run_point(*kind, &workload, &config);
            eprintln!(
                "  cores={cores} {}: {:.0} txns/sec/core",
                kind.label(),
                result.per_core_throughput()
            );
            row.push(Cell::Mtps(result.per_core_throughput()));
        }
        table.push_row(row);
    }

    emit(&table, "fig9", &args);
}
