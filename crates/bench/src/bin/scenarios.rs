//! Beyond-the-paper scenarios: the FLAGS (fraud flagging, `BitOr` +
//! `BoundedAdd`) and VISITORS (unique audience, `SetUnion`) workloads across
//! the three transactional engines, at uniform and skewed account/page
//! popularity.
//!
//! These workloads exercise the splittable operations added on top of the
//! paper's §4 set, showing that new commutative operations registered in the
//! splittable-operation framework get the same contention relief as the
//! built-ins.
//!
//! Run with `--help` (`cargo run --release --bin scenarios -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::driver::Workload;
use doppel_workloads::flags::FlagsWorkload;
use doppel_workloads::report::{Cell, Table};
use doppel_workloads::visitors::VisitorsWorkload;

fn main() {
    let args = Args::from_env_or_usage(
        "Scenarios: FLAGS (BitOr/BoundedAdd) and VISITORS (SetUnion) throughput",
        &[
            "  --alpha A        Zipf skew of the skewed points (default 1.4)",
            "  --writes PCT     write percentage of both mixes (default 90)",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let alpha = args.get_f64("alpha", 1.4);
    let write_fraction = args.get_u64("writes", 90) as f64 / 100.0;
    let accounts = config.keys;
    let strike_cap = 1_000_000;

    let mut table = Table::new(
        format!(
            "Scenarios: throughput (txns/sec) of the new-operation workloads ({} cores, {} \
             accounts/pages, {:.0}% writes, {:.1}s per point)",
            config.cores,
            accounts,
            write_fraction * 100.0,
            config.seconds
        ),
        &["workload", "Doppel", "OCC", "2PL"],
    );

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(FlagsWorkload::new(accounts, write_fraction, 0.0, strike_cap)),
        Box::new(FlagsWorkload::new(accounts, write_fraction, alpha, strike_cap)),
        Box::new(VisitorsWorkload::new(accounts, accounts, write_fraction, 0.0)),
        Box::new(VisitorsWorkload::new(accounts, accounts, write_fraction, alpha)),
    ];

    for workload in &workloads {
        let mut row: Vec<Cell> = vec![Cell::Text(workload.name())];
        for kind in EngineKind::TRANSACTIONAL {
            let result = run_point(*kind, workload.as_ref(), &config);
            eprintln!(
                "  {} {}: {:.0} txns/sec ({} stashed)",
                workload.name(),
                kind.label(),
                result.throughput,
                result.stashed
            );
            row.push(Cell::Mtps(result.throughput));
        }
        table.push_row(row);
    }

    emit(&table, "scenarios", &args);
}
