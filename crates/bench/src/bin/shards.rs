//! Shards experiment: throughput vs shard count through the shard router.
//!
//! A cluster of in-process `Server`s (real TCP, real wire protocol), each
//! owning a hash-slice of the keyspace and running **synchronous durable
//! commit** (one fsync per commit record) — the deployment where scale-out
//! pays even on one machine, because each shard's fsync stalls overlap with
//! the others'. Three flavors per shard count:
//!
//! * `single` — one-statement commutative transactions spread across the
//!   keyspace; every transaction routes direct to its owning shard. This is
//!   the pure placement-scaling row: N shards fsync N commit streams
//!   concurrently.
//! * `fast`   — two-statement cross-shard transactions whose statements are
//!   all commutative `Add`s: the router fans per-shard slices out with no
//!   coordination (the paper's commutativity argument, applied across
//!   processes instead of cores).
//! * `2pc`    — the *same* cross-shard mix with the fast path disabled
//!   (`force_two_phase`), so every transaction pays prepare/vote/decide with
//!   durable vote logging. The fast-vs-2pc gap is the price of coordination
//!   the commutative fast path avoids.
//!
//! Transactions are pipelined in batches through `ShardRouter::execute_many`;
//! the latency columns report *batch completion* latency attributed to each
//! transaction in the batch (a closed-loop client observes exactly that).
//!
//! Run with `--help` (`cargo run --release --bin shards -- --help`)
//! for the full flag list.

use doppel_bench::{emit, Args, ExperimentConfig};
use doppel_common::{AllocCheckpoint, DurabilityConfig, Key, ShardMap, Value};
use doppel_service::{RemoteTxn, Server, ServerEngine, ServiceConfig, ShardRouter};
use doppel_telemetry::Histogram;
use doppel_wal::{TempWalDir, Wal};
use doppel_workloads::report::{latency_cells, Cell, Table, LATENCY_COLUMNS};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Cluster {
    servers: Vec<Server>,
    addrs: Vec<String>,
    /// Keys each shard owns, so generators can aim at a specific shard.
    owned: Vec<Vec<u64>>,
    /// WAL directories live as long as the cluster, removed on drop.
    _dirs: Vec<TempWalDir>,
}

impl Cluster {
    fn start(shards: usize, keys: u64, workers: usize) -> Cluster {
        let map = ShardMap::new(shards);
        let mut owned = vec![Vec::new(); shards];
        for k in 0..keys {
            owned[map.shard_of(Key::raw(k))].push(k);
        }
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        let mut dirs = Vec::new();
        for (shard, keys) in owned.iter().enumerate() {
            let mut engine = ServerEngine::build("occ", workers, 20, 1024).expect("occ engine");
            let dir = TempWalDir::new(&format!("shards-bench-{shard}"));
            let wal = Arc::new(
                Wal::open(dir.path(), DurabilityConfig::synchronous()).expect("open WAL"),
            );
            engine.engine.attach_commit_sink(Arc::clone(&wal) as _);
            engine = engine.with_vote_log(wal);
            dirs.push(dir);
            for k in keys {
                engine.engine.load(Key::raw(*k), Value::Int(0));
            }
            let server = Server::start(engine, ServiceConfig::default(), "127.0.0.1:0")
                .expect("bind shard server");
            addrs.push(server.local_addr().to_string());
            servers.push(server);
        }
        Cluster { servers, addrs, owned, _dirs: dirs }
    }

    fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Flavor {
    Single,
    Fast,
    TwoPhase,
}

impl Flavor {
    fn label(self) -> &'static str {
        match self {
            Flavor::Single => "single",
            Flavor::Fast => "fast",
            Flavor::TwoPhase => "2pc",
        }
    }
}

/// Deterministic key choice: the `i`-th key of `shard`, scrambled so
/// successive transactions don't touch neighbouring records.
fn owned_key(cluster: &Cluster, shard: usize, i: u64) -> Key {
    let keys = &cluster.owned[shard];
    Key::raw(keys[(i.wrapping_mul(2654435761) % keys.len() as u64) as usize])
}

/// The `seq`-th transaction of a flavor. `single` writes one key on a
/// rotating shard; `fast`/`2pc` write one key each on two rotating shards
/// (the same cross-shard mix — only the routing differs).
fn make_txn(flavor: Flavor, cluster: &Cluster, seq: u64) -> RemoteTxn {
    let shards = cluster.owned.len();
    let a = (seq % shards as u64) as usize;
    match flavor {
        Flavor::Single => RemoteTxn::new().add(owned_key(cluster, a, seq), 1),
        Flavor::Fast | Flavor::TwoPhase => {
            let b = (a + 1) % shards;
            RemoteTxn::new()
                .add(owned_key(cluster, a, seq), 1)
                .add(owned_key(cluster, b, seq.wrapping_add(7)), 1)
        }
    }
}

struct Point {
    throughput: f64,
    latency: doppel_telemetry::LatencySummary,
    allocs_per_txn: f64,
}

fn run_point(cluster: &Cluster, flavor: Flavor, seconds: f64, batch: usize) -> Point {
    let mut router = ShardRouter::connect(&cluster.addrs).expect("router connects");
    router.force_two_phase(flavor == Flavor::TwoPhase);
    // Workload generation is not the system under test: pre-build a pool of
    // batches and cycle through it inside the timed loop.
    let pool: Vec<Vec<RemoteTxn>> = (0..16u64)
        .map(|b| {
            (0..batch as u64).map(|i| make_txn(flavor, cluster, b * batch as u64 + i)).collect()
        })
        .collect();
    let mut hist = Histogram::new();
    let mut committed = 0u64;
    let mut round = 0usize;
    let cp = AllocCheckpoint::now();
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(seconds);
    while Instant::now() < deadline {
        let txns = &pool[round % pool.len()];
        round += 1;
        let t0 = Instant::now();
        let outcomes = router.execute_many(txns).expect("routing io");
        let dt = t0.elapsed();
        committed += outcomes.iter().filter(|o| o.is_committed()).count() as u64;
        for _ in 0..txns.len() {
            hist.record(dt);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let (allocs, _) = cp.delta();
    Point {
        throughput: committed as f64 / elapsed,
        latency: hist.summary(),
        allocs_per_txn: if committed == 0 { 0.0 } else { allocs as f64 / committed as f64 },
    }
}

fn main() {
    let args = Args::from_env_or_usage_excluding(
        "Shards: throughput vs shard count through the shard router (fast path vs forced 2PC)",
        &["shards"],
        &[
            "  --counts LIST    comma-separated shard counts (default 1,2,4)",
            "  --batch N        pipelined transactions per execute_many batch (default 64)",
            "  --workers N      worker threads per shard server (default 1)",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let counts: Vec<usize> = args
        .get("counts")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|n| n.trim().parse().expect("--counts expects integers"))
        .collect();
    let batch = args.get_usize("batch", 64);
    let workers = args.get_usize("workers", 1);

    let mut table = Table::new(
        format!(
            "Shards: pipelined throughput vs shard count, synchronous durable commit \
             ({} keys, {:.1}s per point, batch {batch}, {workers} worker(s)/shard)",
            config.keys, config.seconds,
        ),
        &[&["engine", "shards", "txn/s"][..], LATENCY_COLUMNS, &["allocs/txn"]].concat(),
    );

    // (flavor, shard count) → throughput, for the summary ratios below.
    let mut measured: Vec<(Flavor, usize, f64)> = Vec::new();
    for &shards in &counts {
        let cluster = Cluster::start(shards, config.keys, workers);
        for flavor in [Flavor::Single, Flavor::Fast, Flavor::TwoPhase] {
            let point = run_point(&cluster, flavor, config.seconds, batch);
            let mut row = vec![
                Cell::Text(format!("{} x{shards}", flavor.label())),
                Cell::Int(shards as i64),
                Cell::Mtps(point.throughput),
            ];
            row.extend(latency_cells(&point.latency));
            row.push(Cell::Float(point.allocs_per_txn));
            table.push_row(row);
            measured.push((flavor, shards, point.throughput));
        }
        cluster.shutdown();
    }

    emit(&table, "shards", &args);

    // The two claims this experiment exists to check, as explicit ratios.
    let tput = |flavor: Flavor, shards: usize| {
        measured
            .iter()
            .find(|(f, s, _)| *f == flavor && *s == shards)
            .map(|(_, _, t)| *t)
            .unwrap_or(0.0)
    };
    let (lo, hi) = (*counts.iter().min().unwrap_or(&1), *counts.iter().max().unwrap_or(&1));
    if lo != hi && tput(Flavor::Single, lo) > 0.0 {
        println!(
            "scaling: single-shard-routed commutative ops at x{hi} vs x{lo}: {:.2}x",
            tput(Flavor::Single, hi) / tput(Flavor::Single, lo)
        );
    }
    if tput(Flavor::TwoPhase, hi) > 0.0 {
        println!(
            "fast path vs forced 2PC on the same cross-shard mix at x{hi}: {:.2}x",
            tput(Flavor::Fast, hi) / tput(Flavor::TwoPhase, hi)
        );
    }
}
