//! Ablation: how much of Doppel's behaviour comes from splitting itself?
//!
//! Runs the INCR1 hot-key workload on three configurations:
//!
//! * **Doppel** — full phase reconciliation;
//! * **Doppel (no split)** — identical engine with `enable_splitting = false`,
//!   i.e. the phase machinery runs but nothing is ever split, which degrades
//!   to plain OCC plus coordination overhead;
//! * **OCC** — the baseline without any phase machinery.
//!
//! The difference between the first two isolates the benefit of splitting;
//! the difference between the last two isolates the cost of the phase
//! machinery when it is not needed.
//!
//! Run with `--help` (`cargo run --release --bin ablation -- --help`)
//! for the full flag list.

use doppel_bench::engines::EngineParams;
use doppel_bench::{build_engine, emit, Args, EngineKind, ExperimentConfig};
use doppel_workloads::driver::Driver;
use doppel_workloads::incr::Incr1Workload;
use doppel_workloads::report::{Cell, Table};

fn main() {
    let args = Args::from_env_or_usage(
        "Ablation: INCR1 hot-key throughput with splitting disabled or forced",
        &[],
    );
    let config = ExperimentConfig::from_args(&args);
    let hot_fractions: Vec<f64> = if args.flag("full") {
        vec![0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
    } else {
        vec![0.0, 0.5, 1.0]
    };
    let configurations: &[(&str, EngineKind, bool)] = &[
        ("Doppel", EngineKind::Doppel, false),
        ("Doppel(no-split)", EngineKind::Doppel, true),
        ("OCC", EngineKind::Occ, false),
    ];

    let mut table = Table::new(
        format!(
            "Ablation: INCR1 throughput with and without splitting ({} cores, {} keys, {:.1}s \
             per point)",
            config.cores, config.keys, config.seconds
        ),
        &["hot%", "Doppel", "Doppel(no-split)", "OCC", "split benefit", "phase overhead"],
    );

    for hot in &hot_fractions {
        let workload = Incr1Workload::new(config.keys, *hot);
        let mut throughputs = Vec::new();
        for (label, kind, disable_splitting) in configurations {
            let params = EngineParams {
                workers: config.cores,
                shards: config.shards,
                phase_len: config.phase_len,
                disable_splitting: *disable_splitting,
            };
            let engine = build_engine(*kind, &params);
            let result = Driver::run(engine.as_ref(), &workload, &config.bench_options());
            engine.shutdown();
            eprintln!("  hot={:.0}% {label}: {:.0} txns/sec", hot * 100.0, result.throughput);
            throughputs.push(result.throughput);
        }
        let split_benefit = if throughputs[1] > 0.0 { throughputs[0] / throughputs[1] } else { 0.0 };
        let phase_overhead = if throughputs[2] > 0.0 { throughputs[1] / throughputs[2] } else { 0.0 };
        table.push_row(vec![
            Cell::Int((hot * 100.0) as i64),
            Cell::Mtps(throughputs[0]),
            Cell::Mtps(throughputs[1]),
            Cell::Mtps(throughputs[2]),
            Cell::Float(split_benefit),
            Cell::Float(phase_overhead),
        ]);
    }

    emit(&table, "ablation", &args);
}
