//! ADAPTIVE experiment: the adaptive contention controller versus an oracle
//! labelling on a migrating hot set.
//!
//! The workload is [`AdaptiveWorkload`]: most increments hit a small hot set
//! of auction items whose identity rotates mid-run. Two Doppel runs compare:
//!
//! * **adaptive** — zero manual hints; a [`doppel_tuner::Tuner`] control loop
//!   samples the engine's telemetry every epoch and promotes/demotes split
//!   labels (and steers phase length) online;
//! * **oracle** — every item that will ever be hot is labelled split up
//!   front, via the workload's deterministic rotation schedule. This is the
//!   upper bound a perfect static `--hint-items` could reach.
//!
//! The headline number is the ratio: adaptive throughput as a fraction of
//! oracle throughput, with zero configuration.
//!
//! Run with `--help` (`cargo run --release --bin adaptive -- --help`)
//! for the full flag list.

use doppel_bench::{emit, Args, ExperimentConfig};
use doppel_common::{DoppelConfig, Engine, TuneSink};
use doppel_db::DoppelDb;
use doppel_tuner::TunerHandle;
use doppel_workloads::driver::Driver;
use doppel_workloads::report::{Cell, Table};
use doppel_workloads::AdaptiveWorkload;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::from_env_or_usage(
        "ADAPTIVE: tuner-learned split labels vs an oracle labelling on a migrating hot set",
        &[
            "  --rotate-secs S  rotate the hot set every S seconds",
            "  --hot F          fraction of transactions writing the hot set",
            "  --hot-items N    size of the hot set",
            "  --tuner-epoch-ms MS  tuner control-loop period",
            "  --promote-hits N     conflict-heat delta per epoch that promotes a key",
        ],
    );
    let mut config = ExperimentConfig::from_args(&args);
    if !args.flag("full") && args.get("seconds").is_none() {
        // Long enough for several tuner epochs on either side of a rotation.
        config.seconds = 4.0;
    }
    if !args.flag("full") && args.get("keys").is_none() {
        config.keys = 10_000;
    }
    let rotate = Duration::from_secs_f64(
        args.get_f64("rotate-secs", if args.flag("full") { 5.0 } else { config.seconds / 2.0 }),
    );
    let hot = args.get_f64("hot", 0.95);
    let hot_items = args.get_usize("hot-items", 2);

    let workload =
        AdaptiveWorkload::new(config.keys, hot_items, hot).with_rotation(rotate);
    let epochs = workload.epochs_in(Duration::from_secs_f64(config.seconds));
    let oracle_labels = workload.oracle_labels(epochs);

    // The control loop's sensitivity is workload- and host-relative: a
    // conflict rate that saturates 20 physical cores is unreachable on a
    // small CI box, so the promote threshold and epoch are flags with
    // defaults scaled for modest hosts (a longer epoch accumulates enough
    // heat per decision for promotion to trigger at low conflict rates).
    let mut tuner_cfg = doppel_common::TunerConfig {
        epoch: Duration::from_millis(args.get_u64("tuner-epoch-ms", 250)),
        promote_min_hits: args.get_u64("promote-hits", 4),
        ..Default::default()
    };
    tuner_cfg.max_phase_len = tuner_cfg.max_phase_len.max(config.phase_len);
    let doppel_config = DoppelConfig {
        workers: config.cores,
        store_shards: config.shards,
        phase_len: config.phase_len,
        tuner: tuner_cfg,
        ..Default::default()
    };
    doppel_config.validate().expect("experiment config must validate");

    // Adaptive run: no hints, the control loop learns the labels online.
    let db = Arc::new(DoppelDb::start(doppel_config.clone()));
    let registry = db.telemetry().expect("doppel always has a telemetry registry");
    let mut tuner = TunerHandle::spawn(
        db.config().tuner.clone(),
        Arc::clone(&db) as Arc<dyn TuneSink>,
        registry,
    );
    let adaptive = Driver::run(db.as_ref(), &workload, &config.bench_options());
    let status = tuner.status();
    tuner.stop();
    let adaptive_splits = db.split_keys().len();
    db.shutdown();
    eprintln!(
        "  adaptive: {:.0} txns/s ({} conflicts, {} stashes), {} tuner epochs, {} decision(s), \
         {} key(s) split at end",
        adaptive.throughput,
        adaptive.engine_stats.conflicts,
        adaptive.engine_stats.stashes,
        status.epochs,
        status.decisions.len(),
        adaptive_splits
    );
    for d in &status.decisions {
        eprintln!("    {d}");
    }

    // Oracle run: the full rotation schedule labelled split before a single
    // transaction executes.
    let db = DoppelDb::start(doppel_config);
    for (key, kind) in &oracle_labels {
        db.label_split(*key, *kind);
    }
    let oracle = Driver::run(&db, &workload, &config.bench_options());
    db.shutdown();
    eprintln!(
        "  oracle:   {:.0} txns/s ({} labels fed up front)",
        oracle.throughput,
        oracle_labels.len()
    );

    let ratio = if oracle.throughput > 0.0 { adaptive.throughput / oracle.throughput } else { 0.0 };
    let mut table = Table::new(
        format!(
            "ADAPTIVE: {} items, hot set {hot_items}x{:.0}% rotating every {:.1}s, {} cores, \
             {:.1}s runs — adaptive reaches {:.0}% of oracle",
            config.keys,
            hot * 100.0,
            rotate.as_secs_f64(),
            config.cores,
            config.seconds,
            ratio * 100.0
        ),
        &["engine", "throughput", "tuner epochs", "decisions", "split labels"],
    );
    table.push_row(vec![
        Cell::Text("Doppel (adaptive)".into()),
        Cell::Mtps(adaptive.throughput),
        Cell::Int(status.epochs as i64),
        Cell::Int(status.decisions.len() as i64),
        Cell::Int(adaptive_splits as i64),
    ]);
    table.push_row(vec![
        Cell::Text("Doppel (oracle)".into()),
        Cell::Mtps(oracle.throughput),
        Cell::Int(0),
        Cell::Int(0),
        Cell::Int(oracle_labels.len() as i64),
    ]);
    emit(&table, "adaptive", &args);
    println!("adaptive/oracle throughput ratio: {:.2}", ratio);
}
