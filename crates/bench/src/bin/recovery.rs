//! Durability experiment: throughput-with-durability and recovery time for
//! all four engines.
//!
//! For each engine the binary runs the INCR1 workload twice — once volatile,
//! once with a write-ahead log attached (group commit per `--gc-batch` /
//! `--gc-micros`) — then simulates a crash by dropping the durable engine,
//! recovers the log into a fresh engine, and reports recovery time plus the
//! WAL counters. The recovered store is validated against the crashed
//! engine's final state.
//!
//! Run with `--help` (`cargo run --release --bin recovery -- --help`)
//! for the full flag list.

use doppel_bench::engines::{build_engine, EngineParams};
use doppel_bench::{emit, Args, EngineKind, ExperimentConfig};
use doppel_common::{DurabilityConfig, Engine, Key, Value};
use doppel_wal::{checkpoint_engine, recover_into, TempWalDir, Wal};
use doppel_workloads::driver::Driver;
use doppel_workloads::incr::Incr1Workload;
use doppel_workloads::report::{
    alloc_stat_cells, wal_stat_cells, Cell, Table, ALLOC_STAT_COLUMNS, WAL_STAT_COLUMNS,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sum of all integer records, the INCR workload's commit-count invariant.
fn int_sum(engine: &dyn Engine) -> i64 {
    let mut sum = 0;
    engine.for_each_record(&mut |_k: Key, v: &Value| {
        if let Some(n) = v.as_int() {
            sum += n;
        }
    });
    sum
}

fn main() {
    let args = Args::from_env_or_usage(
        "Durability: throughput with write-ahead logging and crash-recovery time, all engines",
        &[
            "  --gc-batch N     group-commit batch size (records per fsync; default 32)",
            "  --gc-micros US   group-commit interval in microseconds (default 200)",
            "  --hot PCT        % of transactions writing the hot key (default 50)",
            "  --checkpoint     take a checkpoint before the simulated crash",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let durability = DurabilityConfig {
        group_commit_batch: args.get_usize("gc-batch", 32),
        group_commit_interval: Duration::from_micros(args.get_u64("gc-micros", 200)),
        crash_at_byte: None,
    }
    .from_env();
    let hot = args.get_f64("hot", 50.0) / 100.0;
    let workload = Incr1Workload::new(config.keys, hot);
    let params: EngineParams = config.engine_params();
    let options = config.bench_options();

    let mut table = Table::new(
        format!(
            "Durability: INCR1 throughput volatile vs durable (group commit {} recs / {}us) \
             and recovery time ({} cores, {} keys, {:.1}s per point)",
            durability.group_commit_batch,
            durability.group_commit_interval.as_micros(),
            config.cores,
            config.keys,
            config.seconds,
        ),
        &[
            &["engine", "durable", "volatile", "overhead%"][..],
            WAL_STAT_COLUMNS,
            ALLOC_STAT_COLUMNS,
            &["recovery_ms"][..],
        ]
        .concat(),
    );

    for kind in EngineKind::ALL {
        // Volatile baseline.
        let volatile = doppel_bench::run_point(*kind, &workload, &config);

        // Durable run: same engine + workload with a WAL attached.
        let wal_dir = TempWalDir::new(&format!("recovery-{}", kind.label()));
        let wal = Arc::new(Wal::open(wal_dir.path(), durability.clone()).expect("open wal"));
        let engine = build_engine(*kind, &params);
        engine.attach_commit_sink(wal.clone());
        let durable = Driver::run(engine.as_ref(), &workload, &options);
        // A second shutdown syncs deltas reconciled while worker handles were
        // dropped at the end of the measurement scope.
        engine.shutdown();
        if args.flag("checkpoint") {
            checkpoint_engine(&wal, engine.as_ref()).expect("checkpoint");
        }
        let expected_sum = int_sum(engine.as_ref());
        drop(engine); // the simulated crash: only the WAL directory survives
        drop(wal);

        // Recovery into a fresh engine. Counters are read as a delta over
        // the recovery window so only replay activity lands in the row.
        let fresh = build_engine(*kind, &params);
        let stats_before_recovery = fresh.stats();
        let started = Instant::now();
        let report = recover_into(fresh.as_ref(), wal_dir.path()).expect("recovery");
        let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
        let recovered_sum = int_sum(fresh.as_ref());
        if recovered_sum != expected_sum {
            eprintln!(
                "  WARNING {}: recovered sum {} != pre-crash sum {}",
                kind.label(),
                recovered_sum,
                expected_sum
            );
        }
        let recovery_stats = fresh.stats().delta(&stats_before_recovery);
        fresh.shutdown();

        eprintln!(
            "  {}: durable {:.0} tx/s, volatile {:.0} tx/s, {} log records, \
             recovered {} records (+{} from checkpoint) in {recovery_ms:.1} ms",
            kind.label(),
            durable.throughput,
            volatile.throughput,
            durable.engine_stats.log_records,
            report.log_records(),
            report.checkpoint_records,
        );

        let overhead = if durable.throughput > 0.0 {
            (volatile.throughput / durable.throughput - 1.0) * 100.0
        } else {
            f64::INFINITY
        };
        // The run's WAL counters plus the recovery window's counters
        // (recovery bumps only `recovered_txns`, so the merge is exactly the
        // old hand-rolled overlay, minus the chance to miss a field).
        let wal_stats = durable.engine_stats.merge(&recovery_stats);
        let mut row: Vec<Cell> = vec![
            kind.label().into(),
            Cell::Mtps(durable.throughput),
            Cell::Mtps(volatile.throughput),
            Cell::Float(overhead),
        ];
        row.extend(wal_stat_cells(&wal_stats));
        row.extend(alloc_stat_cells(&wal_stats));
        row.push(Cell::Micros(recovery_ms * 1e3));
        table.push_row(row);
    }

    emit(&table, "recovery", &args);
}
