//! Figure 13: average read-transaction latency in Doppel as a function of the
//! phase length, for three LIKE workloads: uniform (nothing split), skewed
//! 50% writes, and skewed 90% writes. Longer phases mean stashed reads wait
//! longer for the next joined phase.
//!
//! Run with `--help` (`cargo run --release --bin fig13 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::driver::Workload;
use doppel_workloads::like::LikeWorkload;
use doppel_workloads::report::{Cell, Table};
use std::time::Duration;

fn main() {
    // The phase length is swept, so --phase-ms would be ignored: exclude it.
    let args = Args::from_env_or_usage_excluding(
        "Figure 13: Doppel read latency vs phase length on three LIKE workloads",
        &["phase-ms"],
        &[],
    );
    let mut config = ExperimentConfig::from_args(&args);
    let phase_lengths_ms: Vec<u64> = if args.flag("full") {
        vec![1, 2, 5, 10, 20, 40, 60, 80, 100]
    } else {
        vec![2, 5, 10, 20, 40]
    };
    let users = config.keys;
    let pages = config.keys;

    let mut table = Table::new(
        format!(
            "Figure 13: Doppel average read latency (us) vs phase length ({} cores, {} \
             users/pages, {:.1}s per point)",
            config.cores, users, config.seconds
        ),
        &["phase (ms)", "Uniform", "Skewed", "Skewed Write Heavy"],
    );

    let workloads = [
        LikeWorkload::uniform(users, pages),
        LikeWorkload::skewed(users, pages),
        LikeWorkload::skewed_write_heavy(users, pages),
    ];

    for ms in &phase_lengths_ms {
        config.phase_len = Duration::from_millis(*ms);
        let mut row: Vec<Cell> = vec![Cell::Int(*ms as i64)];
        for workload in &workloads {
            let result = run_point(EngineKind::Doppel, workload, &config);
            eprintln!(
                "  phase={ms}ms {}: mean read {:.0}us ({} stashed)",
                workload.name(),
                result.read_latency.mean_us,
                result.stashed
            );
            row.push(Cell::Micros(result.read_latency.mean_us));
        }
        table.push_row(row);
    }

    emit(&table, "fig13", &args);
}
