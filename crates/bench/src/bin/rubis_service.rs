//! Networked RUBiS: the bidding mix over TCP via `InvokeProc`.
//!
//! For each engine the binary starts a real `Server` (the `doppel-server`
//! guts) with the RUBiS procedure pack registered and the dataset preloaded,
//! then drives it from per-core client threads over actual sockets. Clients
//! pipeline `--pipeline` invocations per batch (`RemoteClient::submit_batch`
//! writes every frame before the first wait), so the wire round trip is
//! amortised across a window instead of paid per transaction. Latency is
//! measured from each batch's submission instant to each completion.
//!
//! Next to throughput and the p50/p95/p99 tail, the run prints the
//! per-procedure statistics table (invocations / commits / aborts /
//! stash-deferrals per registered RUBiS transaction) — the accounting the
//! procedure registry provides for free.
//!
//! Run with `--help` (`cargo run --release --bin rubis_service -- --help`)
//! for the full flag list.

use doppel_bench::{emit, Args, EngineKind, ExperimentConfig};
use doppel_rubis::{rubis_registry, RubisData, RubisScale, RubisWorkload, TxnStyle};
use doppel_service::{RemoteClient, RemoteOutcome, Server, ServerEngine, ServiceConfig};
use doppel_workloads::hist::Histogram;
use doppel_workloads::report::{
    alloc_stat_cells, latency_cells, proc_stats_table, service_stat_cells, Cell, Table,
    ALLOC_STAT_COLUMNS, LATENCY_COLUMNS, SERVICE_STAT_COLUMNS,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct ClientTally {
    committed: u64,
    aborted: u64,
    rejected: u64,
    latency: Histogram,
}

fn main() {
    let args = Args::from_env_or_usage_excluding(
        "Networked RUBiS: the bidding mix over TCP via InvokeProc, pipelined batches",
        &["keys"],
        &[
            "  --engines LIST   comma-separated engines (default doppel,occ)",
            "  --pipeline N     invocations pipelined per batch (default 32)",
            "  --classic        use the classic read-modify-write transaction style",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let pipeline = args.get_usize("pipeline", 32).max(1);
    let style = if args.flag("classic") { TxnStyle::Classic } else { TxnStyle::Doppel };
    let scale = if args.flag("full") {
        RubisScale::paper()
    } else {
        RubisScale { users: 2_000, items: 200, categories: 5, regions: 4 }
    };
    let engines: Vec<EngineKind> = args
        .get("engines")
        .unwrap_or("doppel,occ")
        .split(',')
        .map(|name| {
            EngineKind::from_name(name.trim())
                .unwrap_or_else(|| panic!("unknown engine {name:?} in --engines"))
        })
        .collect();
    let workload = RubisWorkload::bidding(scale, style);

    let mut table = Table::new(
        format!(
            "Networked RUBiS-B[{style:?}] via InvokeProc ({} clients, pipeline {}, {} users, \
             {} items, {:.1}s per engine)",
            config.cores, pipeline, scale.users, scale.items, config.seconds
        ),
        &[
            &["engine", "done/s", "aborts", "rejected"][..],
            LATENCY_COLUMNS,
            SERVICE_STAT_COLUMNS,
            ALLOC_STAT_COLUMNS,
        ]
        .concat(),
    );

    for kind in &engines {
        // The server side: a fresh engine with the RUBiS pack registered and
        // the dataset preloaded (a remote client cannot call Engine::load).
        let registry = rubis_registry();
        let engine = ServerEngine::build(
            &kind.label().to_ascii_lowercase(),
            config.cores,
            config.phase_len.as_millis() as u64,
            config.shards,
        )
        .expect("known engine")
        .with_procs(Arc::clone(&registry));
        RubisData::new(scale).load(engine.engine.as_ref());
        let server =
            Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind server");
        let addr = server.local_addr();

        let duration = Duration::from_secs_f64(config.seconds);
        // Snapshot before the measured window so the reported counters are a
        // delta over it — the dataset load above commits transactions too,
        // and those must not pollute the service columns.
        let stats_before = server.service().stats();
        // Allocation window covers this engine's measured run: clients,
        // server threads and engine workers all count into the process total.
        let alloc_cp = doppel_common::AllocCheckpoint::now();
        let started = Instant::now();
        let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(config.cores);
            for core in 0..config.cores {
                let mut gen = workload.call_generator(core, 0xD0_99E1 + core as u64);
                let join = scope.spawn(move || {
                    let mut client = RemoteClient::connect(addr).expect("connect to server");
                    let mut tally = ClientTally::default();
                    let deadline = started + duration;
                    let mut batch: Vec<(&str, doppel_common::Args)> =
                        Vec::with_capacity(pipeline);
                    while Instant::now() < deadline {
                        batch.clear();
                        for _ in 0..pipeline {
                            let call = gen.next_call();
                            batch.push((call.name, call.args));
                        }
                        let submitted = Instant::now();
                        let ids = client.submit_batch(&batch).expect("submit batch");
                        for id in ids {
                            match client.wait(id).expect("completion") {
                                RemoteOutcome::Committed { .. } => {
                                    tally.committed += 1;
                                    tally.latency.record(submitted.elapsed());
                                }
                                RemoteOutcome::Aborted { .. } => tally.aborted += 1,
                                RemoteOutcome::Rejected { .. } => tally.rejected += 1,
                            }
                        }
                    }
                    tally
                });
                joins.push(join);
            }
            joins.into_iter().map(|j| j.join().expect("client thread panicked")).collect()
        });
        let elapsed = started.elapsed().as_secs_f64();
        let (alloc_count, alloc_bytes) = alloc_cp.delta();

        let mut totals = ClientTally::default();
        for t in &tallies {
            totals.committed += t.committed;
            totals.aborted += t.aborted;
            totals.rejected += t.rejected;
            totals.latency.merge(&t.latency);
        }
        let stats = server
            .service()
            .stats()
            .delta(&stats_before)
            .with_alloc_counters(alloc_count, alloc_bytes);
        server.shutdown();

        let mut row = vec![
            Cell::Text(kind.label().to_string()),
            Cell::Mtps(totals.committed as f64 / elapsed),
            Cell::Int(totals.aborted as i64),
            Cell::Int(totals.rejected as i64),
        ];
        row.extend(latency_cells(&totals.latency.summary()));
        row.extend(service_stat_cells(&stats));
        row.extend(alloc_stat_cells(&stats));
        table.push_row(row);

        // The per-procedure accounting the registry keeps for free.
        println!(
            "{}",
            proc_stats_table(format!("{} per-procedure statistics", kind.label()), &registry.stats())
        );
    }

    emit(&table, "rubis_service", &args);
}
