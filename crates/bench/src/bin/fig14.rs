//! Figure 14: Doppel throughput as a function of the phase length, for the
//! same three LIKE workloads as Figure 13. Very short phases lose throughput
//! to phase-change overhead; long phases amortise it.
//!
//! Run with `--help` (`cargo run --release --bin fig14 -- --help`)
//! for the full flag list.

use doppel_bench::{emit, run_point, Args, EngineKind, ExperimentConfig};
use doppel_workloads::driver::Workload;
use doppel_workloads::like::LikeWorkload;
use doppel_workloads::report::{Cell, Table};
use std::time::Duration;

fn main() {
    // The phase length is swept, so --phase-ms would be ignored: exclude it.
    let args = Args::from_env_or_usage_excluding(
        "Figure 14: Doppel throughput vs phase length on three LIKE workloads",
        &["phase-ms"],
        &[],
    );
    let mut config = ExperimentConfig::from_args(&args);
    let phase_lengths_ms: Vec<u64> = if args.flag("full") {
        vec![1, 2, 5, 10, 20, 40, 60, 80, 100]
    } else {
        vec![2, 5, 10, 20, 40]
    };
    let users = config.keys;
    let pages = config.keys;

    let mut table = Table::new(
        format!(
            "Figure 14: Doppel throughput (txns/sec) vs phase length ({} cores, {} users/pages, \
             {:.1}s per point)",
            config.cores, users, config.seconds
        ),
        &["phase (ms)", "Uniform", "Contentious", "Contentious Write Heavy"],
    );

    let workloads = [
        LikeWorkload::uniform(users, pages),
        LikeWorkload::skewed(users, pages),
        LikeWorkload::skewed_write_heavy(users, pages),
    ];

    for ms in &phase_lengths_ms {
        config.phase_len = Duration::from_millis(*ms);
        let mut row: Vec<Cell> = vec![Cell::Int(*ms as i64)];
        for workload in &workloads {
            let result = run_point(EngineKind::Doppel, workload, &config);
            eprintln!(
                "  phase={ms}ms {}: {:.0} txns/sec",
                workload.name(),
                result.throughput
            );
            row.push(Cell::Mtps(result.throughput));
        }
        table.push_row(row);
    }

    emit(&table, "fig14", &args);
}
