//! Service experiment: latency vs offered load through the transaction
//! service.
//!
//! For each engine the binary first measures closed-loop capacity (the
//! ordinary [`Driver::run`] path, which already goes through the service),
//! then replays the same workload open-loop at several offered-load levels —
//! fractions of that capacity — reporting completed throughput, p50/p95/p99
//! latency, busy-rejection shedding and the submission-queue counters next
//! to the WAL counters.
//!
//! Run with `--help` (`cargo run --release --bin service -- --help`)
//! for the full flag list.

use doppel_bench::{build_engine, emit, Args, EngineKind, ExperimentConfig};
use doppel_workloads::incr::Incr1Workload;
use doppel_workloads::open_loop::{run_open_loop, OpenLoopOptions};
use doppel_workloads::report::{
    alloc_stat_cells, latency_cells, service_stat_cells, wal_stat_cells, Cell, Table,
    ALLOC_STAT_COLUMNS, LATENCY_COLUMNS, SERVICE_STAT_COLUMNS, WAL_STAT_COLUMNS,
};
use doppel_workloads::Driver;
use std::time::Duration;

fn main() {
    let args = Args::from_env_or_usage(
        "Service: open-loop latency vs offered load through the transaction service",
        &[
            "  --engines LIST   comma-separated engines (default doppel,occ)",
            "  --loads LIST     offered loads as fractions of measured capacity (default 0.5,0.8,1.2)",
            "  --queue-depth N  per-core submission queue cap (default 1024)",
            "  --hot PCT        % of transactions writing the hot key (default 10)",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let hot = args.get_f64("hot", 10.0) / 100.0;
    let queue_depth = args.get_usize("queue-depth", 1024);
    let engines: Vec<EngineKind> = args
        .get("engines")
        .unwrap_or("doppel,occ")
        .split(',')
        .map(|name| {
            EngineKind::from_name(name.trim())
                .unwrap_or_else(|| panic!("unknown engine {name:?} in --engines"))
        })
        .collect();
    let loads: Vec<f64> = args
        .get("loads")
        .unwrap_or("0.5,0.8,1.2")
        .split(',')
        .map(|frac| frac.trim().parse().expect("--loads expects numbers"))
        .collect();
    let workload = Incr1Workload::new(config.keys, hot);

    let mut table = Table::new(
        format!(
            "Service: open-loop latency vs offered load, INCR1 {}% hot ({} cores, {} keys, \
             {:.1}s per point, queue depth {})",
            hot * 100.0,
            config.cores,
            config.keys,
            config.seconds,
            queue_depth,
        ),
        &[
            &["engine", "offered/s", "done/s", "busy%"][..],
            LATENCY_COLUMNS,
            SERVICE_STAT_COLUMNS,
            WAL_STAT_COLUMNS,
            ALLOC_STAT_COLUMNS,
        ]
        .concat(),
    );

    for kind in &engines {
        // Closed-loop capacity probe: the same service path the open-loop
        // runs use, so the capacity estimate includes queue overhead.
        let capacity = {
            let engine = build_engine(*kind, &config.engine_params());
            let result = Driver::run(engine.as_ref(), &workload, &config.bench_options());
            engine.shutdown();
            result.throughput
        };
        for fraction in &loads {
            let offered = (capacity * fraction).max(1_000.0);
            let engine = build_engine(*kind, &config.engine_params());
            let options = OpenLoopOptions {
                workers: config.cores,
                clients: config.cores,
                offered_load: offered,
                duration: Duration::from_secs_f64(config.seconds),
                queue_depth,
                ..Default::default()
            };
            let result = run_open_loop(engine.as_ref(), &workload, &options);
            engine.shutdown();
            let attempts = result.submitted + result.busy_rejected;
            let busy_pct = if attempts == 0 {
                0.0
            } else {
                100.0 * result.busy_rejected as f64 / attempts as f64
            };
            let mut row = vec![
                Cell::Text(format!("{} x{:.2}", kind.label(), fraction)),
                Cell::Int(result.offered_load as i64),
                Cell::Mtps(result.throughput),
                Cell::Float(busy_pct),
            ];
            row.extend(latency_cells(&result.latency));
            row.extend(service_stat_cells(&result.engine_stats));
            row.extend(wal_stat_cells(&result.engine_stats));
            row.extend(alloc_stat_cells(&result.engine_stats));
            table.push_row(row);
        }
    }

    emit(&table, "service", &args);
}
