//! Connection scaling: the epoll reactor vs thread-per-connection.
//!
//! The threaded front-end spends two OS threads per connection; the reactor
//! multiplexes every connection over a small poller pool. This experiment
//! scales the open-connection count well past where the per-connection
//! threads become the bottleneck and reports throughput and tail latency for
//! both front-ends at each point, plus the front-end health counters (shed
//! connections, accept errors) so a degraded run is visible as such.
//!
//! Each client thread owns a slice of the connections and drives them in
//! pipelined windows: it submits `--pipeline` transactions on *every* owned
//! connection before waiting on any, so all connections have bytes in flight
//! simultaneously — the shape that exposes a front-end's multiplexing cost,
//! not the engine's (a tiny add/get transaction keeps the engine out of the
//! way).
//!
//! Run with `--help` (`cargo run --release --bin connections -- --help`)
//! for the full flag list.

use doppel_bench::{emit, Args, ExperimentConfig};
use doppel_service::{
    FrontEnd, ReactorConfig, RemoteClient, RemoteOutcome, RemoteTxn, Server, ServerEngine,
    ServiceConfig,
};
use doppel_workloads::hist::Histogram;
use doppel_workloads::report::{
    alloc_stat_cells, latency_cells, Cell, Table, ALLOC_STAT_COLUMNS, LATENCY_COLUMNS,
};
use std::time::{Duration, Instant};

#[derive(Default)]
struct ClientTally {
    committed: u64,
    aborted: u64,
    rejected: u64,
    dead_conns: u64,
    latency: Histogram,
}

fn front_end_by_name(name: &str) -> Option<FrontEnd> {
    match name {
        "reactor" => Some(FrontEnd::Reactor(ReactorConfig::default())),
        "threaded" => Some(FrontEnd::threaded()),
        _ => None,
    }
}

/// One pipelined window on one connection: submit every transaction, then
/// wait for every completion. Any I/O error means the server hung up on this
/// connection (e.g. shed); the caller retires it.
fn drive_window(
    client: &mut RemoteClient,
    txn: &RemoteTxn,
    pipeline: usize,
    tally: &mut ClientTally,
) -> bool {
    let submitted = Instant::now();
    let mut ids = Vec::with_capacity(pipeline);
    for _ in 0..pipeline {
        match client.submit(txn) {
            Ok(id) => ids.push(id),
            Err(_) => {
                tally.dead_conns += 1;
                return false;
            }
        }
    }
    for id in ids {
        match client.wait(id) {
            Ok(RemoteOutcome::Committed { .. }) => {
                tally.committed += 1;
                tally.latency.record(submitted.elapsed());
            }
            Ok(RemoteOutcome::Aborted { .. }) => tally.aborted += 1,
            Ok(RemoteOutcome::Rejected { .. }) => tally.rejected += 1,
            Err(_) => {
                tally.dead_conns += 1;
                return false;
            }
        }
    }
    true
}

fn main() {
    let args = Args::from_env_or_usage_excluding(
        "Connection scaling: reactor vs thread-per-connection front-ends",
        &["keys"],
        &[
            "  --front-ends LIST  comma-separated front-ends (default reactor,threaded)",
            "  --conns LIST     comma-separated connection counts (default 4,16,64)",
            "  --pipeline N     transactions pipelined per window (default 16)",
            "  --engine NAME    engine behind the service (default occ)",
        ],
    );
    let config = ExperimentConfig::from_args(&args);
    let pipeline = args.get_usize("pipeline", 16).max(1);
    let engine_name = args.get("engine").unwrap_or("occ").to_string();
    let front_ends: Vec<(String, FrontEnd)> = args
        .get("front-ends")
        .unwrap_or("reactor,threaded")
        .split(',')
        .map(|name| {
            let name = name.trim().to_ascii_lowercase();
            let fe = front_end_by_name(&name)
                .unwrap_or_else(|| panic!("unknown front-end {name:?} (reactor | threaded)"));
            (name, fe)
        })
        .collect();
    let conn_counts: Vec<usize> = args
        .get("conns")
        .unwrap_or("4,16,64")
        .split(',')
        .map(|n| n.trim().parse().expect("--conns expects a comma-separated list of integers"))
        .filter(|&n| n > 0)
        .collect();

    let mut table = Table::new(
        format!(
            "Connection scaling ({engine_name}, pipeline {}, {} client threads, {:.1}s per cell)",
            pipeline, config.cores, config.seconds
        ),
        &[
            &["front-end", "conns", "done/s", "rejected", "dead"][..],
            LATENCY_COLUMNS,
            &["shed", "acc-err"][..],
            ALLOC_STAT_COLUMNS,
        ]
        .concat(),
    );

    for (fe_name, front_end) in &front_ends {
        for &conns in &conn_counts {
            let engine = ServerEngine::build(
                &engine_name,
                config.cores,
                config.phase_len.as_millis() as u64,
                config.shards,
            )
            .unwrap_or_else(|| panic!("unknown engine {engine_name:?}"));
            let server = Server::start_with(
                engine,
                ServiceConfig::default(),
                "127.0.0.1:0",
                front_end.clone(),
            )
            .expect("bind server");
            let addr = server.local_addr();

            // Client threads each own a slice of the connections.
            let threads = config.cores.min(conns).max(1);
            let stats_before = server.service().stats();
            let duration = Duration::from_secs_f64(config.seconds);
            // Allocation window per cell: covers clients, front-end and
            // engine workers together.
            let alloc_cp = doppel_common::AllocCheckpoint::now();
            let started = Instant::now();
            let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
                let mut joins = Vec::with_capacity(threads);
                for t in 0..threads {
                    let owned = (conns + threads - 1 - t) / threads;
                    let join = scope.spawn(move || {
                        let mut tally = ClientTally::default();
                        let mut clients: Vec<RemoteClient> = (0..owned)
                            .filter_map(|_| RemoteClient::connect(addr).ok())
                            .collect();
                        tally.dead_conns += (owned - clients.len()) as u64;
                        // Spread each connection over its own key to keep
                        // engine-side conflicts out of the measurement.
                        let txns: Vec<RemoteTxn> = (0..clients.len())
                            .map(|i| {
                                let key = doppel_common::Key::from((t * conns + i) as u64);
                                RemoteTxn::new().add(key, 1).get(key)
                            })
                            .collect();
                        let deadline = started + duration;
                        while Instant::now() < deadline && !clients.is_empty() {
                            let mut alive = Vec::with_capacity(clients.len());
                            for (mut client, txn) in clients.into_iter().zip(&txns) {
                                if drive_window(&mut client, txn, pipeline, &mut tally) {
                                    alive.push(client);
                                }
                            }
                            clients = alive;
                        }
                        tally
                    });
                    joins.push(join);
                }
                joins.into_iter().map(|j| j.join().expect("client thread panicked")).collect()
            });
            let elapsed = started.elapsed().as_secs_f64();
            let (alloc_count, alloc_bytes) = alloc_cp.delta();

            let mut totals = ClientTally::default();
            for t in &tallies {
                totals.committed += t.committed;
                totals.aborted += t.aborted;
                totals.rejected += t.rejected;
                totals.dead_conns += t.dead_conns;
                totals.latency.merge(&t.latency);
            }
            let net = server.net_stats();
            // The measured window's engine-side counters: the same
            // before/after delta the in-process drivers report, so the alloc
            // cells (including allocs-per-committed-txn) render uniformly.
            let stats = server
                .service()
                .stats()
                .delta(&stats_before)
                .with_alloc_counters(alloc_count, alloc_bytes);
            server.shutdown();

            let mut row = vec![
                Cell::Text(fe_name.clone()),
                Cell::Int(conns as i64),
                Cell::Mtps(totals.committed as f64 / elapsed),
                Cell::Int(totals.rejected as i64),
                Cell::Int(totals.dead_conns as i64),
            ];
            row.extend(latency_cells(&totals.latency.summary()));
            row.push(Cell::Int(net.conns_shed as i64));
            row.push(Cell::Int(net.accept_errors as i64));
            row.extend(alloc_stat_cells(&stats));
            table.push_row(row);
        }
    }

    emit(&table, "connections", &args);
}
