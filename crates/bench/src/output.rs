//! Output handling shared by the experiment binaries.

use crate::args::Args;
use doppel_workloads::report::Table;
use std::fs;
use std::path::PathBuf;

/// Prints the table to stdout and, when `--out <dir>` was given, also writes
/// `<dir>/<slug>.json` and `<dir>/<slug>.txt`.
pub fn emit(table: &Table, slug: &str, args: &Args) {
    println!("{table}");
    if let Some(dir) = args.get("out") {
        let dir = PathBuf::from(dir);
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create output directory {}: {e}", dir.display());
            return;
        }
        let json_path = dir.join(format!("{slug}.json"));
        let txt_path = dir.join(format!("{slug}.txt"));
        if let Err(e) = fs::write(&json_path, table.to_json()) {
            eprintln!("warning: could not write {}: {e}", json_path.display());
        }
        if let Err(e) = fs::write(&txt_path, table.render()) {
            eprintln!("warning: could not write {}: {e}", txt_path.display());
        }
        eprintln!("wrote {} and {}", json_path.display(), txt_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_workloads::report::Cell;

    #[test]
    fn emit_writes_files_when_out_given() {
        let dir = std::env::temp_dir().join(format!("doppel-bench-test-{}", std::process::id()));
        let mut table = Table::new("t", &["a"]);
        table.push_row(vec![Cell::Int(1)]);
        let args = Args::parse(vec!["--out".to_string(), dir.display().to_string()]);
        emit(&table, "unit", &args);
        assert!(dir.join("unit.json").exists());
        assert!(dir.join("unit.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn emit_without_out_only_prints() {
        let mut table = Table::new("t", &["a"]);
        table.push_row(vec![Cell::Int(1)]);
        emit(&table, "unit", &Args::default());
    }
}
