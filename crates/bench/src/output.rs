//! Output handling shared by the experiment binaries.

use crate::args::Args;
use crate::engines::EngineKind;
use doppel_workloads::report::{Cell, Table};
use serde::Serialize;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the cumulative benchmark-trajectory file inside an `--out`
/// directory: every emitted table appends one JSON line per `(engine,
/// throughput)` data point, so successive runs (and successive PRs running
/// against the same directory) accumulate a comparable performance history.
pub const TRAJECTORY_FILE: &str = "BENCH_results.json";

/// One line of the benchmark trajectory.
#[derive(Debug, Serialize)]
struct TrajectoryEntry {
    /// Experiment slug ("fig8", "recovery", …).
    slug: String,
    /// Engine name the throughput belongs to.
    engine: String,
    /// Transactions per second.
    throughput: f64,
    /// Seconds since the Unix epoch when the table was emitted.
    unix_ts: u64,
}

/// Prints the table to stdout and, when `--out <dir>` was given, also writes
/// `<dir>/<slug>.json` and `<dir>/<slug>.txt` and appends the table's
/// throughput points to `<dir>/BENCH_results.json` (one JSON object per
/// line).
pub fn emit(table: &Table, slug: &str, args: &Args) {
    println!("{table}");
    let (allocs, bytes) = doppel_common::alloc::alloc_totals();
    println!("heap: {allocs} allocations, {:.1} MB since process start\n", bytes as f64 / 1e6);
    if let Some(dir) = args.get("out") {
        let dir = PathBuf::from(dir);
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create output directory {}: {e}", dir.display());
            return;
        }
        let json_path = dir.join(format!("{slug}.json"));
        let txt_path = dir.join(format!("{slug}.txt"));
        if let Err(e) = fs::write(&json_path, table.to_json()) {
            eprintln!("warning: could not write {}: {e}", json_path.display());
        }
        if let Err(e) = fs::write(&txt_path, table.render()) {
            eprintln!("warning: could not write {}: {e}", txt_path.display());
        }
        if let Err(e) = append_trajectory(&dir, slug, table) {
            eprintln!("warning: could not append to {TRAJECTORY_FILE}: {e}");
        }
        eprintln!("wrote {} and {}", json_path.display(), txt_path.display());
    }
}

/// Extracts `(engine, throughput)` points from a table. Two table shapes
/// exist in this workspace:
///
/// * engine-per-row (a column headed "engine" holds the name; the row's first
///   [`Cell::Mtps`] is its throughput) — e.g. `table1`, `recovery`;
/// * engine-per-column (columns headed "Doppel" / "OCC" / "2PL" / "Atomic"
///   hold [`Cell::Mtps`] cells) — e.g. `fig8`; every data point is reported.
fn throughput_points(table: &Table) -> Vec<(String, f64)> {
    let mut points = Vec::new();
    let engine_col = table.columns.iter().position(|c| c.eq_ignore_ascii_case("engine"));
    if let Some(e) = engine_col {
        for row in &table.rows {
            let Some(Cell::Text(engine)) = row.get(e) else { continue };
            if let Some(tput) = row.iter().find_map(|c| match c {
                Cell::Mtps(x) => Some(*x),
                _ => None,
            }) {
                points.push((engine.clone(), tput));
            }
        }
        return points;
    }
    for (i, col) in table.columns.iter().enumerate() {
        if EngineKind::from_name(col).is_none() {
            continue;
        }
        for row in &table.rows {
            if let Some(Cell::Mtps(x)) = row.get(i) {
                points.push((col.clone(), *x));
            }
        }
    }
    points
}

fn append_trajectory(dir: &Path, slug: &str, table: &Table) -> std::io::Result<()> {
    let points = throughput_points(table);
    if points.is_empty() {
        return Ok(());
    }
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut file =
        fs::OpenOptions::new().create(true).append(true).open(dir.join(TRAJECTORY_FILE))?;
    for (engine, throughput) in points {
        let entry = TrajectoryEntry { slug: slug.to_string(), engine, throughput, unix_ts };
        let line = serde_json::to_string(&entry).expect("trajectory entries always serialize");
        writeln!(file, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    // The previous test directory here was keyed on `process::id()` alone,
    // which collides when several test binaries (or threads) run
    // concurrently. `TempWalDir` is unique per use site and cleans up on
    // drop, even when an assertion fails.
    use doppel_wal::TempWalDir;
    use doppel_workloads::report::Cell;

    #[test]
    fn emit_writes_files_when_out_given() {
        let dir = TempWalDir::new("bench-emit");
        let mut table = Table::new("t", &["a"]);
        table.push_row(vec![Cell::Int(1)]);
        let args = Args::parse(vec!["--out".to_string(), dir.path().display().to_string()]);
        emit(&table, "unit", &args);
        assert!(dir.path().join("unit.json").exists());
        assert!(dir.path().join("unit.txt").exists());
        // No throughput cells → no trajectory file.
        assert!(!dir.path().join(TRAJECTORY_FILE).exists());
    }

    #[test]
    fn emit_without_out_only_prints() {
        let mut table = Table::new("t", &["a"]);
        table.push_row(vec![Cell::Int(1)]);
        emit(&table, "unit", &Args::default());
    }

    #[test]
    fn trajectory_appends_engine_rows() {
        let dir = TempWalDir::new("bench-traj-rows");
        let mut table = Table::new("t", &["engine", "throughput", "fsyncs"]);
        table.push_row(vec!["Doppel".into(), Cell::Mtps(2e6), Cell::Int(3)]);
        table.push_row(vec!["OCC".into(), Cell::Mtps(1e6), Cell::Int(9)]);
        let args = Args::parse(vec!["--out".to_string(), dir.path().display().to_string()]);
        emit(&table, "recovery", &args);
        emit(&table, "recovery", &args); // cumulative: appends, never truncates
        let text = fs::read_to_string(dir.path().join(TRAJECTORY_FILE)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"slug\":\"recovery\""));
        assert!(lines[0].contains("\"engine\":\"Doppel\""));
        assert!(lines[1].contains("\"engine\":\"OCC\""));
        assert!(lines[1].contains("1000000"));
    }

    #[test]
    fn trajectory_handles_engine_per_column_tables() {
        let mut table = Table::new("t", &["hot%", "Doppel", "OCC"]);
        table.push_row(vec![Cell::Int(10), Cell::Mtps(5e6), Cell::Mtps(2e6)]);
        table.push_row(vec![Cell::Int(20), Cell::Mtps(6e6), Cell::Mtps(1e6)]);
        let points = throughput_points(&table);
        assert_eq!(points.len(), 4);
        assert!(points.contains(&("Doppel".to_string(), 6e6)));
        assert!(points.contains(&("OCC".to_string(), 2e6)));
    }
}
