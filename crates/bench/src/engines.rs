//! Engine construction for the experiment binaries.

use doppel_atomic::AtomicEngine;
use doppel_common::{DoppelConfig, Engine};
use doppel_db::DoppelDb;
use doppel_occ::OccEngine;
use doppel_twopl::TwoplEngine;
use std::time::Duration;

/// The four concurrency-control schemes compared throughout §8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Phase reconciliation (this paper's system).
    Doppel,
    /// Silo-style optimistic concurrency control.
    Occ,
    /// Two-phase locking.
    Twopl,
    /// Atomic hardware operations, no concurrency control (upper bound for
    /// locking on single-record increments).
    Atomic,
}

impl EngineKind {
    /// Engine name as printed in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Doppel => "Doppel",
            EngineKind::Occ => "OCC",
            EngineKind::Twopl => "2PL",
            EngineKind::Atomic => "Atomic",
        }
    }

    /// The three transactional engines (used by experiments where Atomic does
    /// not apply, e.g. LIKE and RUBiS).
    pub const TRANSACTIONAL: &'static [EngineKind] =
        &[EngineKind::Doppel, EngineKind::Occ, EngineKind::Twopl];

    /// All four engines (INCR microbenchmarks).
    pub const ALL: &'static [EngineKind] =
        &[EngineKind::Doppel, EngineKind::Occ, EngineKind::Twopl, EngineKind::Atomic];

    /// Parses an engine name (case-insensitive).
    pub fn from_name(name: &str) -> Option<EngineKind> {
        match name.to_ascii_lowercase().as_str() {
            "doppel" => Some(EngineKind::Doppel),
            "occ" => Some(EngineKind::Occ),
            "2pl" | "twopl" => Some(EngineKind::Twopl),
            "atomic" => Some(EngineKind::Atomic),
            _ => None,
        }
    }
}

/// Parameters for engine construction.
#[derive(Clone, Debug)]
pub struct EngineParams {
    /// Number of worker threads.
    pub workers: usize,
    /// Store shards.
    pub shards: usize,
    /// Doppel phase length.
    pub phase_len: Duration,
    /// Disable splitting (Doppel ablation).
    pub disable_splitting: bool,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            workers: 4,
            shards: 1024,
            phase_len: Duration::from_millis(20),
            disable_splitting: false,
        }
    }
}

/// Builds an engine of the given kind. Doppel is started with its automatic
/// coordinator running.
pub fn build_engine(kind: EngineKind, params: &EngineParams) -> Box<dyn Engine> {
    match kind {
        EngineKind::Doppel => {
            let config = DoppelConfig {
                workers: params.workers,
                store_shards: params.shards,
                phase_len: params.phase_len,
                enable_splitting: !params.disable_splitting,
                ..DoppelConfig::default()
            };
            Box::new(DoppelDb::start(config))
        }
        EngineKind::Occ => Box::new(OccEngine::new(params.workers, params.shards)),
        EngineKind::Twopl => Box::new(TwoplEngine::new(params.workers, params.shards)),
        EngineKind::Atomic => Box::new(AtomicEngine::new(params.workers)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{Key, ProcedureFn, Value};
    use std::sync::Arc;

    #[test]
    fn labels_and_parsing() {
        assert_eq!(EngineKind::Doppel.label(), "Doppel");
        assert_eq!(EngineKind::from_name("doppel"), Some(EngineKind::Doppel));
        assert_eq!(EngineKind::from_name("OCC"), Some(EngineKind::Occ));
        assert_eq!(EngineKind::from_name("2pl"), Some(EngineKind::Twopl));
        assert_eq!(EngineKind::from_name("atomic"), Some(EngineKind::Atomic));
        assert_eq!(EngineKind::from_name("mystery"), None);
        assert_eq!(EngineKind::ALL.len(), 4);
        assert_eq!(EngineKind::TRANSACTIONAL.len(), 3);
    }

    #[test]
    fn every_engine_builds_and_commits() {
        let params = EngineParams { workers: 1, ..Default::default() };
        for kind in EngineKind::ALL {
            let engine = build_engine(*kind, &params);
            engine.load(Key::raw(1), Value::Int(0));
            let mut h = engine.handle(0);
            let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
            assert!(h.execute(proc).is_committed(), "{:?} failed to commit", kind);
            assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(1)));
            assert_eq!(engine.name(), kind.label());
            engine.shutdown();
        }
    }
}
