//! Minimal `--flag value` command-line parsing for the experiment binaries.
//!
//! The binaries take a handful of numeric flags (`--cores`, `--seconds`,
//! `--keys`, `--alpha`, …) plus boolean switches (`--full`, `--json`). A full
//! argument-parsing dependency is not justified for this, so this module
//! implements the little that is needed.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (everything after the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(name.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(name.to_string()),
                }
            } else {
                // Bare positional arguments are ignored.
            }
        }
        Args { values, flags }
    }

    /// True if the boolean switch `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name) || self.values.contains_key(name)
    }

    /// String value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// `--name` parsed as `u64`, or `default`.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name).map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects an integer"))).unwrap_or(default)
    }

    /// `--name` parsed as `usize`, or `default`.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get_u64(name, default as u64) as usize
    }

    /// `--name` parsed as `f64`, or `default`.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name).map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number"))).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--cores 8 --alpha 1.4 --full --seconds 0.5");
        assert_eq!(a.get_u64("cores", 1), 8);
        assert_eq!(a.get_usize("cores", 1), 8);
        assert!((a.get_f64("alpha", 0.0) - 1.4).abs() < 1e-12);
        assert!((a.get_f64("seconds", 1.0) - 0.5).abs() < 1e-12);
        assert!(a.flag("full"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args("--full");
        assert_eq!(a.get_u64("cores", 4), 4);
        assert_eq!(a.get_f64("alpha", 1.4), 1.4);
        assert_eq!(a.get("cores"), None);
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = args("--rating -3");
        assert_eq!(a.get_f64("rating", 0.0), -3.0);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = args("--cores banana");
        let _ = a.get_u64("cores", 1);
    }
}
