//! Minimal `--flag value` command-line parsing for the experiment binaries.
//!
//! The binaries take a handful of numeric flags (`--cores`, `--seconds`,
//! `--keys`, `--alpha`, …) plus boolean switches (`--full`, `--json`). A full
//! argument-parsing dependency is not justified for this, so this module
//! implements the little that is needed.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

/// The flags the measured-experiment binaries share, as (flag, help line)
/// pairs (the values come from
/// [`crate::experiment::ExperimentConfig::from_args`] and
/// [`crate::output::emit`]). Kept as individual entries so a binary that
/// sweeps one of these parameters can exclude just that flag from its
/// `--help` instead of advertising a flag it ignores.
pub const COMMON_FLAGS: &[(&str, &str)] = &[
    ("full", "  --full           paper-scale parameters (default: laptop-scale, seconds per point)"),
    ("cores", "  --cores N        worker threads per engine"),
    ("seconds", "  --seconds S      measured seconds per (engine, workload) point"),
    ("keys", "  --keys N         number of records in the store"),
    ("phase-ms", "  --phase-ms MS    Doppel phase length in milliseconds"),
    ("shards", "  --shards N       store shard count"),
    ("out", "  --out DIR        also write the table as DIR/<slug>.{json,txt}"),
];

impl Args {
    /// Parses the process arguments (everything after the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Like [`Args::from_env`], but `--help`/`-h` prints a usage message and
    /// exits. `summary` is a one-line description of the binary;
    /// `extra_flags` lists binary-specific flags (formatted like
    /// [`COMMON_FLAGS`] lines) appended to the common flag set.
    pub fn from_env_or_usage(summary: &str, extra_flags: &[&str]) -> Self {
        Self::from_env_or_usage_excluding(summary, &[], extra_flags)
    }

    /// Like [`Args::from_env_or_usage`] for binaries that sweep one of the
    /// common parameters: the flags named in `excluded` are dropped from the
    /// `--help` output so a swept (and therefore ignored) flag is never
    /// advertised.
    pub fn from_env_or_usage_excluding(
        summary: &str,
        excluded: &[&str],
        extra_flags: &[&str],
    ) -> Self {
        let common: Vec<&str> = COMMON_FLAGS
            .iter()
            .filter(|(name, _)| !excluded.contains(name))
            .map(|(_, line)| *line)
            .collect();
        Self::usage_with_flag_lines(summary, &common, extra_flags)
    }

    /// Like [`Args::from_env_or_usage`] but without the common flag set, for
    /// binaries that don't run measured experiments (e.g. purely analytic
    /// tables) and would otherwise advertise flags they ignore.
    pub fn from_env_or_custom_usage(summary: &str, flags: &[&str]) -> Self {
        Self::usage_with_flag_lines(summary, &[], flags)
    }

    fn usage_with_flag_lines(summary: &str, blocks: &[&str], lines: &[&str]) -> Self {
        if std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
            let bin = std::env::args()
                .next()
                .map(|p| {
                    std::path::Path::new(&p)
                        .file_name()
                        .map(|f| f.to_string_lossy().into_owned())
                        .unwrap_or(p)
                })
                .unwrap_or_else(|| "experiment".to_string());
            println!("{bin}: {summary}\n\nUsage: {bin} [FLAGS]\n\nFlags:");
            for block in blocks {
                println!("{block}");
            }
            for line in lines {
                println!("{line}");
            }
            println!("  --help           print this message");
            std::process::exit(0);
        }
        Self::from_env()
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(name.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(name.to_string()),
                }
            } else {
                // Bare positional arguments are ignored.
            }
        }
        Args { values, flags }
    }

    /// True if the boolean switch `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name) || self.values.contains_key(name)
    }

    /// String value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// `--name` parsed as `u64`, or `default`.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name).map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects an integer"))).unwrap_or(default)
    }

    /// `--name` parsed as `usize`, or `default`.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get_u64(name, default as u64) as usize
    }

    /// `--name` parsed as `f64`, or `default`.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name).map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number"))).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--cores 8 --alpha 1.4 --full --seconds 0.5");
        assert_eq!(a.get_u64("cores", 1), 8);
        assert_eq!(a.get_usize("cores", 1), 8);
        assert!((a.get_f64("alpha", 0.0) - 1.4).abs() < 1e-12);
        assert!((a.get_f64("seconds", 1.0) - 0.5).abs() < 1e-12);
        assert!(a.flag("full"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args("--full");
        assert_eq!(a.get_u64("cores", 4), 4);
        assert_eq!(a.get_f64("alpha", 1.4), 1.4);
        assert_eq!(a.get("cores"), None);
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = args("--rating -3");
        assert_eq!(a.get_f64("rating", 0.0), -3.0);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = args("--cores banana");
        let _ = a.get_u64("cores", 1);
    }
}
