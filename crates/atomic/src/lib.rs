//! The "Atomic" baseline engine.
//!
//! "Atomic uses an atomic increment instruction with no other concurrency
//! control. Atomic represents an upper bound for locking schemes." (§8.2)
//!
//! This engine executes integer operations (`Add`, `Max`, `Min`) directly on
//! per-record atomics with no transaction semantics at all: no read sets, no
//! validation, no aborts, no isolation across multi-key transactions. It is
//! only meaningful for the single-key INCR microbenchmarks, where it bounds
//! what hardware-assisted serialization can achieve on one record; it is not
//! a serializable engine and must not be used as one.

use doppel_common::{
    CommitSink, Completion, CoreId, Engine, EngineStats, Key, Op, Outcome, Procedure,
    StatsSnapshot, TidGenerator, Tx, TxError, TxHandle, Value,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

type SinkCell = Arc<RwLock<Option<Arc<dyn CommitSink>>>>;

/// A store of per-key atomic integers.
///
/// Non-integer values are kept in a side map so that `Put`/`Get` of byte
/// strings still work (the LIKE benchmark writes a user row next to the
/// contended counter), but only integer operations take the lock-free path.
#[derive(Default)]
struct AtomicStore {
    ints: RwLock<HashMap<Key, Arc<AtomicI64>>>,
    others: RwLock<HashMap<Key, Value>>,
}

impl AtomicStore {
    fn int_cell(&self, k: Key) -> Arc<AtomicI64> {
        if let Some(cell) = self.ints.read().get(&k) {
            return Arc::clone(cell);
        }
        let mut map = self.ints.write();
        Arc::clone(map.entry(k).or_insert_with(|| Arc::new(AtomicI64::new(0))))
    }

    fn get(&self, k: &Key) -> Option<Value> {
        if let Some(cell) = self.ints.read().get(k) {
            return Some(Value::Int(cell.load(Ordering::Relaxed)));
        }
        self.others.read().get(k).cloned()
    }
}

/// The Atomic baseline engine.
pub struct AtomicEngine {
    store: Arc<AtomicStore>,
    stats: Arc<EngineStats>,
    sink: SinkCell,
    workers: usize,
}

impl AtomicEngine {
    /// Creates an engine with `workers` workers.
    pub fn new(workers: usize) -> Self {
        AtomicEngine {
            store: Arc::new(AtomicStore::default()),
            stats: Arc::new(EngineStats::new()),
            sink: Arc::new(RwLock::new(None)),
            workers,
        }
    }
}

impl Engine for AtomicEngine {
    fn name(&self) -> &'static str {
        "Atomic"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn handle(&self, core: CoreId) -> Box<dyn TxHandle> {
        assert!(core < self.workers, "core {core} out of range (workers = {})", self.workers);
        Box::new(AtomicHandle {
            core,
            store: Arc::clone(&self.store),
            stats: Arc::clone(&self.stats),
            // Captured once so the execute path carries no shared sink-cell
            // read (attach must precede handle creation).
            sink: self.sink.read().clone(),
            tid_gen: TidGenerator::new(core),
            capture_buf: Vec::new(),
        })
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn global_get(&self, k: Key) -> Option<Value> {
        self.store.get(&k)
    }

    fn load(&self, k: Key, v: Value) {
        match v {
            Value::Int(n) => {
                self.store.int_cell(k).store(n, Ordering::Relaxed);
            }
            other => {
                self.store.others.write().insert(k, other);
            }
        }
    }

    fn attach_commit_sink(&self, sink: Arc<dyn CommitSink>) {
        *self.sink.write() = Some(sink);
    }

    fn for_each_record(&self, f: &mut dyn FnMut(Key, &Value)) {
        for (k, cell) in self.store.ints.read().iter() {
            f(*k, &Value::Int(cell.load(Ordering::Relaxed)));
        }
        for (k, v) in self.store.others.read().iter() {
            f(*k, v);
        }
    }

    fn note_recovered(&self, records: u64) {
        EngineStats::add(&self.stats.recovered_txns, records);
    }

    fn shutdown(&self) {
        if let Some(sink) = self.sink.read().as_ref() {
            self.stats.absorb_log(&sink.sync());
        }
    }
}

/// Per-worker handle for the Atomic engine.
pub struct AtomicHandle {
    core: CoreId,
    store: Arc<AtomicStore>,
    stats: Arc<EngineStats>,
    sink: Option<Arc<dyn CommitSink>>,
    tid_gen: TidGenerator,
    /// Reused capture buffer for the durable path: each procedure's write log
    /// borrows this vector and hands it back cleared, so steady-state
    /// execution allocates nothing per transaction.
    capture_buf: Vec<(Key, Op)>,
}

struct AtomicTx<'s> {
    core: CoreId,
    store: &'s AtomicStore,
    /// `Some` when a commit sink is attached: the operations applied by this
    /// procedure, captured for logging. Atomic applies writes eagerly and has
    /// no rollback, so the log mirrors exactly what reached the store — even
    /// when the procedure later returns an error.
    captured: Option<Vec<(Key, Op)>>,
}

impl Tx for AtomicTx<'_> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn get(&mut self, k: Key) -> Result<Option<Value>, TxError> {
        Ok(self.store.get(&k))
    }

    fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
        self.apply_op(k, op.clone())?;
        // Captured only after a successful apply: a type-mismatched op never
        // reaches the store, so logging it would poison replay with the same
        // deterministic error.
        if let Some(captured) = &mut self.captured {
            captured.push((k, op));
        }
        Ok(())
    }
}

impl AtomicTx<'_> {
    fn apply_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
        match op {
            Op::Add(n) => {
                self.store.int_cell(k).fetch_add(n, Ordering::Relaxed);
                Ok(())
            }
            Op::Max(n) => {
                self.store.int_cell(k).fetch_max(n, Ordering::Relaxed);
                Ok(())
            }
            Op::Min(n) => {
                self.store.int_cell(k).fetch_min(n, Ordering::Relaxed);
                Ok(())
            }
            Op::BitOr(n) => {
                self.store.int_cell(k).fetch_or(n, Ordering::Relaxed);
                Ok(())
            }
            Op::BoundedAdd { n, bound } => {
                // No single hardware instruction saturates at an arbitrary
                // bound; a CAS loop keeps the update lock-free.
                let _ = self.store.int_cell(k).fetch_update(
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                    |v| Some(v.saturating_add(n.max(0)).min(bound)),
                );
                Ok(())
            }
            Op::Put(v) => {
                match v {
                    Value::Int(n) => self.store.int_cell(k).store(n, Ordering::Relaxed),
                    other => {
                        self.store.others.write().insert(k, other);
                    }
                }
                Ok(())
            }
            // The Atomic baseline only exists to bound single-integer update
            // throughput; richer operations are executed via a short critical
            // section on the side map.
            other => {
                let mut map = self.store.others.write();
                let current = map.get(&k).cloned();
                let new = other.apply_to(current.as_ref())?;
                map.insert(k, new);
                Ok(())
            }
        }
    }
}

impl TxHandle for AtomicHandle {
    fn core(&self) -> CoreId {
        self.core
    }

    fn execute(&mut self, proc: Arc<dyn Procedure>) -> Outcome {
        let sink = self.sink.as_ref();
        let mut tx = AtomicTx {
            core: self.core,
            store: &self.store,
            captured: sink.map(|_| std::mem::take(&mut self.capture_buf)),
        };
        let run = proc.run(&mut tx);
        let mut captured = tx.captured.take().unwrap_or_default();
        let tid = self.tid_gen.next();
        // Applied operations are logged on both paths: Atomic has no
        // rollback, so a failed procedure's earlier writes are store state
        // and must be recoverable.
        if let (Some(sink), false) = (&sink, captured.is_empty()) {
            self.stats
                .absorb_log(&sink.log_commit(tid, &mut captured.iter().map(|(k, op)| (*k, op))));
        }
        // Hand the buffer back for the next transaction (capacity kept).
        captured.clear();
        self.capture_buf = captured;
        match run {
            Ok(()) => {
                EngineStats::bump(&self.stats.commits);
                Outcome::Committed(tid)
            }
            Err(e) => {
                EngineStats::bump(&self.stats.user_aborts);
                Outcome::Aborted(e)
            }
        }
    }

    fn safepoint(&mut self) {}

    fn take_completions(&mut self) -> Vec<Completion> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::ProcedureFn;

    #[test]
    fn atomic_increments() {
        let engine = AtomicEngine::new(2);
        engine.load(Key::raw(1), Value::Int(5));
        let mut h = engine.handle(0);
        let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 3)));
        assert!(h.execute(proc).is_committed());
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(8)));
        assert_eq!(engine.name(), "Atomic");
        assert_eq!(engine.workers(), 2);
    }

    #[test]
    fn atomic_max_min() {
        let engine = AtomicEngine::new(1);
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("maxmin", |tx| {
            tx.max(Key::raw(1), 50)?;
            tx.max(Key::raw(1), 20)?;
            tx.min(Key::raw(2), -5)?;
            tx.min(Key::raw(2), 3)?;
            Ok(())
        }));
        h.execute(p);
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(50)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(-5)));
    }

    #[test]
    fn atomic_bitor_and_bounded_add() {
        let engine = AtomicEngine::new(1);
        engine.load(Key::raw(1), Value::Int(0b0001));
        engine.load(Key::raw(2), Value::Int(8));
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("flags", |tx| {
            tx.bit_or(Key::raw(1), 0b0110)?;
            tx.bounded_add(Key::raw(2), 5, 10)?;
            tx.bounded_add(Key::raw(2), 5, 10)
        }));
        assert!(h.execute(p).is_committed());
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(0b0111)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(10)));
    }

    #[test]
    fn atomic_set_union_uses_side_map() {
        let engine = AtomicEngine::new(1);
        engine.load(Key::raw(5), Value::Set(doppel_common::IntSet::new()));
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("visit", |tx| {
            tx.set_insert(Key::raw(5), 42)?;
            tx.set_insert(Key::raw(5), 42)?;
            tx.set_insert(Key::raw(5), 7)
        }));
        assert!(h.execute(p).is_committed());
        let v = engine.global_get(Key::raw(5)).unwrap();
        assert_eq!(v.as_set().unwrap().iter().collect::<Vec<_>>(), vec![7, 42]);
    }

    #[test]
    fn non_integer_values_round_trip() {
        let engine = AtomicEngine::new(1);
        engine.load(Key::raw(9), Value::from("hello"));
        assert_eq!(engine.global_get(Key::raw(9)), Some(Value::from("hello")));
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("put", |tx| {
            tx.put(Key::raw(10), Value::from("row"))
        }));
        h.execute(p);
        assert_eq!(engine.global_get(Key::raw(10)), Some(Value::from("row")));
    }

    #[test]
    fn concurrent_adds_never_lose_updates() {
        let engine = Arc::new(AtomicEngine::new(4));
        engine.load(Key::raw(0), Value::Int(0));
        let mut handles = Vec::new();
        for core in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut h = engine.handle(core);
                let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(0), 1)));
                for _ in 0..1000 {
                    assert!(h.execute(proc.clone()).is_committed());
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(engine.global_get(Key::raw(0)), Some(Value::Int(4000)));
        assert_eq!(engine.stats().commits, 4000);
    }

    #[test]
    fn failed_ops_are_never_logged() {
        use std::sync::atomic::AtomicU64;

        #[derive(Default)]
        struct CountingSink(AtomicU64);
        impl CommitSink for CountingSink {
            fn log_commit(
                &self,
                _tid: doppel_common::Tid,
                writes: &mut dyn ExactSizeIterator<Item = (Key, &Op)>,
            ) -> doppel_common::LogReceipt {
                self.0.fetch_add(writes.len() as u64, Ordering::Relaxed);
                doppel_common::LogReceipt::default()
            }
            fn log_merged_delta(&self, _tid: doppel_common::Tid, _key: Key, _ops: &[Op]) -> doppel_common::LogReceipt {
                doppel_common::LogReceipt::default()
            }
            fn sync(&self) -> doppel_common::LogReceipt {
                doppel_common::LogReceipt::default()
            }
        }

        let engine = AtomicEngine::new(1);
        let sink = Arc::new(CountingSink::default());
        engine.attach_commit_sink(sink.clone());
        engine.load(Key::raw(1), Value::from("bytes"));
        let mut h = engine.handle(0);
        // An applied op followed by a type-mismatched one: only the applied
        // op may reach the log — replaying the failed op would deterministically
        // fail recovery.
        let p = Arc::new(ProcedureFn::new("mixed", |tx| {
            tx.add(Key::raw(2), 5)?;
            tx.set_insert(Key::raw(1), 7) // SetUnion on a Bytes record: type error
        }));
        assert!(matches!(h.execute(p), Outcome::Aborted(TxError::TypeMismatch { .. })));
        assert_eq!(sink.0.load(Ordering::Relaxed), 1, "only the successful Add is logged");
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(5)));
    }

    #[test]
    fn user_abort_counted() {
        let engine = AtomicEngine::new(1);
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("fail", |_tx| {
            Err(TxError::UserAbort { reason: "nope" })
        }));
        assert!(matches!(h.execute(p), Outcome::Aborted(_)));
        assert_eq!(engine.stats().user_aborts, 1);
    }
}
