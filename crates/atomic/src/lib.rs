//! The "Atomic" baseline engine.
//!
//! "Atomic uses an atomic increment instruction with no other concurrency
//! control. Atomic represents an upper bound for locking schemes." (§8.2)
//!
//! This engine executes integer operations (`Add`, `Max`, `Min`) directly on
//! per-record atomics with no transaction semantics at all: no read sets, no
//! validation, no aborts, no isolation across multi-key transactions. It is
//! only meaningful for the single-key INCR microbenchmarks, where it bounds
//! what hardware-assisted serialization can achieve on one record; it is not
//! a serializable engine and must not be used as one.

use doppel_common::{
    Completion, CoreId, Engine, EngineStats, Key, Op, Outcome, Procedure, StatsSnapshot,
    TidGenerator, Tx, TxError, TxHandle, Value,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A store of per-key atomic integers.
///
/// Non-integer values are kept in a side map so that `Put`/`Get` of byte
/// strings still work (the LIKE benchmark writes a user row next to the
/// contended counter), but only integer operations take the lock-free path.
#[derive(Default)]
struct AtomicStore {
    ints: RwLock<HashMap<Key, Arc<AtomicI64>>>,
    others: RwLock<HashMap<Key, Value>>,
}

impl AtomicStore {
    fn int_cell(&self, k: Key) -> Arc<AtomicI64> {
        if let Some(cell) = self.ints.read().get(&k) {
            return Arc::clone(cell);
        }
        let mut map = self.ints.write();
        Arc::clone(map.entry(k).or_insert_with(|| Arc::new(AtomicI64::new(0))))
    }

    fn get(&self, k: &Key) -> Option<Value> {
        if let Some(cell) = self.ints.read().get(k) {
            return Some(Value::Int(cell.load(Ordering::Relaxed)));
        }
        self.others.read().get(k).cloned()
    }
}

/// The Atomic baseline engine.
pub struct AtomicEngine {
    store: Arc<AtomicStore>,
    stats: Arc<EngineStats>,
    workers: usize,
}

impl AtomicEngine {
    /// Creates an engine with `workers` workers.
    pub fn new(workers: usize) -> Self {
        AtomicEngine {
            store: Arc::new(AtomicStore::default()),
            stats: Arc::new(EngineStats::new()),
            workers,
        }
    }
}

impl Engine for AtomicEngine {
    fn name(&self) -> &'static str {
        "Atomic"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn handle(&self, core: CoreId) -> Box<dyn TxHandle> {
        assert!(core < self.workers, "core {core} out of range (workers = {})", self.workers);
        Box::new(AtomicHandle {
            core,
            store: Arc::clone(&self.store),
            stats: Arc::clone(&self.stats),
            tid_gen: TidGenerator::new(core),
        })
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn global_get(&self, k: Key) -> Option<Value> {
        self.store.get(&k)
    }

    fn load(&self, k: Key, v: Value) {
        match v {
            Value::Int(n) => {
                self.store.int_cell(k).store(n, Ordering::Relaxed);
            }
            other => {
                self.store.others.write().insert(k, other);
            }
        }
    }
}

/// Per-worker handle for the Atomic engine.
pub struct AtomicHandle {
    core: CoreId,
    store: Arc<AtomicStore>,
    stats: Arc<EngineStats>,
    tid_gen: TidGenerator,
}

struct AtomicTx<'s> {
    core: CoreId,
    store: &'s AtomicStore,
}

impl Tx for AtomicTx<'_> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn get(&mut self, k: Key) -> Result<Option<Value>, TxError> {
        Ok(self.store.get(&k))
    }

    fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
        match op {
            Op::Add(n) => {
                self.store.int_cell(k).fetch_add(n, Ordering::Relaxed);
                Ok(())
            }
            Op::Max(n) => {
                self.store.int_cell(k).fetch_max(n, Ordering::Relaxed);
                Ok(())
            }
            Op::Min(n) => {
                self.store.int_cell(k).fetch_min(n, Ordering::Relaxed);
                Ok(())
            }
            Op::BitOr(n) => {
                self.store.int_cell(k).fetch_or(n, Ordering::Relaxed);
                Ok(())
            }
            Op::BoundedAdd { n, bound } => {
                // No single hardware instruction saturates at an arbitrary
                // bound; a CAS loop keeps the update lock-free.
                let _ = self.store.int_cell(k).fetch_update(
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                    |v| Some(v.saturating_add(n.max(0)).min(bound)),
                );
                Ok(())
            }
            Op::Put(v) => {
                match v {
                    Value::Int(n) => self.store.int_cell(k).store(n, Ordering::Relaxed),
                    other => {
                        self.store.others.write().insert(k, other);
                    }
                }
                Ok(())
            }
            // The Atomic baseline only exists to bound single-integer update
            // throughput; richer operations are executed via a short critical
            // section on the side map.
            other => {
                let mut map = self.store.others.write();
                let current = map.get(&k).cloned();
                let new = other.apply_to(current.as_ref())?;
                map.insert(k, new);
                Ok(())
            }
        }
    }
}

impl TxHandle for AtomicHandle {
    fn core(&self) -> CoreId {
        self.core
    }

    fn execute(&mut self, proc: Arc<dyn Procedure>) -> Outcome {
        let mut tx = AtomicTx { core: self.core, store: &self.store };
        match proc.run(&mut tx) {
            Ok(()) => {
                EngineStats::bump(&self.stats.commits);
                Outcome::Committed(self.tid_gen.next())
            }
            Err(e) => {
                EngineStats::bump(&self.stats.user_aborts);
                Outcome::Aborted(e)
            }
        }
    }

    fn safepoint(&mut self) {}

    fn take_completions(&mut self) -> Vec<Completion> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::ProcedureFn;

    #[test]
    fn atomic_increments() {
        let engine = AtomicEngine::new(2);
        engine.load(Key::raw(1), Value::Int(5));
        let mut h = engine.handle(0);
        let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 3)));
        assert!(h.execute(proc).is_committed());
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(8)));
        assert_eq!(engine.name(), "Atomic");
        assert_eq!(engine.workers(), 2);
    }

    #[test]
    fn atomic_max_min() {
        let engine = AtomicEngine::new(1);
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("maxmin", |tx| {
            tx.max(Key::raw(1), 50)?;
            tx.max(Key::raw(1), 20)?;
            tx.min(Key::raw(2), -5)?;
            tx.min(Key::raw(2), 3)?;
            Ok(())
        }));
        h.execute(p);
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(50)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(-5)));
    }

    #[test]
    fn atomic_bitor_and_bounded_add() {
        let engine = AtomicEngine::new(1);
        engine.load(Key::raw(1), Value::Int(0b0001));
        engine.load(Key::raw(2), Value::Int(8));
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("flags", |tx| {
            tx.bit_or(Key::raw(1), 0b0110)?;
            tx.bounded_add(Key::raw(2), 5, 10)?;
            tx.bounded_add(Key::raw(2), 5, 10)
        }));
        assert!(h.execute(p).is_committed());
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(0b0111)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(10)));
    }

    #[test]
    fn atomic_set_union_uses_side_map() {
        let engine = AtomicEngine::new(1);
        engine.load(Key::raw(5), Value::Set(doppel_common::IntSet::new()));
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("visit", |tx| {
            tx.set_insert(Key::raw(5), 42)?;
            tx.set_insert(Key::raw(5), 42)?;
            tx.set_insert(Key::raw(5), 7)
        }));
        assert!(h.execute(p).is_committed());
        let v = engine.global_get(Key::raw(5)).unwrap();
        assert_eq!(v.as_set().unwrap().iter().collect::<Vec<_>>(), vec![7, 42]);
    }

    #[test]
    fn non_integer_values_round_trip() {
        let engine = AtomicEngine::new(1);
        engine.load(Key::raw(9), Value::from("hello"));
        assert_eq!(engine.global_get(Key::raw(9)), Some(Value::from("hello")));
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("put", |tx| {
            tx.put(Key::raw(10), Value::from("row"))
        }));
        h.execute(p);
        assert_eq!(engine.global_get(Key::raw(10)), Some(Value::from("row")));
    }

    #[test]
    fn concurrent_adds_never_lose_updates() {
        let engine = Arc::new(AtomicEngine::new(4));
        engine.load(Key::raw(0), Value::Int(0));
        let mut handles = Vec::new();
        for core in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut h = engine.handle(core);
                let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(0), 1)));
                for _ in 0..1000 {
                    assert!(h.execute(proc.clone()).is_committed());
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(engine.global_get(Key::raw(0)), Some(Value::Int(4000)));
        assert_eq!(engine.stats().commits, 4000);
    }

    #[test]
    fn user_abort_counted() {
        let engine = AtomicEngine::new(1);
        let mut h = engine.handle(0);
        let p = Arc::new(ProcedureFn::new("fail", |_tx| {
            Err(TxError::UserAbort { reason: "nope" })
        }));
        assert!(matches!(h.execute(p), Outcome::Aborted(_)));
        assert_eq!(engine.stats().user_aborts, 1);
    }
}
