//! `doppel-server`: serve a Doppel (or baseline) engine over TCP, with
//! registered stored-procedure packs.
//!
//! ```text
//! doppel-server --engine doppel --port 7777 --workers 4 --procs kv,rubis
//! ```
//!
//! Prints one `listening on <addr>` line to stdout once ready, then serves
//! until killed (or until `--seconds N` elapses, for scripted runs). Clients
//! either ship raw statement lists (`Submit`) or invoke registered
//! procedures by name (`InvokeProc`); `--procs` selects which packs are
//! registered. See the README's "Stored procedures" and "Architecture &
//! serving" sections for the wire protocol.

use doppel_common::ProcRegistry;
use doppel_rubis::{RubisData, RubisScale};
use doppel_service::{FrontEnd, ReactorConfig, Server, ServerEngine, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// The engines this server can front, with one-line descriptions for
/// `--help`.
const ENGINES: &[(&str, &str)] = &[
    ("doppel", "phase reconciliation (split contended records per core)"),
    ("occ", "Silo-style optimistic concurrency control"),
    ("2pl", "two-phase locking"),
    ("atomic", "atomic per-record operations, no transactions (baseline)"),
];

/// The registerable procedure packs, with one-line descriptions.
const PACKS: &[(&str, &str)] = &[
    ("kv", "typed key/value procedures over any table"),
    ("rubis", "the 17 RUBiS auction transactions"),
];

struct Flags {
    engine: String,
    host: String,
    port: u16,
    workers: usize,
    shards: usize,
    phase_ms: u64,
    queue_depth: usize,
    batch_max: usize,
    seconds: Option<f64>,
    durable_dir: Option<String>,
    procs: Vec<String>,
    rubis_scale: Option<String>,
    hint_items: u64,
    /// `None` means "default": adaptive on for the Doppel engine, off for
    /// baselines (which have no split sets or phases to tune).
    adaptive: Option<bool>,
    tuner_epoch_ms: Option<u64>,
    promote_hits: Option<u64>,
    threaded: bool,
    pollers: usize,
    write_queue_kb: usize,
    trace_out: Option<String>,
    stats_interval: Option<f64>,
}

impl Flags {
    /// The connection front-end the flags select: the epoll reactor unless
    /// `--threaded` asked for the per-connection-threads baseline.
    fn front_end(&self) -> FrontEnd {
        let write_queue_bytes = self.write_queue_kb.max(1) * 1024;
        if self.threaded {
            FrontEnd::Threaded { write_queue_bytes }
        } else {
            FrontEnd::Reactor(ReactorConfig { pollers: self.pollers.max(1), write_queue_bytes })
        }
    }
}

fn pack_proc_names(pack: &str) -> Vec<&'static str> {
    match pack {
        "kv" => doppel_service::KV_PROCS.to_vec(),
        "rubis" => doppel_rubis::RUBIS_PROCS.to_vec(),
        _ => Vec::new(),
    }
}

fn usage() -> ! {
    println!(
        "doppel-server: serve a transactional engine over TCP\n\n\
         Usage: doppel-server [FLAGS]\n\n\
         Flags:\n\
           --engine NAME     which engine to serve (default doppel, see below)\n\
           --host ADDR       bind address (default 127.0.0.1)\n\
           --port N          TCP port; 0 picks an ephemeral port (default 7777)\n\
           --workers N       worker threads / cores (default 4)\n\
           --shards N        store shard count (default 1024)\n\
           --phase-ms MS     Doppel phase length in milliseconds (default 20)\n\
           --queue-depth N   per-core submission queue cap (default 1024)\n\
           --batch N         max procedures dequeued per batch (default 64)\n\
           --seconds S       exit after S seconds (default: run until killed)\n\
           --durable DIR     write-ahead log directory (recovers it first)\n\
           --reactor         epoll-reactor front-end (the default)\n\
           --threaded        thread-per-connection front-end (the old default)\n\
           --pollers N       reactor poller threads (default 2)\n\
           --write-queue-kb N  per-connection reply-queue cap in KiB before a\n\
                             slow client is shed (default 4096)\n\
           --procs LIST      comma-separated procedure packs (default kv)\n\
           --rubis-scale SZ  preload RUBiS data: small | paper\n\
           --adaptive        run the adaptive contention controller (the\n\
                             default for the doppel engine): learns split\n\
                             labels and phase length from live telemetry\n\
           --no-adaptive     disable the adaptive controller\n\
           --tuner-epoch-ms MS  adaptive control-loop period (default 50)\n\
           --promote-hits N  conflict-heat delta per epoch at which the\n\
                             tuner promotes a key to split (default 48;\n\
                             lower it on small hosts with low conflict\n\
                             rates)\n\
           --hint-items N    [deprecated: --adaptive learns labels online]\n\
                             label the N most popular RUBiS items' auction\n\
                             aggregates split at startup (needs rubis pack)\n\
           --trace-out PATH  enable event tracing and write a Chrome\n\
                             trace-event JSON (Perfetto-loadable) on exit\n\
           --stats-interval S  print a one-line telemetry ticker to stderr\n\
                             every S seconds\n\
           --help            print this message"
    );
    println!("\nEngines:");
    for (name, desc) in ENGINES {
        println!("  {name:<8} {desc}");
    }
    println!("\nProcedure packs:");
    for (name, desc) in PACKS {
        println!("  {name:<8} {desc}");
        println!("           {}", pack_proc_names(name).join(", "));
    }
    std::process::exit(0);
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        engine: "doppel".into(),
        host: "127.0.0.1".into(),
        port: 7777,
        workers: 4,
        shards: 1024,
        phase_ms: 20,
        queue_depth: 1024,
        batch_max: 64,
        seconds: None,
        durable_dir: None,
        procs: vec!["kv".into()],
        rubis_scale: None,
        hint_items: 0,
        adaptive: None,
        tuner_epoch_ms: None,
        promote_hits: None,
        threaded: false,
        pollers: 2,
        write_queue_kb: 4096,
        trace_out: None,
        stats_interval: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("--{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--engine" => flags.engine = value("engine"),
            "--host" => flags.host = value("host"),
            "--port" => flags.port = value("port").parse().expect("--port expects a port number"),
            "--workers" => {
                flags.workers = value("workers").parse().expect("--workers expects an integer")
            }
            "--shards" => flags.shards = value("shards").parse().expect("--shards expects an integer"),
            "--phase-ms" => {
                flags.phase_ms = value("phase-ms").parse().expect("--phase-ms expects an integer")
            }
            "--queue-depth" => {
                flags.queue_depth =
                    value("queue-depth").parse().expect("--queue-depth expects an integer")
            }
            "--batch" => flags.batch_max = value("batch").parse().expect("--batch expects an integer"),
            "--seconds" => {
                flags.seconds = Some(value("seconds").parse().expect("--seconds expects a number"))
            }
            "--durable" => flags.durable_dir = Some(value("durable")),
            "--reactor" => flags.threaded = false,
            "--threaded" => flags.threaded = true,
            "--pollers" => {
                flags.pollers = value("pollers").parse().expect("--pollers expects an integer")
            }
            "--write-queue-kb" => {
                flags.write_queue_kb = value("write-queue-kb")
                    .parse()
                    .expect("--write-queue-kb expects an integer")
            }
            "--procs" => {
                flags.procs = value("procs")
                    .split(',')
                    .map(|p| p.trim().to_ascii_lowercase())
                    .filter(|p| !p.is_empty())
                    .collect()
            }
            "--rubis-scale" => flags.rubis_scale = Some(value("rubis-scale")),
            "--trace-out" => flags.trace_out = Some(value("trace-out")),
            "--stats-interval" => {
                flags.stats_interval = Some(
                    value("stats-interval").parse().expect("--stats-interval expects a number"),
                )
            }
            "--adaptive" => flags.adaptive = Some(true),
            "--no-adaptive" => flags.adaptive = Some(false),
            "--tuner-epoch-ms" => {
                flags.tuner_epoch_ms = Some(
                    value("tuner-epoch-ms").parse().expect("--tuner-epoch-ms expects an integer"),
                )
            }
            "--promote-hits" => {
                flags.promote_hits =
                    Some(value("promote-hits").parse().expect("--promote-hits expects an integer"))
            }
            "--hint-items" => {
                flags.hint_items =
                    value("hint-items").parse().expect("--hint-items expects an integer")
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    flags
}

/// Builds the registry named by `--procs`, rejecting unknown pack names with
/// the list of known ones.
fn build_registry(flags: &Flags) -> Arc<ProcRegistry> {
    let mut reg = ProcRegistry::new();
    let mut registered: Vec<&str> = Vec::new();
    for pack in &flags.procs {
        // `--procs kv,kv` means kv once; registering a pack twice would
        // trip the registry's duplicate-name assertion.
        if registered.contains(&pack.as_str()) {
            continue;
        }
        registered.push(pack);
        match pack.as_str() {
            "kv" => doppel_service::register_kv(&mut reg),
            "rubis" => doppel_rubis::register_rubis(&mut reg),
            unknown => {
                let known: Vec<&str> = PACKS.iter().map(|(n, _)| *n).collect();
                eprintln!(
                    "unknown procedure pack {unknown:?} in --procs (available: {})",
                    known.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    if flags.hint_items > 0 {
        if !flags.procs.iter().any(|p| p == "rubis") {
            eprintln!("--hint-items requires the rubis pack (add rubis to --procs)");
            std::process::exit(2);
        }
        eprintln!(
            "note: --hint-items is deprecated; the adaptive controller (--adaptive, on by \
             default for doppel) learns split labels online without manual hints"
        );
        // Zipf popularity maps rank to item id, so the hottest items are the
        // lowest ids.
        doppel_rubis::hint_hot_items(&mut reg, 0..flags.hint_items);
    }
    Arc::new(reg)
}

fn rubis_scale(name: &str) -> RubisScale {
    match name {
        "small" => RubisScale::small(),
        "paper" => RubisScale::paper(),
        other => {
            eprintln!("unknown --rubis-scale {other:?} (small | paper)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let flags = parse_flags();
    // Tracing goes live before the engine starts so phase transitions from
    // the very first phase land in the export.
    if flags.trace_out.is_some() {
        doppel_telemetry::trace::set_enabled(true);
    }
    let registry = build_registry(&flags);
    let mut tuner = doppel_common::TunerConfig::default();
    if let Some(ms) = flags.tuner_epoch_ms {
        tuner.epoch = Duration::from_millis(ms);
    }
    if let Some(hits) = flags.promote_hits {
        tuner.promote_min_hits = hits;
    }
    if let Err(e) = tuner.validate() {
        eprintln!("invalid tuner configuration: {e}");
        std::process::exit(2);
    }
    let mut engine = ServerEngine::build_with_tuner(
        &flags.engine,
        flags.workers,
        flags.phase_ms,
        flags.shards,
        tuner,
    )
        .unwrap_or_else(|| {
            let known: Vec<&str> = ENGINES.iter().map(|(n, _)| *n).collect();
            eprintln!("unknown engine {:?} (available: {})", flags.engine, known.join(" | "));
            std::process::exit(2);
        })
        .with_procs(Arc::clone(&registry));

    // Adaptive contention management defaults on for Doppel: the tuner
    // replaces manual `--hint-items` labelling with an online control loop.
    let adaptive = flags.adaptive.unwrap_or(true) && engine.doppel.is_some();
    engine = engine.with_adaptive(adaptive);

    // Durability: recover the directory into the fresh store, then attach
    // the log so every commit (and Doppel merged delta) is logged. The same
    // log is the two-phase-commit vote log: prepared-but-undecided
    // transactions surface as in-doubt and keep their keys locked until the
    // shard router re-delivers the decision.
    if let Some(dir) = &flags.durable_dir {
        let recovered = doppel_wal::recover(dir).unwrap_or_else(|e| {
            eprintln!("recovery of {dir} failed: {e}");
            std::process::exit(1);
        });
        let in_doubt = recovered.in_doubt();
        let report = doppel_wal::replay_recovered(engine.engine.as_ref(), &recovered)
            .unwrap_or_else(|e| {
                eprintln!("replay of {dir} failed: {e}");
                std::process::exit(1);
            });
        if report.log_records() > 0 || report.checkpoint_records > 0 {
            eprintln!(
                "recovered {} checkpoint records + {} log records from {dir}",
                report.checkpoint_records,
                report.log_records()
            );
        }
        if !in_doubt.is_empty() {
            eprintln!(
                "{} in-doubt prepared transaction(s): their keys stay locked until the \
                 coordinator re-delivers the decision",
                in_doubt.len()
            );
        }
        let wal = Arc::new(
            doppel_wal::Wal::open(dir, doppel_common::DurabilityConfig::default().from_env())
                .unwrap_or_else(|e| {
                    eprintln!("cannot open WAL in {dir}: {e}");
                    std::process::exit(1);
                }),
        );
        engine.engine.attach_commit_sink(Arc::clone(&wal) as _);
        engine = engine.with_vote_log(wal).with_in_doubt(in_doubt);
    }

    // Preload RUBiS data when asked (a networked client cannot call
    // `Engine::load`; the bulk pre-population of §8.1 belongs to the server).
    if let Some(scale) = &flags.rubis_scale {
        let scale = rubis_scale(scale);
        RubisData::new(scale).load(engine.engine.as_ref());
        eprintln!(
            "preloaded RUBiS data: {} users, {} items, {} categories, {} regions",
            scale.users, scale.items, scale.categories, scale.regions
        );
    }

    let config = ServiceConfig {
        queue_depth: flags.queue_depth,
        batch_max: flags.batch_max,
        ..ServiceConfig::default()
    };
    let engine_name = engine.engine.name();
    let front_end = flags.front_end();
    let front_end_name = if flags.threaded { "threaded" } else { "reactor" };
    let server = Server::start_with(engine, config, (flags.host.as_str(), flags.port), front_end)
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {}:{}: {e}", flags.host, flags.port);
            std::process::exit(1);
        });

    // The one line scripts parse; flush so a piped parent sees it promptly.
    println!(
        "listening on {} (engine={engine_name}, workers={}, front-end={front_end_name}, \
         adaptive={}, procs=[{}])",
        server.local_addr(),
        flags.workers,
        if adaptive { "on" } else { "off" },
        flags.procs.join(",")
    );
    use std::io::Write;
    std::io::stdout().flush().ok();

    let server = Arc::new(server);
    let ticker_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ticker = flags.stats_interval.map(|secs| {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&ticker_stop);
        std::thread::Builder::new()
            .name("doppel-stat-ticker".into())
            .spawn(move || stats_ticker(&server, Duration::from_secs_f64(secs.max(0.05)), &stop))
            .expect("failed to spawn stats ticker")
    });

    match flags.seconds {
        Some(s) => std::thread::sleep(Duration::from_secs_f64(s)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    ticker_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = ticker {
        let _ = handle.join();
    }
    server.shutdown();
    if let Some(path) = &flags.trace_out {
        let json = doppel_telemetry::trace::export_chrome_json();
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "wrote {} bytes of trace events to {path} (load in Perfetto or chrome://tracing)",
                json.len()
            ),
            Err(e) => eprintln!("cannot write trace to {path}: {e}"),
        }
    }
    let stats = server.service().stats();
    eprintln!(
        "served {} commits, {} conflicts, {} enqueued, {} busy rejections",
        stats.commits, stats.conflicts, stats.queue_enqueued, stats.queue_busy_rejections
    );
    let net = server.net_stats();
    eprintln!(
        "front-end: {} conns accepted, {} accept errors, {} shed, {} protocol errors",
        net.conns_accepted, net.accept_errors, net.conns_shed, net.decode_errors
    );
    // Per-procedure accounting: one line per invoked procedure.
    for proc in server.procs().stats() {
        if proc.invocations > 0 {
            eprintln!(
                "proc {}: {} invocations, {} commits, {} aborts, {} deferrals",
                proc.name, proc.invocations, proc.commits, proc.aborts, proc.deferrals
            );
        }
    }
}

/// The `--stats-interval` loop: one line per interval with the rates and
/// latencies an operator watches first. Interval rates come from
/// counter deltas; the p99 from the bucket-wise histogram delta, so it
/// reflects only this interval's executions.
fn stats_ticker(
    server: &Server,
    interval: Duration,
    stop: &std::sync::atomic::AtomicBool,
) {
    let mut prev = server.telemetry_snapshot();
    let mut prev_at = std::time::Instant::now();
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(interval);
        let cur = server.telemetry_snapshot();
        let now = std::time::Instant::now();
        let secs = now.duration_since(prev_at).as_secs_f64().max(1e-9);
        let rate = |name: &str| {
            let delta = cur.scalar(name).unwrap_or(0).saturating_sub(prev.scalar(name).unwrap_or(0));
            delta as f64 / secs
        };
        let aborts = rate("conflicts") + rate("user_aborts");
        // Transactions stashed but not yet replayed (approximate: replay
        // aborts also leave the stash, so this is an upper bound).
        let backlog = cur
            .scalar("stashes")
            .unwrap_or(0)
            .saturating_sub(cur.scalar("stash_commits").unwrap_or(0));
        let p99_us = match (cur.hist("exec"), prev.hist("exec")) {
            (Some(c), Some(p)) => c.delta(p).quantile_us(0.99),
            (Some(c), None) => c.quantile_us(0.99),
            _ => 0,
        };
        eprintln!(
            "stat: {:.0} commits/s, {:.0} aborts/s, phase={}, stash backlog={}, exec p99={}us",
            rate("commits"),
            aborts,
            cur.phase,
            backlog,
            p99_us,
        );
        prev = cur;
        prev_at = now;
    }
}
