//! `doppel-router`: a wire-compatible proxy in front of a sharded cluster.
//!
//! ```text
//! doppel-router --port 7700 --shards 127.0.0.1:7001,127.0.0.1:7002
//! ```
//!
//! Clients connect to the router exactly as they would to a single
//! `doppel-server` — same framed protocol — and the router spreads their
//! transactions across the cluster with a [`doppel_service::ShardRouter`]:
//! single-shard transactions forward directly, all-commutative cross-shard
//! transactions fan out coordination-free, everything else runs two-phase
//! commit with the shards' WALs as vote logs.
//!
//! Each client connection gets its own `ShardRouter` (its own set of shard
//! connections), so one slow client never holds another's transactions
//! behind a shared coordinator. `GetStats` answers with the *merged* cluster
//! snapshot.
//!
//! Limitations, by design of a thin proxy: `InvokeProc` is forwarded
//! round-robin to one shard, which is only correct for procedures whose
//! keys all live on that shard — cross-shard procedures must be expressed
//! as statement lists. Replies to one client are delivered in the order its
//! routed transactions complete.

use doppel_service::wire::{
    decode_client, read_frame_into, server_frame_into, ClientMsg, ServerMsg, WireDone,
};
use doppel_service::{RemoteClient, RemoteOutcome, ShardOutcome, ShardRouter};
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Flags {
    host: String,
    port: u16,
    shards: Vec<String>,
    connect_secs: f64,
    force_two_phase: bool,
}

fn usage() -> ! {
    println!(
        "doppel-router: route the doppel wire protocol across a sharded cluster\n\n\
         Usage: doppel-router --shards ADDR,ADDR,... [FLAGS]\n\n\
         Flags:\n\
           --shards LIST     comma-separated shard addresses, in shard order\n\
                             (the list *is* the shard map: every router must\n\
                             use the same order)\n\
           --host ADDR       bind address (default 127.0.0.1)\n\
           --port N          TCP port; 0 picks an ephemeral port (default 7700)\n\
           --connect-secs S  per-shard connect deadline with backoff (default 10)\n\
           --force-2pc       route every cross-shard write through two-phase\n\
                             commit, commutative or not (baseline/testing)\n\
           --help            print this message"
    );
    std::process::exit(0);
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        host: "127.0.0.1".into(),
        port: 7700,
        shards: Vec::new(),
        connect_secs: 10.0,
        force_two_phase: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("--{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--host" => flags.host = value("host"),
            "--port" => flags.port = value("port").parse().expect("--port expects a port number"),
            "--shards" => {
                flags.shards = value("shards")
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect()
            }
            "--connect-secs" => {
                flags.connect_secs =
                    value("connect-secs").parse().expect("--connect-secs expects a number")
            }
            "--force-2pc" => flags.force_two_phase = true,
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if flags.shards.is_empty() {
        eprintln!("--shards is required (try --help)");
        std::process::exit(2);
    }
    flags
}

fn main() {
    let flags = Arc::new(parse_flags());
    let listener = TcpListener::bind((flags.host.as_str(), flags.port)).unwrap_or_else(|e| {
        eprintln!("cannot bind {}:{}: {e}", flags.host, flags.port);
        std::process::exit(1);
    });
    // Fail fast if the cluster is unreachable, before advertising readiness.
    let probe =
        ShardRouter::connect_retry(&flags.shards, Duration::from_secs_f64(flags.connect_secs));
    if let Err(e) = probe {
        eprintln!("cannot reach cluster: {e}");
        std::process::exit(1);
    }
    drop(probe);

    let addr = listener.local_addr().expect("bound listener has an address");
    println!("listening on {addr} (routing {} shards)", flags.shards.len());
    std::io::stdout().flush().ok();

    let rr = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        let Ok(stream) = stream else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let flags = Arc::clone(&flags);
        let rr = Arc::clone(&rr);
        let spawned = std::thread::Builder::new()
            .name("router-conn".into())
            .spawn(move || serve_connection(stream, &flags, &rr));
        if spawned.is_err() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn serve_connection(stream: TcpStream, flags: &Flags, rr: &AtomicUsize) {
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else { return };
    let mut router = match ShardRouter::connect_retry(
        &flags.shards,
        Duration::from_secs_f64(flags.connect_secs),
    ) {
        Ok(mut r) => {
            r.force_two_phase(flags.force_two_phase);
            r
        }
        Err(e) => {
            eprintln!("shard connections for a client failed: {e}");
            return;
        }
    };

    let mut reader = BufReader::new(stream);
    let mut writer = std::io::BufWriter::new(write_half);
    let mut payload = Vec::new();
    let mut frame = Vec::new();
    while let Ok(true) = read_frame_into(&mut reader, &mut payload) {
        let Ok(msg) = decode_client(&payload) else { break };
        let reply = match handle(&mut router, flags, rr, msg) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("routing failed: {e}");
                break;
            }
        };
        if server_frame_into(&reply, &mut frame).is_err()
            || writer.write_all(&frame).is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
}

/// Routes one client message, returning the reply to frame back.
fn handle(
    router: &mut ShardRouter,
    flags: &Flags,
    rr: &AtomicUsize,
    msg: ClientMsg,
) -> std::io::Result<ServerMsg> {
    Ok(match msg {
        ClientMsg::Submit { id, stmts } => {
            let txn = stmts.iter().fold(doppel_service::RemoteTxn::new(), |t, s| match s {
                doppel_service::WireStmt::Get(k) => t.get(*k),
                doppel_service::WireStmt::Write(k, op) => t.write(*k, op.clone()),
            });
            outcome_to_msg(id, router.execute(&txn)?)
        }
        ClientMsg::InvokeProc { id, proc, args } => {
            // Round-robin a whole-procedure forward (see the module docs for
            // why this is single-shard only).
            let shard = rr.fetch_add(1, Ordering::Relaxed) % flags.shards.len();
            let mut conn = RemoteClient::connect_retry(
                flags.shards[shard].as_str(),
                Duration::from_secs_f64(flags.connect_secs),
            )?;
            remote_to_msg(id, conn.call(&proc, args)?)
        }
        ClientMsg::LabelSplit { id, key, op } => {
            router.label_split(key, op)?;
            ServerMsg::Ack { id }
        }
        ClientMsg::Ping { id } => {
            router.ping_all()?;
            ServerMsg::Ack { id }
        }
        ClientMsg::GetStats { id } => {
            ServerMsg::Stats { id, snapshot: Box::new(router.stats_merged()?) }
        }
        // 2PC is between a router and its shards; a router is not a shard.
        ClientMsg::Prepare { id, .. } | ClientMsg::Decide { id, .. } => {
            ServerMsg::Rejected { id, busy: false }
        }
    })
}

fn outcome_to_msg(id: u64, out: ShardOutcome) -> ServerMsg {
    match out {
        ShardOutcome::Committed { values, deferred } => ServerMsg::Done(WireDone {
            id,
            result: Ok(0),
            deferred,
            values,
            proc_result: None,
        }),
        ShardOutcome::Aborted { code } => ServerMsg::Done(WireDone {
            id,
            result: Err(code),
            deferred: false,
            values: Vec::new(),
            proc_result: None,
        }),
        ShardOutcome::Rejected => ServerMsg::Rejected { id, busy: true },
    }
}

fn remote_to_msg(id: u64, out: RemoteOutcome) -> ServerMsg {
    match out {
        RemoteOutcome::Committed { tid, values, proc_result, deferred } => {
            ServerMsg::Done(WireDone { id, result: Ok(tid), deferred, values, proc_result })
        }
        RemoteOutcome::Aborted { code, deferred } => ServerMsg::Done(WireDone {
            id,
            result: Err(code),
            deferred,
            values: Vec::new(),
            proc_result: None,
        }),
        RemoteOutcome::Rejected { busy } => ServerMsg::Rejected { id, busy },
    }
}
