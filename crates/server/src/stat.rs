//! `doppel-stat`: poll running `doppel-server`s for telemetry and render it.
//!
//! ```text
//! doppel-stat --addr 127.0.0.1:7777 --interval 1
//! doppel-stat --addr 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//! ```
//!
//! Each poll sends a `GetStats` message and renders the self-describing
//! [`doppel_service::TelemetrySnapshot`] that comes back: counter *rates*
//! (deltas between polls divided by the poll gap), latency histograms as
//! interval percentiles (bucket-wise deltas, so a quiet interval shows the
//! quiet interval, not history), the current phase, the hot-key table and
//! per-procedure counters. `--once` prints one cumulative snapshot and
//! exits, for scripting.
//!
//! With several addresses (comma-separated or a repeated `--addr`), every
//! server is polled each interval and the view is the **merged cluster
//! snapshot** — scalars summed, histograms merged bucket-wise
//! ([`TelemetrySnapshot::merge`]) — plus a per-shard commits/s column line,
//! the first place a placement imbalance shows up.

use doppel_common::Table;
use doppel_service::{RemoteClient, TelemetrySnapshot};
use std::time::{Duration, Instant};

struct Flags {
    addrs: Vec<String>,
    interval: f64,
    once: bool,
    /// Exit after this many polls (0 = run until killed). Scripting aid.
    count: u64,
}

fn usage() -> ! {
    println!(
        "doppel-stat: live telemetry for running doppel-servers\n\n\
         Usage: doppel-stat [FLAGS]\n\n\
         Flags:\n\
           --addr HOST:PORT[,HOST:PORT...]  server(s) to poll (default\n\
                             127.0.0.1:7777; repeatable). Several addresses\n\
                             render the merged cluster view plus per-shard\n\
                             commits/s columns\n\
           --interval S      seconds between polls (default 1)\n\
           --count N         exit after N polls (default: run until killed)\n\
           --once            print one cumulative snapshot and exit\n\
           --help            print this message"
    );
    std::process::exit(0);
}

fn parse_flags() -> Flags {
    let mut flags = Flags { addrs: Vec::new(), interval: 1.0, once: false, count: 0 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("--{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--addr" => flags
                .addrs
                .extend(value("addr").split(',').map(str::trim).filter(|a| !a.is_empty()).map(String::from)),
            "--interval" => {
                flags.interval =
                    value("interval").parse().expect("--interval expects a number")
            }
            "--count" => flags.count = value("count").parse().expect("--count expects an integer"),
            "--once" => flags.once = true,
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if flags.addrs.is_empty() {
        flags.addrs.push("127.0.0.1:7777".into());
    }
    flags
}

/// Renders a heat-sketch token back to `Table/id` for display (the token is
/// the lossy [`doppel_common::Key::heat_token`] packing).
fn render_heat_token(token: u64) -> String {
    let table = (token >> 56) as u32;
    let sub = (token >> 48) & 0xFF;
    let id = token & 0x0000_FFFF_FFFF_FFFF;
    let name = Table::ALL
        .iter()
        .find(|t| **t as u32 == table)
        .map(|t| format!("{t:?}"))
        .unwrap_or_else(|| format!("table{table}"));
    if sub == 0 {
        format!("{name}/{id}")
    } else {
        format!("{name}/{id}.{sub}")
    }
}

fn fmt_us(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{}us", ns / 1000)
    }
}

/// One cumulative snapshot, fully rendered (the `--once` path).
fn render_cumulative(snap: &TelemetrySnapshot) {
    println!("phase: {}", snap.phase);
    println!("-- scalars");
    for (name, value) in &snap.scalars {
        if *value != 0 {
            println!("  {name:<24} {value}");
        }
    }
    render_hists(snap.hists.iter().map(|(n, h)| (n.as_str(), h.clone())));
    render_hot_keys(snap);
    render_procs(snap);
    render_tuner(snap, usize::MAX);
}

/// The adaptive controller's section: where the control loop has steered the
/// engine and the trail of decisions (with reasons) that got it there. A
/// `phase_len_us` of zero marks a merged cluster view whose shards disagree.
fn render_tuner(snap: &TelemetrySnapshot, max_decisions: usize) {
    let Some(t) = &snap.tuner else { return };
    let phase_len = if t.phase_len_us == 0 {
        "mixed".to_string()
    } else {
        format!("{:.1}ms", t.phase_len_us as f64 / 1000.0)
    };
    println!(
        "-- tuner (adaptive): {} epochs, phase_len {}, {} split key(s)",
        t.epochs,
        phase_len,
        t.split_keys.len()
    );
    if !t.split_keys.is_empty() {
        let rendered: Vec<String> =
            t.split_keys.iter().take(8).map(|k| render_heat_token(*k)).collect();
        let more = t.split_keys.len().saturating_sub(8);
        let suffix = if more > 0 { format!(" (+{more} more)") } else { String::new() };
        println!("  split set: {}{suffix}", rendered.join(", "));
    }
    let skip = t.decisions.len().saturating_sub(max_decisions);
    for d in t.decisions.iter().skip(skip) {
        println!("  {d}");
    }
}

fn render_hists(hists: impl Iterator<Item = (impl AsRef<str>, doppel_telemetry::Histogram)>) {
    let mut any = false;
    for (name, h) in hists {
        if h.count() == 0 {
            continue;
        }
        if !any {
            println!("-- latency histograms");
            println!("  {:<16} {:>10} {:>9} {:>9} {:>9} {:>9}", "name", "count", "mean", "p50", "p99", "max");
            any = true;
        }
        println!(
            "  {:<16} {:>10} {:>9} {:>9} {:>9} {:>9}",
            name.as_ref(),
            h.count(),
            fmt_us(h.mean_ns() as u64),
            fmt_us(h.quantile_ns(0.50)),
            fmt_us(h.quantile_ns(0.99)),
            fmt_us(h.max_ns()),
        );
    }
}

fn render_hot_keys(snap: &TelemetrySnapshot) {
    if snap.hot_keys.is_empty() {
        return;
    }
    println!("-- hot keys (sampled conflict hits)");
    for hk in snap.hot_keys.iter().take(8) {
        println!("  {:<24} {}", render_heat_token(hk.key), hk.hits);
    }
}

fn render_procs(snap: &TelemetrySnapshot) {
    let mut any = false;
    for p in &snap.procs {
        if p.invocations == 0 {
            continue;
        }
        if !any {
            println!("-- procedures");
            any = true;
        }
        println!(
            "  {:<28} {} invocations, {} commits, {} aborts, {} deferrals",
            p.name, p.invocations, p.commits, p.aborts, p.deferrals
        );
    }
}

/// One polling step: rates and interval percentiles against the previous
/// snapshot.
fn render_interval(cur: &TelemetrySnapshot, prev: &TelemetrySnapshot, secs: f64) {
    let rate = |name: &str| {
        cur.scalar(name).unwrap_or(0).saturating_sub(prev.scalar(name).unwrap_or(0)) as f64 / secs
    };
    println!(
        "phase={} | {:.0} commits/s {:.0} aborts/s {:.0} stashes/s | queue depth {} | {} conns",
        cur.phase,
        rate("commits"),
        rate("conflicts") + rate("user_aborts"),
        rate("stashes"),
        cur.scalar("queue_depth").unwrap_or(0),
        cur.scalar("conns_accepted").unwrap_or(0),
    );
    render_hists(cur.hists.iter().filter_map(|(name, h)| {
        let d = match prev.hist(name) {
            Some(p) => h.delta(p),
            None => h.clone(),
        };
        (d.count() > 0).then_some((name.as_str(), d))
    }));
    render_hot_keys(cur);
    // Only the decisions new since the previous poll, so a steady state is
    // quiet and a label migration stands out.
    let prev_last = prev
        .tuner
        .as_ref()
        .and_then(|t| t.decisions.last())
        .map(|d| (d.epoch, d.action.clone()));
    if let Some(t) = &cur.tuner {
        let fresh = match &prev_last {
            Some((epoch, action)) => t
                .decisions
                .iter()
                .rposition(|d| d.epoch == *epoch && d.action == *action)
                .map(|i| t.decisions.len() - i - 1)
                .unwrap_or(t.decisions.len()),
            None => t.decisions.len(),
        };
        render_tuner(cur, fresh);
    }
}

/// Polls every server; per-shard snapshots in address order.
fn poll_all(clients: &mut [RemoteClient]) -> std::io::Result<Vec<TelemetrySnapshot>> {
    clients.iter_mut().map(|c| c.stats()).collect()
}

/// Folds per-shard snapshots into the cluster view.
fn merged(shards: &[TelemetrySnapshot]) -> TelemetrySnapshot {
    let mut all = TelemetrySnapshot::default();
    for s in shards {
        all.merge(s);
    }
    all
}

/// The per-shard commits/s column line (cluster mode only): one column per
/// polled server, in address order — placement imbalance at a glance.
fn render_shard_columns(cur: &[TelemetrySnapshot], prev: &[TelemetrySnapshot], secs: f64) {
    let cols: Vec<String> = cur
        .iter()
        .zip(prev)
        .enumerate()
        .map(|(i, (c, p))| {
            let rate = c.scalar("commits").unwrap_or(0).saturating_sub(p.scalar("commits").unwrap_or(0))
                as f64
                / secs;
            format!("[{i}] {rate:.0}")
        })
        .collect();
    println!("  shard commits/s: {}", cols.join("  "));
}

fn main() {
    let flags = parse_flags();
    let mut clients: Vec<RemoteClient> = flags
        .addrs
        .iter()
        .map(|addr| {
            RemoteClient::connect(addr).unwrap_or_else(|e| {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let cluster = clients.len() > 1;
    if flags.once {
        let shards = poll_all(&mut clients).unwrap_or_else(|e| {
            eprintln!("GetStats failed: {e}");
            std::process::exit(1);
        });
        render_cumulative(&merged(&shards));
        if cluster {
            let zero = vec![TelemetrySnapshot::default(); shards.len()];
            println!("-- per shard (cumulative)");
            render_shard_columns(&shards, &zero, 1.0);
        }
        return;
    }
    let mut prev = poll_all(&mut clients).unwrap_or_else(|e| {
        eprintln!("GetStats failed: {e}");
        std::process::exit(1);
    });
    let mut prev_merged = merged(&prev);
    let mut prev_at = Instant::now();
    let mut polls = 0u64;
    loop {
        std::thread::sleep(Duration::from_secs_f64(flags.interval.max(0.05)));
        let cur = match poll_all(&mut clients) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("server went away: {e}");
                std::process::exit(1);
            }
        };
        let now = Instant::now();
        let secs = now.duration_since(prev_at).as_secs_f64().max(1e-9);
        let cur_merged = merged(&cur);
        render_interval(&cur_merged, &prev_merged, secs);
        if cluster {
            render_shard_columns(&cur, &prev, secs);
        }
        prev = cur;
        prev_merged = cur_merged;
        prev_at = now;
        polls += 1;
        if flags.count > 0 && polls >= flags.count {
            return;
        }
    }
}
