//! Cross-process acceptance test: a real `doppel-server` child process
//! answers `GetStats` over TCP, `doppel-stat --once` renders the snapshot,
//! and `--trace-out` leaves a Perfetto-loadable Chrome trace showing the
//! split/joined phase timeline.

use doppel_common::{Key, Op, Value};
use doppel_service::{RemoteClient, RemoteTxn};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the server child on panic so a failed assertion doesn't leak a
/// process holding the test runner open.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `doppel-server` on an ephemeral port and returns the child plus
/// the address parsed from its `listening on <addr>` line.
fn spawn_server(extra: &[&str]) -> (ChildGuard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_doppel-server"));
    cmd.args(["--engine", "doppel", "--port", "0", "--workers", "2", "--phase-ms", "10"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn doppel-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.split_whitespace().next().expect("addr token").to_string();
        }
    };
    // Keep draining stdout in the background so the child never blocks on a
    // full pipe.
    std::thread::spawn(move || for _ in lines {});
    (ChildGuard(child), addr)
}

/// Drives contended splittable increments and forces a split phase, so the
/// phase machinery (and its telemetry) actually runs.
fn drive_contended_load(addr: &str) {
    let mut client = RemoteClient::connect(addr).expect("connect");
    let hot = Key::raw(7);
    let put = RemoteTxn::new().put(hot, Value::Int(0));
    assert!(client.execute(&put).unwrap().is_committed());
    client.label_split(hot, Op::Add(0)).expect("label split");
    let deadline = Instant::now() + Duration::from_millis(400);
    while Instant::now() < deadline {
        let incr = RemoteTxn::new().add(hot, 1);
        client.execute(&incr).expect("incr");
    }
}

#[test]
fn live_server_answers_get_stats_and_doppel_stat_renders_it() {
    let (_guard, addr) = spawn_server(&[]);
    drive_contended_load(&addr);

    // GetStats from this (separate) process.
    let mut client = RemoteClient::connect(&addr).expect("connect");
    let snap = client.stats().expect("GetStats");
    assert!(snap.scalar("commits").unwrap_or(0) > 0, "server committed work");
    assert!(snap.hist("exec").is_some_and(|h| h.count() > 0), "exec histogram populated");
    assert!(snap.hist("phase_joined").is_some(), "phase-duration histogram present");
    assert!(
        snap.phase == "joined" || snap.phase == "split",
        "phase string present, got {:?}",
        snap.phase
    );

    // doppel-stat renders the same snapshot.
    let out = Command::new(env!("CARGO_BIN_EXE_doppel-stat"))
        .args(["--addr", &addr, "--once"])
        .output()
        .expect("run doppel-stat");
    assert!(out.status.success(), "doppel-stat failed: {:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase:"), "doppel-stat output:\n{text}");
    assert!(text.contains("commits"), "doppel-stat output:\n{text}");
    assert!(text.contains("exec"), "doppel-stat output:\n{text}");
}

#[test]
fn trace_out_writes_perfetto_loadable_phase_timeline() {
    let trace_path = std::env::temp_dir().join(format!("doppel-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);
    let trace_arg = trace_path.to_str().unwrap().to_string();
    // The server exits on its own after --seconds; the trace is written on
    // that clean shutdown path.
    let (mut guard, addr) =
        spawn_server(&["--seconds", "3", "--trace-out", &trace_arg, "--stats-interval", "1"]);
    drive_contended_load(&addr);

    let status = guard.0.wait().expect("server exit");
    assert!(status.success(), "server exited with {status:?}");
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);

    // Chrome trace-event envelope with complete ('X') events.
    assert!(json.starts_with("{\"traceEvents\":["), "envelope: {}", &json[..json.len().min(80)]);
    assert!(json.contains("\"ph\":\"X\""), "complete events present");
    // The phase timeline: the contended split-labelled load must have driven
    // at least one split and one joined phase through the tracer.
    assert!(json.contains("\"name\":\"phase.split\""), "split phases traced");
    assert!(json.contains("\"name\":\"phase.joined\""), "joined phases traced");
    // Transaction lifecycle events ride in the same trace.
    assert!(json.contains("\"name\":\"txn.exec\""), "txn exec spans traced");
}
