//! Cross-process 2PC crash recovery: kill a shard in the in-doubt window —
//! after it voted yes, before it processed the decision — restart it on the
//! same WAL directory and port, and verify the router's re-delivered
//! decision completes the transaction exactly once: the writes land, the
//! recovered locks release, and no torn partial state survives.
//!
//! The crash uses the server's own test hook: with
//! `DOPPEL_TWOPC_CRASH=before-decide` in the environment, a `doppel-server`
//! exits with code 86 the moment a `Decide` frame arrives.

use doppel_common::{Key, ShardMap, Value};
use doppel_service::{RemoteClient, RemoteTxn, ShardOutcome, ShardRouter};
use doppel_wal::TempWalDir;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on panic so a failed assertion doesn't leak a process.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a durable occ `doppel-server` shard; `port` 0 picks an ephemeral
/// one. Returns the child and the address from its `listening on` line.
fn spawn_shard(port: u16, dir: &std::path::Path, crash_before_decide: bool) -> (ChildGuard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_doppel-server"));
    cmd.args(["--engine", "occ", "--workers", "2", "--port", &port.to_string()])
        .args(["--durable", dir.to_str().expect("utf-8 temp path")])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if crash_before_decide {
        cmd.env("DOPPEL_TWOPC_CRASH", "before-decide");
    }
    let mut child = cmd.spawn().expect("spawn doppel-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.split_whitespace().next().expect("addr token").to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (ChildGuard(child), addr)
}

/// One key owned by each of the two shards, under the router's map.
fn keys_per_shard() -> (Key, Key) {
    let map = ShardMap::new(2);
    let find = |shard| (0..64).map(Key::raw).find(|k| map.shard_of(*k) == shard).unwrap();
    (find(0), find(1))
}

fn get_via(addr: &str, key: Key) -> Option<Value> {
    let mut client = RemoteClient::connect(addr).expect("connect");
    match client.execute(&RemoteTxn::new().get(key)).expect("get") {
        out if out.is_committed() => {
            let doppel_service::RemoteOutcome::Committed { values, .. } = out else {
                unreachable!()
            };
            values.into_iter().next().flatten()
        }
        other => panic!("read did not commit: {other:?}"),
    }
}

#[test]
fn shard_killed_between_prepare_and_decide_recovers_the_decision() {
    let dir0 = TempWalDir::new("2pc-crash-shard0");
    let dir1 = TempWalDir::new("2pc-crash-shard1");
    // Shard 0 is armed to die when the decision arrives; shard 1 is normal.
    let (mut guard0, addr0) = spawn_shard(0, dir0.path(), true);
    let (_guard1, addr1) = spawn_shard(0, dir1.path(), false);
    let port0: u16 = addr0.rsplit(':').next().unwrap().parse().expect("port");
    let (key0, key1) = keys_per_shard();

    // A cross-shard transaction with non-commutative writes: `Put`s force
    // the two-phase slow path (the fast path is commutative-only).
    let addrs = vec![addr0.clone(), addr1.clone()];
    let txn = RemoteTxn::new().put(key0, Value::Int(7)).put(key1, Value::Int(9));
    let coordinator = std::thread::spawn(move || {
        let mut router = ShardRouter::connect(&addrs).expect("router connects");
        router.execute(&txn).expect("routing io")
    });

    // The decide frame kills shard 0 in the in-doubt window: vote durable,
    // decision unprocessed.
    let status = guard0.0.wait().expect("wait crashed shard");
    assert_eq!(status.code(), Some(86), "shard died on the crash hook, not something else");

    // Restart on the same WAL directory and port (no crash hook this time).
    // Recovery surfaces the prepared-but-undecided transaction as in-doubt
    // and the router's decide re-delivery loop completes it.
    let (_guard0b, addr0b) = spawn_shard(port0, dir0.path(), false);
    assert_eq!(addr0b, addr0, "restarted shard serves the original address");

    let outcome = coordinator.join().expect("coordinator thread");
    assert!(
        matches!(outcome, ShardOutcome::Committed { .. }),
        "the distributed commit survived the crash: {outcome:?}"
    );

    // Both slices landed exactly once; nothing torn.
    assert_eq!(get_via(&addr0, key0), Some(Value::Int(7)), "crashed shard's write recovered");
    assert_eq!(get_via(&addr1, key1), Some(Value::Int(9)), "healthy shard's write landed");

    // The restarted shard accounted the recovery, and the decision released
    // the recovered locks: no transaction is left in doubt.
    let mut client = RemoteClient::connect(&addr0).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = client.stats().expect("stats");
        let recovered = snap.scalar("twopc_recovered").unwrap_or(0);
        let in_doubt = snap.scalar("twopc_in_doubt").unwrap_or(0);
        if recovered >= 1 && in_doubt == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "in-doubt never drained: recovered={recovered} in_doubt={in_doubt}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The released keys accept new transactions — the cluster is fully live.
    let mut router = ShardRouter::connect(&[addr0, addr1]).expect("router reconnects");
    let follow_up = RemoteTxn::new().add(key0, 1).add(key1, 1);
    assert!(router.execute(&follow_up).expect("io").is_committed());
}

#[test]
fn decide_record_neutralizes_prepare_across_restart() {
    // A transaction that prepared *and* received its decision must leave no
    // in-doubt residue after a restart: the decide record in the WAL
    // neutralizes the prepare record during recovery.
    let dir = TempWalDir::new("2pc-decided-restart");
    let (guard, addr) = spawn_shard(0, dir.path(), false);
    let port: u16 = addr.rsplit(':').next().unwrap().parse().expect("port");
    let (key0, key1) = keys_per_shard();

    // Force the slow path so a prepare/decide pair is actually logged.
    let mut router = ShardRouter::connect(std::slice::from_ref(&addr)).expect("router connects");
    router.force_two_phase(true);
    let txn = RemoteTxn::new().put(key0, Value::Int(1)).put(key1, Value::Int(2));
    assert!(router.execute(&txn).expect("io").is_committed());

    drop(guard);
    let (_guard2, addr2) = spawn_shard(port, dir.path(), false);
    // Committed state recovered; nothing in doubt.
    assert_eq!(get_via(&addr2, key0), Some(Value::Int(1)));
    let mut client = RemoteClient::connect(&addr2).expect("connect");
    let snap = client.stats().expect("stats");
    assert_eq!(snap.scalar("twopc_in_doubt").unwrap_or(0), 0, "no in-doubt after clean decide");
}
