//! Property-based tests for the value and operation layer: the algebraic
//! facts (§4 of the paper) that the rest of the system builds on.

use doppel_common::{Op, OpKind, OrderKey, OrderedTuple, TopKSet, Value};
use proptest::prelude::*;

fn arb_order() -> impl Strategy<Value = OrderKey> {
    prop::collection::vec(-1_000i64..1_000, 1..3)
        .prop_map(|v| OrderKey::new(v).expect("generated keys are non-empty"))
}

fn arb_tuple() -> impl Strategy<Value = OrderedTuple> {
    (arb_order(), 0usize..8, prop::collection::vec(any::<u8>(), 0..16))
        .prop_map(|(order, core, payload)| OrderedTuple::new(order, core, payload))
}

proptest! {
    /// `supersedes` is a strict total order on (order, core): exactly one of
    /// a ≺ b, b ≺ a, or a == b (same order and core) holds.
    #[test]
    fn supersedes_is_a_strict_order(a in arb_tuple(), b in arb_tuple()) {
        let ab = a.supersedes(&b);
        let ba = b.supersedes(&a);
        prop_assert!(!(ab && ba), "two tuples cannot both supersede each other");
        if !ab && !ba {
            // Total on distinct tuples: only full equality is unordered.
            prop_assert_eq!(&a, &b);
        }
    }

    /// Inserting tuples into a TopK set is insensitive to insertion order.
    #[test]
    fn topk_insertion_order_does_not_matter(
        mut tuples in prop::collection::vec(arb_tuple(), 0..30),
        k in 1usize..10,
    ) {
        let mut forward = TopKSet::new(k);
        for t in &tuples {
            forward.insert_tuple(t.clone());
        }
        tuples.reverse();
        let mut backward = TopKSet::new(k);
        for t in &tuples {
            backward.insert_tuple(t.clone());
        }
        prop_assert_eq!(forward, backward);
    }

    /// A TopK set never exceeds its capacity and is always sorted descending.
    #[test]
    fn topk_is_bounded_and_sorted(
        tuples in prop::collection::vec(arb_tuple(), 0..50),
        k in 1usize..8,
    ) {
        let mut set = TopKSet::new(k);
        for t in tuples {
            set.insert_tuple(t);
        }
        prop_assert!(set.len() <= k);
        let orders: Vec<&OrderKey> = set.iter().map(|t| &t.order).collect();
        for pair in orders.windows(2) {
            prop_assert!(pair[0] >= pair[1], "entries must be sorted descending");
        }
        // No duplicate orders survive.
        for (i, a) in orders.iter().enumerate() {
            for b in orders.iter().skip(i + 1) {
                prop_assert_ne!(a, b);
            }
        }
    }

    /// Merging two TopK sets equals inserting both sets' tuples into one.
    #[test]
    fn topk_merge_equals_union(
        left in prop::collection::vec(arb_tuple(), 0..20),
        right in prop::collection::vec(arb_tuple(), 0..20),
        k in 1usize..8,
    ) {
        let mut a = TopKSet::new(k);
        for t in &left {
            a.insert_tuple(t.clone());
        }
        let mut b = TopKSet::new(k);
        for t in &right {
            b.insert_tuple(t.clone());
        }
        let mut merged = a.clone();
        merged.merge_from(&b);

        let mut union = TopKSet::new(k);
        for t in left.iter().chain(right.iter()) {
            union.insert_tuple(t.clone());
        }
        prop_assert_eq!(merged, union);
    }

    /// Op::apply_to on integer operations is total for integer inputs and the
    /// result never depends on argument aliasing.
    #[test]
    fn integer_ops_are_total_on_ints(initial in any::<i32>(), n in any::<i32>()) {
        let initial = Value::Int(initial as i64);
        for op in [Op::Add(n as i64), Op::Max(n as i64), Op::Min(n as i64), Op::Mult(n as i64)] {
            let out = op.apply_to(Some(&initial)).unwrap();
            prop_assert!(matches!(out, Value::Int(_)));
        }
    }

    /// Applying `Max` twice with the same argument is idempotent; same for Min
    /// (idempotence is what makes OCC retries of these operations harmless).
    #[test]
    fn max_min_are_idempotent(initial in any::<i32>(), n in any::<i32>()) {
        let initial = Value::Int(initial as i64);
        for op in [Op::Max(n as i64), Op::Min(n as i64)] {
            let once = op.apply_to(Some(&initial)).unwrap();
            let twice = op.apply_to(Some(&once)).unwrap();
            prop_assert_eq!(once, twice);
        }
    }

    /// OrderKey comparison is lexicographic: prefix-extended keys compare like
    /// their vectors.
    #[test]
    fn order_key_is_lexicographic(a in prop::collection::vec(-50i64..50, 1..4),
                                  b in prop::collection::vec(-50i64..50, 1..4)) {
        let ka = OrderKey::new(a.clone()).unwrap();
        let kb = OrderKey::new(b.clone()).unwrap();
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    /// Values survive a JSON round-trip (used by the RUBiS rows and the
    /// benchmark result files).
    #[test]
    fn value_serde_roundtrip(n in any::<i64>(), payload in prop::collection::vec(any::<u8>(), 0..32)) {
        for v in [Value::Int(n), Value::Bytes(payload.clone().into())] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}

/// OpKind::splittable matches the registered operation set: the paper's §4
/// operations plus the BitOr / BoundedAdd / SetUnion extensions (regression
/// guard: adding a new operation must force an explicit decision here).
#[test]
fn splittable_set_is_exactly_the_registry() {
    let splittable: Vec<OpKind> =
        OpKind::ALL.iter().copied().filter(OpKind::splittable).collect();
    assert_eq!(
        splittable,
        vec![
            OpKind::Max,
            OpKind::Min,
            OpKind::Add,
            OpKind::Mult,
            OpKind::OPut,
            OpKind::TopKInsert,
            OpKind::BitOr,
            OpKind::BoundedAdd,
            OpKind::SetUnion,
        ]
    );
}
