//! Transaction identifiers.
//!
//! Doppel assigns TIDs locally "using per-core information and the TIDs in
//! the read set" to avoid contention on a global counter (§5.1). The
//! resulting commit protocol is serializable even though the TID order may
//! diverge from the serial order.
//!
//! A [`Tid`] packs `(sequence, core)` into 64 bits: the low [`CORE_BITS`]
//! bits carry the id of the core that generated it (so two cores never
//! generate the same TID), and the remaining bits carry a per-core sequence
//! number that is always larger than any TID the transaction observed in its
//! read set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of low bits reserved for the generating core's id.
pub const CORE_BITS: u32 = 10;
/// Maximum number of workers supported by the TID layout (1024).
pub const MAX_CORES: usize = 1 << CORE_BITS;

/// A 64-bit transaction id.
///
/// `Tid(0)` is reserved for "never written" records (the initial TID of a
/// freshly loaded record).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tid(pub u64);

impl Tid {
    /// The TID of records that have never been written by a transaction.
    pub const ZERO: Tid = Tid(0);

    /// Builds a TID from a sequence number and a core id.
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES`.
    pub fn from_parts(seq: u64, core: usize) -> Self {
        assert!(core < MAX_CORES, "core id {core} exceeds MAX_CORES");
        Tid((seq << CORE_BITS) | core as u64)
    }

    /// The per-core sequence number.
    pub fn seq(&self) -> u64 {
        self.0 >> CORE_BITS
    }

    /// The id of the core that generated this TID.
    pub fn core(&self) -> usize {
        (self.0 & ((1 << CORE_BITS) - 1)) as usize
    }

    /// The raw 64-bit representation.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid({}.{})", self.seq(), self.core())
    }
}

/// Per-worker TID generator.
///
/// Each worker owns one generator. [`TidGenerator::next_after`] produces a
/// TID strictly greater than every TID passed to it and strictly greater than
/// any TID it produced before — Silo's local TID assignment rule.
#[derive(Debug)]
pub struct TidGenerator {
    core: usize,
    last_seq: u64,
}

impl TidGenerator {
    /// Creates a generator for worker `core`.
    pub fn new(core: usize) -> Self {
        assert!(core < MAX_CORES, "core id {core} exceeds MAX_CORES");
        TidGenerator { core, last_seq: 0 }
    }

    /// The core this generator belongs to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Returns a fresh TID strictly greater than every TID in `observed` and
    /// every TID previously returned by this generator.
    pub fn next_after<I>(&mut self, observed: I) -> Tid
    where
        I: IntoIterator<Item = Tid>,
    {
        let mut seq = self.last_seq;
        for tid in observed {
            seq = seq.max(tid.seq());
        }
        self.last_seq = seq + 1;
        Tid::from_parts(self.last_seq, self.core)
    }

    /// Returns a fresh TID greater than anything previously produced locally
    /// (used when the transaction read nothing).
    //
    // Named after Silo's TID-generation step, not `Iterator::next` — the
    // generator is infinite and fallible iteration semantics don't apply.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Tid {
        self.next_after(std::iter::empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let t = Tid::from_parts(42, 7);
        assert_eq!(t.seq(), 42);
        assert_eq!(t.core(), 7);
        assert_eq!(Tid::ZERO.seq(), 0);
        assert_eq!(Tid::ZERO.core(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CORES")]
    fn too_many_cores_panics() {
        let _ = Tid::from_parts(1, MAX_CORES);
    }

    #[test]
    fn generator_is_monotonic() {
        let mut g = TidGenerator::new(3);
        let a = g.next();
        let b = g.next();
        assert!(b > a);
        assert_eq!(a.core(), 3);
        assert_eq!(b.core(), 3);
    }

    #[test]
    fn generator_exceeds_observed() {
        let mut g = TidGenerator::new(1);
        let observed = Tid::from_parts(100, 9);
        let t = g.next_after([observed, Tid::from_parts(7, 2)]);
        assert!(t.seq() > 100);
        assert_eq!(t.core(), 1);
        // Subsequent TIDs keep increasing even without observations.
        let t2 = g.next();
        assert!(t2 > t);
    }

    #[test]
    fn distinct_cores_never_collide() {
        let mut g1 = TidGenerator::new(1);
        let mut g2 = TidGenerator::new(2);
        let a = g1.next();
        let b = g2.next();
        assert_ne!(a, b);
        assert_eq!(a.seq(), b.seq());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Tid::from_parts(5, 2)), "tid(5.2)");
    }
}
