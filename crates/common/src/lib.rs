//! Common types shared by every crate in the Doppel workspace.
//!
//! This crate defines the vocabulary of the system reproduced from
//! *Phase Reconciliation for Contended In-Memory Transactions* (OSDI 2014):
//!
//! * [`Key`] — fixed-size record identifiers (16 bytes, as in the paper's
//!   microbenchmarks).
//! * [`Value`] — typed record values. Doppel records have typed values and
//!   each type supports one or more operations (§3 of the paper).
//! * [`Op`] / [`OpKind`] — the operations transactions may issue, including
//!   the splittable commutative operations `Max`, `Min`, `Add`, `Mult`,
//!   `OPut` and `TopKInsert` (§4).
//! * [`Tid`] — Silo-style transaction identifiers.
//! * [`TxError`] / [`Outcome`] — abort reasons and execution outcomes,
//!   including the Doppel-specific *stash* outcome for transactions that
//!   touch split data in an incompatible way during a split phase.
//! * [`Tx`], [`TxHandle`], [`Engine`], [`Procedure`] — the engine-agnostic
//!   execution interface. The same workload code drives Doppel, OCC, 2PL and
//!   the Atomic baseline through these traits, mirroring the paper's setup
//!   where "both OCC and 2PL are implemented in the same framework as
//!   Doppel" (§8.1).

pub mod alloc;
pub mod config;
pub mod engine;
pub mod error;
pub mod key;
pub mod ops;
pub mod proc;
pub mod service;
pub mod shard;
pub mod split_op;
pub mod stats;
pub mod tid;
pub mod tune;
pub mod value;

pub use alloc::{AllocCheckpoint, CountingAlloc, ThreadAllocCheckpoint};
pub use config::{DoppelConfig, DurabilityConfig, PhaseFeedback, TunerConfig};
pub use engine::{
    Completion, CommitSink, CommitSinkExt, Engine, LogReceipt, Outcome, Procedure, ProcedureFn,
    Ticket, Tx,
    TxHandle,
};
pub use error::TxError;
pub use key::{Key, Table};
pub use ops::{EmptyOrderKey, Op, OpKind, OrderKey};
pub use proc::{
    ArgValue, Args, ProcId, ProcRegistry, ProcResult, ProcStats, ProcStatsSnapshot,
    RegisteredCall, TxCtx,
};
pub use service::{RequestId, ServiceCompletion, ServiceReply, SubmitError};
pub use shard::{fast_path_op, ShardMap};
pub use split_op::{split_ops, SplitOp, SplitOpRegistry};
pub use stats::{EngineStats, StatsSnapshot};
pub use tid::{Tid, TidGenerator};
pub use tune::{TuneDecision, TuneObservation, TuneSink, TuneThresholds};
pub use value::{IntSet, OrderedTuple, TopKSet, Value, ValueKind};

/// Identifier of the logical core / worker a transaction executes on.
///
/// Doppel splits contended records into *per-core slices*; the core id is
/// part of the [`OrderedTuple`] representation so that `OPut` and
/// `TopKInsert` commute (§4 of the paper).
pub type CoreId = usize;
