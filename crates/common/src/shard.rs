//! Keyspace partitioning for scale-out serving.
//!
//! A cluster of `doppel-server` processes jointly serves one logical store
//! by hash-partitioning [`Key`]s: key `k` lives on shard
//! `k.stable_hash() % n`. The mapping is a pure function of the key and the
//! shard count — every router, client and test derives the same placement
//! with no coordination or metadata service. (`stable_hash` is a fixed
//! mixing function, so placement is also stable across processes and runs.)
//!
//! The same module classifies statements for the cross-shard *fast path*:
//! a transaction whose every statement is a splittable commutative write
//! (§4's `SplitOp`s — Add/Max/BitOr/BoundedAdd/SetUnion/TopKInsert/…) can be
//! fanned out as independent per-shard sub-transactions with no coordination
//! round, exactly like the engine applies such operations as per-core slices
//! and reconciles later. Anything else (a read, a `Put`, a `Mult`) needs the
//! two-phase-commit slow path.

use crate::{Key, Op};
use serde::{Deserialize, Serialize};

/// The hash partitioning of the keyspace across `n` shards.
///
/// # Examples
///
/// ```
/// use doppel_common::{Key, ShardMap};
///
/// let map = ShardMap::new(4);
/// let k = Key::raw(7);
/// assert!(map.shard_of(k) < 4);
/// // Deterministic: every participant computes the same placement.
/// assert_eq!(map.shard_of(k), ShardMap::new(4).shard_of(k));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` partitions (`shards` is clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardMap { shards: shards.max(1) }
    }

    /// Number of shards in the map.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `key`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        (key.stable_hash() % self.shards as u64) as usize
    }
}

/// Whether a write operation is eligible for the coordination-free
/// cross-shard fast path: exactly the splittable commutative operations.
///
/// The classification is the registry-backed [`crate::OpKind::splittable`],
/// so an operation added to the split-op registry becomes fast-path eligible
/// everywhere at once.
#[inline]
pub fn fast_path_op(op: &Op) -> bool {
    op.kind().splittable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let map = ShardMap::new(4);
        for id in 0..1000u64 {
            let s = map.shard_of(Key::raw(id));
            assert!(s < 4);
            assert_eq!(s, ShardMap::new(4).shard_of(Key::raw(id)));
        }
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let map = ShardMap::new(1);
        for id in 0..100u64 {
            assert_eq!(map.shard_of(Key::raw(id)), 0);
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardMap::new(0).shards(), 1);
    }

    #[test]
    fn all_shards_reachable() {
        let map = ShardMap::new(4);
        let mut hit = [false; 4];
        for id in 0..256u64 {
            hit[map.shard_of(Key::raw(id))] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys must hit all 4 shards");
    }

    #[test]
    fn fast_path_classification_follows_split_registry() {
        assert!(fast_path_op(&Op::Add(1)));
        assert!(fast_path_op(&Op::Max(9)));
        assert!(fast_path_op(&Op::BitOr(0x4)));
        assert!(fast_path_op(&Op::BoundedAdd { n: 1, bound: 10 }));
        assert!(fast_path_op(&Op::Mult(2)));
        assert!(!fast_path_op(&Op::Put(Value::Int(1))));
    }
}
