//! Configuration of the Doppel engine.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Feedback-loop parameters for the phase coordinator (§5.4).
///
/// The coordinator "usually starts a phase change every 20 milliseconds, but
/// feedback mechanisms allow it to flexibly adjust to the workload":
/// it delays split phases when nothing is contended and hurries the next
/// joined phase when split-phase workers stash too many transactions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseFeedback {
    /// If during a joined phase no record accumulates enough conflicts to be
    /// split, the coordinator delays the next split phase and re-examines the
    /// counters after another phase length.
    pub delay_split_when_uncontended: bool,
    /// If the fraction of split-phase transactions that had to be stashed
    /// exceeds this threshold, the coordinator ends the split phase early
    /// ("hurries the next joined phase").
    pub hurry_joined_stash_fraction: f64,
    /// Minimum time the coordinator lets a split phase run before the
    /// stash-fraction feedback may cut it short.
    pub min_split_fraction: f64,
}

impl Default for PhaseFeedback {
    fn default() -> Self {
        PhaseFeedback {
            delay_split_when_uncontended: true,
            hurry_joined_stash_fraction: 0.5,
            min_split_fraction: 0.25,
        }
    }
}

/// Durability (write-ahead-log) tuning, shared by every engine.
///
/// The mechanics live in the `doppel_wal` crate; the knobs live here so that
/// engine constructors, benchmark binaries and tests can all speak the same
/// configuration language without depending on the log implementation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Group commit closes a batch (flush + fsync) once this many commit
    /// records have accumulated… (1 = synchronous commit: every record is
    /// fsynced individually).
    pub group_commit_batch: usize,
    /// …or once this much time has passed since the last fsync, whichever
    /// comes first. The deadline is checked on every append, so an idle log
    /// may exceed it; callers that need a hard bound call `sync` themselves.
    pub group_commit_interval: Duration,
    /// Crash-point injection: the log stops writing at exactly this byte
    /// offset, leaving a torn record, and drops everything after it — as if
    /// the machine died mid-write. Used by the crash-recovery test suites.
    pub crash_at_byte: Option<u64>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_commit_batch: 32,
            group_commit_interval: Duration::from_micros(200),
            crash_at_byte: None,
        }
    }
}

impl DurabilityConfig {
    /// Synchronous commit: every record is fsynced before the append returns.
    pub fn synchronous() -> Self {
        DurabilityConfig { group_commit_batch: 1, ..Default::default() }
    }

    /// Applies environment overrides: `DOPPEL_WAL_CRASH_AT=<byte offset>`
    /// arms crash-point injection (the knob the crash-injection CI suite
    /// uses), and `DOPPEL_WAL_BATCH=<n>` overrides the group-commit batch.
    pub fn from_env(mut self) -> Self {
        if let Some(at) = std::env::var("DOPPEL_WAL_CRASH_AT").ok().and_then(|v| v.parse().ok()) {
            self.crash_at_byte = Some(at);
        }
        if let Some(n) = std::env::var("DOPPEL_WAL_BATCH").ok().and_then(|v| v.parse().ok()) {
            self.group_commit_batch = n;
        }
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.group_commit_batch == 0 {
            return Err("group_commit_batch must be at least 1".into());
        }
        Ok(())
    }
}

/// Bounds and targets for the adaptive contention controller (the
/// `doppel_tuner` crate).
///
/// The tuner runs as a closed loop beside the coordinator: each `epoch` it
/// samples conflict heat, split-phase write activity and stash-replay
/// latency, then promotes/demotes split labels and steers the phase length
/// within `[min_phase_len, max_phase_len]` toward `stash_replay_target`.
/// These knobs bound how far it may steer; the decisions themselves are
/// taken from live signals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Control-loop period: how often the tuner samples and decides.
    pub epoch: Duration,
    /// Lower bound for the tuned phase length.
    pub min_phase_len: Duration,
    /// Upper bound for the tuned phase length.
    pub max_phase_len: Duration,
    /// Target p95 stash-to-replay latency. Above it the tuner shortens
    /// phases (stashed transactions wait for the next joined phase, so
    /// shorter phases bound their wait); far below it the tuner lengthens
    /// phases to amortise transition barriers.
    pub stash_replay_target: Duration,
    /// Conflict-heat delta (sampled conflicts per epoch on one key) at which
    /// the tuner promotes the key to split.
    pub promote_min_hits: u64,
    /// Consecutive epochs a split key must stay idle — cold conflict heat
    /// *and* cold split-write activity — before the tuner demotes it. This
    /// is the hysteresis that prevents promote/demote oscillation.
    pub demote_idle_epochs: u32,
    /// How many recent decisions are kept for `GetStats` / `doppel-stat`.
    pub decision_history: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            epoch: Duration::from_millis(50),
            min_phase_len: Duration::from_millis(5),
            max_phase_len: Duration::from_millis(80),
            stash_replay_target: Duration::from_millis(30),
            promote_min_hits: 48,
            demote_idle_epochs: 3,
            decision_history: 16,
        }
    }
}

impl TunerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch.is_zero() {
            return Err("tuner.epoch must be non-zero".into());
        }
        if self.min_phase_len.is_zero() {
            return Err("tuner.min_phase_len must be non-zero".into());
        }
        if self.min_phase_len > self.max_phase_len {
            return Err("tuner phase_len bounds are empty (min > max)".into());
        }
        if self.promote_min_hits == 0 {
            return Err("tuner.promote_min_hits must be at least 1".into());
        }
        if self.demote_idle_epochs == 0 {
            return Err("tuner.demote_idle_epochs must be at least 1".into());
        }
        if self.decision_history == 0 {
            return Err("tuner.decision_history must be at least 1".into());
        }
        Ok(())
    }
}

/// Tunable parameters of a Doppel database instance.
///
/// The defaults reproduce the values used throughout the paper's evaluation:
/// a 20 ms phase length (§5.4, §8.1) and automatic contention-based
/// classification (§5.5).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DoppelConfig {
    /// Number of worker threads ("cores"). Each worker owns a set of
    /// per-core slices for split records.
    pub workers: usize,
    /// Nominal phase length. The coordinator starts a joined→split transition
    /// this long after the previous joined phase began, and a split→joined
    /// transition this long after the split phase began (subject to
    /// feedback).
    pub phase_len: Duration,
    /// Number of store shards (power of two recommended).
    pub store_shards: usize,
    /// A record is marked split for an operation kind when, during one joined
    /// phase, it causes at least this many sampled conflicts…
    pub split_min_conflicts: u64,
    /// …and those conflicts amount to at least this fraction of the phase's
    /// committed transactions. Both conditions must hold.
    pub split_conflict_fraction: f64,
    /// A split record whose split-phase write count falls below this fraction
    /// of the phase's committed transactions is moved back to reconciled
    /// state at the next transition.
    pub unsplit_write_fraction: f64,
    /// A split record is also moved back when stashes attributable to it
    /// exceed its split-phase writes by this factor (reads dominate writes,
    /// so splitting no longer pays off).
    pub unsplit_stash_ratio: f64,
    /// Sampling probability for conflict accounting in joined phases
    /// (1.0 = count every conflict; the paper samples to keep overhead low).
    pub conflict_sample_rate: f64,
    /// Maximum number of records split simultaneously (a safety valve; the
    /// paper's workloads split at most a few tens of records).
    pub max_split_records: usize,
    /// When `false`, the engine never splits anything and degenerates to
    /// plain OCC — used as an ablation and in tests.
    pub enable_splitting: bool,
    /// Coordinator feedback parameters.
    pub feedback: PhaseFeedback,
    /// Bounds for the adaptive contention controller, when one is attached.
    pub tuner: TunerConfig,
}

impl Default for DoppelConfig {
    fn default() -> Self {
        DoppelConfig {
            workers: 4,
            phase_len: Duration::from_millis(20),
            store_shards: 256,
            split_min_conflicts: 12,
            split_conflict_fraction: 0.02,
            unsplit_write_fraction: 0.005,
            unsplit_stash_ratio: 8.0,
            conflict_sample_rate: 1.0,
            max_split_records: 1024,
            enable_splitting: true,
            feedback: PhaseFeedback::default(),
            tuner: TunerConfig::default(),
        }
    }
}

impl DoppelConfig {
    /// Convenience constructor: default configuration with `workers` workers.
    pub fn with_workers(workers: usize) -> Self {
        DoppelConfig { workers, ..Default::default() }
    }

    /// Sets the phase length, returning `self` for chaining.
    pub fn phase_len(mut self, d: Duration) -> Self {
        self.phase_len = d;
        self
    }

    /// Disables splitting (ablation: Doppel degenerates to OCC).
    pub fn without_splitting(mut self) -> Self {
        self.enable_splitting = false;
        self
    }

    /// Validates the configuration, returning a human-readable error when a
    /// parameter is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.workers >= crate::tid::MAX_CORES {
            return Err(format!("workers must be < {}", crate::tid::MAX_CORES));
        }
        if self.store_shards == 0 {
            return Err("store_shards must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.conflict_sample_rate) {
            return Err("conflict_sample_rate must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.split_conflict_fraction) {
            return Err("split_conflict_fraction must be in [0, 1]".into());
        }
        if self.phase_len.is_zero() {
            return Err("phase_len must be non-zero".into());
        }
        self.tuner.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DoppelConfig::default();
        assert_eq!(c.phase_len, Duration::from_millis(20));
        assert!(c.enable_splitting);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_helpers() {
        let c = DoppelConfig::with_workers(8)
            .phase_len(Duration::from_millis(5))
            .without_splitting();
        assert_eq!(c.workers, 8);
        assert_eq!(c.phase_len, Duration::from_millis(5));
        assert!(!c.enable_splitting);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(DoppelConfig { workers: 0, ..Default::default() }.validate().is_err());
        assert!(DoppelConfig { store_shards: 0, ..Default::default() }.validate().is_err());
        assert!(
            DoppelConfig { conflict_sample_rate: 1.5, ..Default::default() }.validate().is_err()
        );
        assert!(DoppelConfig { split_conflict_fraction: -0.1, ..Default::default() }
            .validate()
            .is_err());
        assert!(DoppelConfig { phase_len: Duration::ZERO, ..Default::default() }
            .validate()
            .is_err());
        assert!(DoppelConfig { workers: 5000, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn tuner_validation_catches_bad_knobs() {
        let ok = TunerConfig::default();
        assert!(ok.validate().is_ok());
        assert!(TunerConfig { epoch: Duration::ZERO, ..ok.clone() }.validate().is_err());
        assert!(TunerConfig { min_phase_len: Duration::ZERO, ..ok.clone() }.validate().is_err());
        // Empty bounds: min > max.
        assert!(TunerConfig {
            min_phase_len: Duration::from_millis(50),
            max_phase_len: Duration::from_millis(10),
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(TunerConfig { promote_min_hits: 0, ..ok.clone() }.validate().is_err());
        assert!(TunerConfig { demote_idle_epochs: 0, ..ok.clone() }.validate().is_err());
        assert!(TunerConfig { decision_history: 0, ..ok.clone() }.validate().is_err());
        // DoppelConfig::validate covers the nested tuner knobs.
        let mut cfg = DoppelConfig::default();
        cfg.tuner.epoch = Duration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn durability_defaults_and_validation() {
        let d = DurabilityConfig::default();
        assert!(d.group_commit_batch > 1);
        assert_eq!(d.crash_at_byte, None);
        assert!(d.validate().is_ok());
        assert_eq!(DurabilityConfig::synchronous().group_commit_batch, 1);
        assert!(DurabilityConfig { group_commit_batch: 0, ..Default::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = DoppelConfig::with_workers(3);
        let s = serde_json::to_string(&c).unwrap();
        let back: DoppelConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }
}
