//! The stored-procedure registry.
//!
//! The paper's transaction model is *procedures known to the system in
//! advance* (§3: "clients submit transactions in the form of procedures") —
//! that is what lets Doppel classify contended records and choose split
//! operations per transaction type. This module makes that model a first-class
//! API surface:
//!
//! * [`ProcRegistry`] maps a stable [`ProcId`] / name to a typed procedure
//!   body `fn(&mut TxCtx, &Args) -> Result<ProcResult, TxError>`;
//! * [`Args`] / [`ProcResult`] are the self-describing argument and result
//!   vectors (ints, keys, values, byte blobs, strings) that cross the wire —
//!   their byte codec rides the WAL record codec in `doppel_wal::codec`;
//! * [`RegisteredCall`] binds a registry entry to one argument vector and
//!   implements [`Procedure`], so a registered invocation flows through the
//!   same engine workers, retry logic and stash machinery as any closure
//!   transaction;
//! * [`ProcStats`] counts per-procedure invocations, commits, aborts and
//!   stash-deferrals, and the registry can carry per-procedure *contention
//!   hints* — `(procedure, key, operation)` triples a server feeds to
//!   Doppel's classifier as manual split labels at startup.
//!
//! Remote clients name procedures instead of shipping statements, so
//! transactions with read-dependent logic (all of RUBiS's `StoreBid` /
//! `ViewItem` family) can run over the network.

use crate::engine::{Procedure, Tx};
use crate::error::TxError;
use crate::key::Key;
use crate::ops::OpKind;
use crate::value::Value;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Stable identifier of a registered procedure: its registration index.
///
/// Ids are dense (`0..registry.len()`), so per-procedure state can live in
/// plain vectors. The *name* is the wire-stable identity; ids are stable only
/// within one registry instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// One element of an [`Args`] / [`ProcResult`] vector.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// A signed integer (also used for ids and booleans).
    Int(i64),
    /// A record key.
    Key(Key),
    /// A typed store value (any [`Value`] variant).
    Value(Value),
    /// An opaque byte blob.
    Bytes(Bytes),
    /// A UTF-8 string.
    Str(String),
}

impl ArgValue {
    /// Short tag name used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ArgValue::Int(_) => "int",
            ArgValue::Key(_) => "key",
            ArgValue::Value(_) => "value",
            ArgValue::Bytes(_) => "bytes",
            ArgValue::Str(_) => "str",
        }
    }
}

/// A self-describing argument (or result) vector.
///
/// Built with the chainable constructors, read with the typed accessors;
/// accessor failures surface as non-retryable [`TxError::UserAbort`]s so a
/// malformed remote invocation aborts cleanly instead of panicking a worker.
///
/// # Examples
///
/// ```
/// use doppel_common::{Args, Key};
///
/// let args = Args::new().key(Key::raw(7)).int(42).str("hello");
/// assert_eq!(args.get_int(1).unwrap(), 42);
/// assert_eq!(args.get_key(0).unwrap(), Key::raw(7));
/// assert!(args.get_int(5).is_err(), "missing index is a typed error");
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Args {
    vals: Vec<ArgValue>,
}

/// Result vector of a procedure: same shape and codec as [`Args`].
pub type ProcResult = Args;

fn arg_error(reason: &'static str) -> TxError {
    TxError::UserAbort { reason }
}

impl Args {
    /// An empty vector.
    pub fn new() -> Self {
        Args::default()
    }

    /// Wraps an existing element vector (codec decode path).
    pub fn from_vec(vals: Vec<ArgValue>) -> Self {
        Args { vals }
    }

    /// Clears the argument list, keeping its allocation so the vector can be
    /// refilled in place (pooled callers reuse one `Args` across calls).
    pub fn clear(&mut self) {
        self.vals.clear();
    }

    /// Appends an element in place (non-consuming counterpart of the builder
    /// methods, for pooled buffers).
    pub fn push(&mut self, v: ArgValue) {
        self.vals.push(v);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The elements, in order.
    pub fn iter(&self) -> impl Iterator<Item = &ArgValue> {
        self.vals.iter()
    }

    /// The raw element at `i`.
    pub fn get(&self, i: usize) -> Option<&ArgValue> {
        self.vals.get(i)
    }

    /// Appends an integer.
    pub fn int(mut self, n: i64) -> Self {
        self.vals.push(ArgValue::Int(n));
        self
    }

    /// Appends an unsigned id (stored as [`ArgValue::Int`]; ids in this
    /// workspace stay well below `i64::MAX`).
    pub fn uint(self, n: u64) -> Self {
        self.int(n as i64)
    }

    /// Appends a key.
    pub fn key(mut self, k: Key) -> Self {
        self.vals.push(ArgValue::Key(k));
        self
    }

    /// Appends a store value.
    pub fn value(mut self, v: Value) -> Self {
        self.vals.push(ArgValue::Value(v));
        self
    }

    /// Appends a byte blob.
    pub fn bytes(mut self, b: impl Into<Bytes>) -> Self {
        self.vals.push(ArgValue::Bytes(b.into()));
        self
    }

    /// Appends a string.
    pub fn str(mut self, s: impl Into<String>) -> Self {
        self.vals.push(ArgValue::Str(s.into()));
        self
    }

    /// The integer at `i`.
    pub fn get_int(&self, i: usize) -> Result<i64, TxError> {
        match self.vals.get(i) {
            Some(ArgValue::Int(n)) => Ok(*n),
            Some(_) => Err(arg_error("procedure argument: expected int")),
            None => Err(arg_error("procedure argument: missing int")),
        }
    }

    /// The integer at `i` as an unsigned id.
    pub fn get_u64(&self, i: usize) -> Result<u64, TxError> {
        let n = self.get_int(i)?;
        u64::try_from(n).map_err(|_| arg_error("procedure argument: negative id"))
    }

    /// The key at `i`.
    pub fn get_key(&self, i: usize) -> Result<Key, TxError> {
        match self.vals.get(i) {
            Some(ArgValue::Key(k)) => Ok(*k),
            Some(_) => Err(arg_error("procedure argument: expected key")),
            None => Err(arg_error("procedure argument: missing key")),
        }
    }

    /// The store value at `i`.
    pub fn get_value(&self, i: usize) -> Result<&Value, TxError> {
        match self.vals.get(i) {
            Some(ArgValue::Value(v)) => Ok(v),
            Some(_) => Err(arg_error("procedure argument: expected value")),
            None => Err(arg_error("procedure argument: missing value")),
        }
    }

    /// The byte blob at `i`.
    pub fn get_bytes(&self, i: usize) -> Result<&Bytes, TxError> {
        match self.vals.get(i) {
            Some(ArgValue::Bytes(b)) => Ok(b),
            Some(_) => Err(arg_error("procedure argument: expected bytes")),
            None => Err(arg_error("procedure argument: missing bytes")),
        }
    }

    /// The string at `i`.
    pub fn get_str(&self, i: usize) -> Result<&str, TxError> {
        match self.vals.get(i) {
            Some(ArgValue::Str(s)) => Ok(s),
            Some(_) => Err(arg_error("procedure argument: expected str")),
            None => Err(arg_error("procedure argument: missing str")),
        }
    }
}

/// The execution context handed to a registered procedure body: the worker's
/// transaction interface. Derefs to [`Tx`], so procedure bodies use the same
/// `ctx.get` / `ctx.add` / `ctx.put` vocabulary as closure procedures.
pub struct TxCtx<'a> {
    tx: &'a mut dyn Tx,
}

impl<'a> TxCtx<'a> {
    /// Wraps a worker transaction.
    pub fn new(tx: &'a mut dyn Tx) -> Self {
        TxCtx { tx }
    }

    /// The underlying transaction interface.
    pub fn tx(&mut self) -> &mut dyn Tx {
        self.tx
    }
}

impl<'a> Deref for TxCtx<'a> {
    type Target = dyn Tx + 'a;

    fn deref(&self) -> &Self::Target {
        self.tx
    }
}

impl<'a> DerefMut for TxCtx<'a> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.tx
    }
}

/// A registered procedure body.
pub type ProcBody = dyn Fn(&mut TxCtx<'_>, &Args) -> Result<ProcResult, TxError> + Send + Sync;

/// Number of counter stripes per procedure. Workers index stripes by
/// `core % STAT_STRIPES`, so on typical core counts every worker bumps its
/// own cache line.
const STAT_STRIPES: usize = 16;

/// One cache line of per-procedure counters.
#[derive(Debug, Default)]
#[repr(align(64))]
struct StatStripe {
    invocations: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    deferrals: AtomicU64,
}

/// Per-procedure counters, updated by the execution machinery:
///
/// * invocations — execution attempts of the body ([`RegisteredCall::run`]
///   bumps this on every run, so OCC retries and stash replays count);
/// * commits / aborts — final outcomes, maintained by the transaction
///   service's dispatch loop (the direct `TxHandle` path does not see
///   outcomes per procedure);
/// * deferrals — stash-deferrals by Doppel split phases, also maintained by
///   the service.
///
/// Counters are striped per core: the INCR-style microbenchmarks push
/// millions of invocations per second of *one* registered procedure from
/// every core, and a single shared cache line would reintroduce exactly the
/// contention those benchmarks measure the absence of.
#[derive(Debug, Default)]
pub struct ProcStats {
    stripes: [StatStripe; STAT_STRIPES],
}

impl ProcStats {
    #[inline]
    fn stripe(&self, core: crate::CoreId) -> &StatStripe {
        &self.stripes[core % STAT_STRIPES]
    }

    /// Records one body execution attempt on `core`.
    #[inline]
    pub fn note_invocation(&self, core: crate::CoreId) {
        self.stripe(core).invocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a final outcome on `core` (service dispatch).
    pub fn note_outcome(&self, core: crate::CoreId, committed: bool) {
        let stripe = self.stripe(core);
        let counter = if committed { &stripe.commits } else { &stripe.aborts };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stash-deferral on `core` (service dispatch).
    pub fn note_deferral(&self, core: crate::CoreId) {
        self.stripe(core).deferrals.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> ProcStatsSnapshot {
        let mut snap = ProcStatsSnapshot { name: name.to_string(), ..Default::default() };
        for stripe in &self.stripes {
            snap.invocations += stripe.invocations.load(Ordering::Relaxed);
            snap.commits += stripe.commits.load(Ordering::Relaxed);
            snap.aborts += stripe.aborts.load(Ordering::Relaxed);
            snap.deferrals += stripe.deferrals.load(Ordering::Relaxed);
        }
        snap
    }
}

/// Point-in-time copy of one procedure's [`ProcStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStatsSnapshot {
    /// The procedure's registered name.
    pub name: String,
    /// Body execution attempts recorded (includes retries and replays).
    pub invocations: u64,
    /// Committed outcomes recorded (service path).
    pub commits: u64,
    /// Aborted outcomes recorded (service path).
    pub aborts: u64,
    /// Stash-deferrals recorded.
    pub deferrals: u64,
}

impl ProcStatsSnapshot {
    /// Counter-wise difference `self - earlier` (for per-run reporting when
    /// one registry outlives several runs).
    pub fn delta(&self, earlier: &ProcStatsSnapshot) -> ProcStatsSnapshot {
        ProcStatsSnapshot {
            name: self.name.clone(),
            invocations: self.invocations - earlier.invocations,
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            deferrals: self.deferrals - earlier.deferrals,
        }
    }
}

struct ProcEntry {
    name: &'static str,
    read_only: bool,
    body: Box<ProcBody>,
    stats: ProcStats,
}

/// The server-side procedure registry: stable names to typed bodies, plus
/// per-procedure statistics and contention hints.
///
/// Registries are built mutably at startup (procedure *packs* are plain
/// functions taking `&mut ProcRegistry`), then shared immutably behind an
/// `Arc` by the service, the wire front-end and the workload generators.
///
/// # Examples
///
/// ```
/// use doppel_common::{Args, Key, ProcRegistry, Value};
/// use std::sync::Arc;
///
/// let mut reg = ProcRegistry::new();
/// let incr = reg.register("counter.incr", |ctx, args| {
///     ctx.add(args.get_key(0)?, args.get_int(1)?)?;
///     Ok(Args::new())
/// });
/// let reg = Arc::new(reg);
/// let call = reg.call(incr, Args::new().key(Key::raw(1)).int(5));
/// assert_eq!(doppel_common::Procedure::name(call.as_ref()), "counter.incr");
/// ```
#[derive(Default)]
pub struct ProcRegistry {
    entries: Vec<ProcEntry>,
    by_name: HashMap<&'static str, ProcId>,
    hints: Vec<(ProcId, Key, OpKind)>,
}

impl ProcRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProcRegistry::default()
    }

    fn register_entry(
        &mut self,
        name: &'static str,
        read_only: bool,
        body: Box<ProcBody>,
    ) -> ProcId {
        assert!(
            !self.by_name.contains_key(name),
            "procedure {name:?} registered twice"
        );
        let id = ProcId(self.entries.len() as u32);
        self.entries.push(ProcEntry { name, read_only, body, stats: ProcStats::default() });
        self.by_name.insert(name, id);
        id
    }

    /// Registers a read-write procedure under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn register<F>(&mut self, name: &'static str, body: F) -> ProcId
    where
        F: Fn(&mut TxCtx<'_>, &Args) -> Result<ProcResult, TxError> + Send + Sync + 'static,
    {
        self.register_entry(name, false, Box::new(body))
    }

    /// Registers a read-only procedure under `name`.
    pub fn register_read_only<F>(&mut self, name: &'static str, body: F) -> ProcId
    where
        F: Fn(&mut TxCtx<'_>, &Args) -> Result<ProcResult, TxError> + Send + Sync + 'static,
    {
        self.register_entry(name, true, Box::new(body))
    }

    /// Resolves a name to its id.
    pub fn lookup(&self, name: &str) -> Option<ProcId> {
        self.by_name.get(name).copied()
    }

    /// The registered name of `id`.
    pub fn name_of(&self, id: ProcId) -> &'static str {
        self.entries[id.0 as usize].name
    }

    /// True when `id` was registered read-only.
    pub fn is_read_only(&self, id: ProcId) -> bool {
        self.entries[id.0 as usize].read_only
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Number of registered procedures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no procedure is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Declares that `proc` contends on `key` with operations of kind `op`.
    /// A server fronting a Doppel engine feeds these to the classifier as
    /// manual split labels at startup (paper §5.5).
    pub fn hint_contended(&mut self, proc: ProcId, key: Key, op: OpKind) {
        self.hints.push((proc, key, op));
    }

    /// The declared contention hints.
    pub fn contention_hints(&self) -> &[(ProcId, Key, OpKind)] {
        &self.hints
    }

    /// The live counters of `id`.
    pub fn stats_of(&self, id: ProcId) -> &ProcStats {
        &self.entries[id.0 as usize].stats
    }

    /// Snapshots every procedure's counters, in registration order.
    pub fn stats(&self) -> Vec<ProcStatsSnapshot> {
        self.entries.iter().map(|e| e.stats.snapshot(e.name)).collect()
    }

    /// Binds `id` to one argument vector as an executable [`Procedure`].
    pub fn call(self: &Arc<Self>, id: ProcId, args: Args) -> Arc<RegisteredCall> {
        assert!((id.0 as usize) < self.entries.len(), "unknown {id}");
        Arc::new(RegisteredCall {
            registry: Arc::clone(self),
            id,
            args,
            result: Mutex::new(None),
        })
    }

    /// [`ProcRegistry::call`] by name; `None` for an unknown name.
    pub fn call_by_name(self: &Arc<Self>, name: &str, args: Args) -> Option<Arc<RegisteredCall>> {
        self.lookup(name).map(|id| self.call(id, args))
    }
}

impl fmt::Debug for ProcRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcRegistry").field("procedures", &self.names()).finish()
    }
}

/// One invocation of a registered procedure: an entry bound to an argument
/// vector. Implements [`Procedure`], so it runs through any engine handle or
/// through the transaction service exactly like a closure transaction; the
/// body's [`ProcResult`] is captured on every (re-)execution, so the result
/// shipped to the client is the one observed by the run that committed.
pub struct RegisteredCall {
    registry: Arc<ProcRegistry>,
    id: ProcId,
    args: Args,
    result: Mutex<Option<ProcResult>>,
}

impl RegisteredCall {
    fn entry(&self) -> &ProcEntry {
        &self.registry.entries[self.id.0 as usize]
    }

    /// The registry entry this call invokes.
    pub fn proc_id(&self) -> ProcId {
        self.id
    }

    /// The bound argument vector.
    pub fn args(&self) -> &Args {
        &self.args
    }

    /// Takes the result of the last completed execution.
    pub fn take_result(&self) -> Option<ProcResult> {
        self.result.lock().expect("result lock poisoned").take()
    }
}

impl Procedure for RegisteredCall {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let entry = self.entry();
        entry.stats.note_invocation(tx.core());
        let mut ctx = TxCtx::new(tx);
        let result = (entry.body)(&mut ctx, &self.args)?;
        *self.result.lock().expect("result lock poisoned") = Some(result);
        Ok(())
    }

    fn name(&self) -> &'static str {
        self.entry().name
    }

    fn is_read_only(&self) -> bool {
        self.entry().read_only
    }

    fn proc_stats(&self) -> Option<&ProcStats> {
        Some(&self.entry().stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use crate::CoreId;

    struct MapTx(std::collections::HashMap<Key, Value>);

    impl Tx for MapTx {
        fn core(&self) -> CoreId {
            0
        }
        fn get(&mut self, k: Key) -> Result<Option<Value>, TxError> {
            Ok(self.0.get(&k).cloned())
        }
        fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
            let next = op.apply_to(self.0.get(&k))?;
            self.0.insert(k, next);
            Ok(())
        }
    }

    fn demo_registry() -> (Arc<ProcRegistry>, ProcId, ProcId) {
        let mut reg = ProcRegistry::new();
        let incr = reg.register("demo.incr", |ctx, args| {
            ctx.add(args.get_key(0)?, args.get_int(1)?)?;
            Ok(Args::new())
        });
        let read = reg.register_read_only("demo.read", |ctx, args| {
            let v = ctx.get_int(args.get_key(0)?)?;
            Ok(Args::new().int(v))
        });
        (Arc::new(reg), incr, read)
    }

    #[test]
    fn args_builders_and_accessors() {
        let args = Args::new()
            .int(-5)
            .uint(9)
            .key(Key::raw(3))
            .value(Value::Int(7))
            .bytes(b"blob".as_ref())
            .str("name");
        assert_eq!(args.len(), 6);
        assert_eq!(args.get_int(0).unwrap(), -5);
        assert_eq!(args.get_u64(1).unwrap(), 9);
        assert_eq!(args.get_key(2).unwrap(), Key::raw(3));
        assert_eq!(args.get_value(3).unwrap(), &Value::Int(7));
        assert_eq!(args.get_bytes(4).unwrap().as_ref(), b"blob");
        assert_eq!(args.get_str(5).unwrap(), "name");
        // Typed errors, not panics.
        assert!(args.get_int(2).is_err());
        assert!(args.get_key(0).is_err());
        assert!(args.get_u64(0).is_err(), "negative id rejected");
        assert!(args.get_str(99).is_err());
        assert!(!args.get_int(99).unwrap_err().is_retryable());
    }

    #[test]
    fn registry_registers_looks_up_and_calls() {
        let (reg, incr, read) = demo_registry();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup("demo.incr"), Some(incr));
        assert_eq!(reg.lookup("demo.gone"), None);
        assert_eq!(reg.name_of(read), "demo.read");
        assert!(reg.is_read_only(read));
        assert!(!reg.is_read_only(incr));
        assert_eq!(reg.names(), vec!["demo.incr", "demo.read"]);

        let mut tx = MapTx([(Key::raw(1), Value::Int(10))].into_iter().collect());
        let call = reg.call(incr, Args::new().key(Key::raw(1)).int(5));
        assert_eq!(call.name(), "demo.incr");
        assert!(!call.is_read_only());
        call.run(&mut tx).unwrap();
        assert_eq!(tx.0.get(&Key::raw(1)), Some(&Value::Int(15)));

        let call = reg.call_by_name("demo.read", Args::new().key(Key::raw(1))).unwrap();
        assert!(call.is_read_only());
        call.run(&mut tx).unwrap();
        let result = call.take_result().expect("read produced a result");
        assert_eq!(result.get_int(0).unwrap(), 15);
        assert!(call.take_result().is_none(), "result is taken once");
    }

    #[test]
    fn invocations_count_every_run_and_bad_args_abort() {
        let (reg, incr, _) = demo_registry();
        let mut tx = MapTx([(Key::raw(1), Value::Int(0))].into_iter().collect());
        let call = reg.call(incr, Args::new().key(Key::raw(1)).int(1));
        call.run(&mut tx).unwrap();
        call.run(&mut tx).unwrap();
        let stats = reg.stats();
        assert_eq!(stats[0].name, "demo.incr");
        assert_eq!(stats[0].invocations, 2);
        assert_eq!(stats[0].commits, 0, "outcome counters belong to the service");

        // Missing argument: a typed, non-retryable abort.
        let bad = reg.call(incr, Args::new().key(Key::raw(1)));
        let err = bad.run(&mut tx).unwrap_err();
        assert!(matches!(err, TxError::UserAbort { .. }));
        assert_eq!(reg.stats()[0].invocations, 3);
    }

    #[test]
    fn outcome_counters_via_proc_stats_hook() {
        let (reg, incr, _) = demo_registry();
        let call = reg.call(incr, Args::new().key(Key::raw(1)).int(1));
        let stats = call.proc_stats().expect("registered calls expose stats");
        // Different cores land in different stripes; the snapshot sums them.
        stats.note_outcome(0, true);
        stats.note_outcome(1, false);
        stats.note_outcome(17, false);
        stats.note_deferral(3);
        let snap = &reg.stats()[0];
        assert_eq!((snap.commits, snap.aborts, snap.deferrals), (1, 2, 1));
    }

    #[test]
    fn snapshot_delta_subtracts_counter_wise() {
        let earlier = ProcStatsSnapshot {
            name: "p".into(),
            invocations: 3,
            commits: 2,
            aborts: 1,
            deferrals: 0,
        };
        let later = ProcStatsSnapshot {
            name: "p".into(),
            invocations: 10,
            commits: 6,
            aborts: 3,
            deferrals: 1,
        };
        let d = later.delta(&earlier);
        assert_eq!((d.invocations, d.commits, d.aborts, d.deferrals), (7, 4, 2, 1));
        assert_eq!(d.name, "p");
    }

    #[test]
    fn contention_hints_round_trip() {
        let mut reg = ProcRegistry::new();
        let p = reg.register("h.p", |_, _| Ok(Args::new()));
        reg.hint_contended(p, Key::raw(9), OpKind::Add);
        assert_eq!(reg.contention_hints(), &[(p, Key::raw(9), OpKind::Add)]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut reg = ProcRegistry::new();
        reg.register("dup", |_, _| Ok(Args::new()));
        reg.register("dup", |_, _| Ok(Args::new()));
    }
}
