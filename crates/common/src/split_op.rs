//! The open splittable-operation framework.
//!
//! The paper's §4 characterises the operations Doppel can split: they commute
//! with themselves, return nothing, and admit per-core *slices* whose size is
//! independent of how many operations were applied. The original prototype —
//! and the first version of this reproduction — hard-coded that set (`Add`,
//! `Max`, `Min`, `Mult`, `OPut`, `TopKInsert`) as enum arms threaded through
//! the value types, the slice logic, the classifier and the reconciliation
//! merge, so adding an operation meant editing five files in lockstep.
//!
//! This module replaces those hard-coded arms with a trait: a [`SplitOp`]
//! bundles *all* of an operation's semantics —
//!
//! * **apply**: the global-store semantics used by joined phases and by the
//!   OCC / 2PL / Atomic baselines ([`crate::Op::apply_to`] delegates here);
//! * **fold**: how one operation is absorbed into a per-core slice
//!   accumulator ("slice-apply" in Figure 3) — defaults to `apply`, which is
//!   correct whenever the slice state *is* a partial value of the record's
//!   type;
//! * **merge_ops**: how a finished accumulator is converted back into
//!   operations applied to the global record at reconciliation ("merge-apply"
//!   in Figure 4);
//! * the **compatibility class** ([`SplitOp::value_kind`]): the value type
//!   records split for this operation must hold, used for error reporting and
//!   registry sanity checks.
//!
//! Implementations are registered in a [`SplitOpRegistry`]; the process-wide
//! [`split_ops`] registry holds the built-in operations and is what
//! [`crate::OpKind::splittable`], the Doppel classifier, the split set and
//! the per-core slices consult. Adding a splittable operation is now: add the
//! `Op`/`OpKind` variants (data only), implement `SplitOp` for them here, and
//! list the implementation in [`SplitOpRegistry::builtin`] — every engine,
//! the classifier and reconciliation pick it up from the registry. The
//! `split_op_laws` integration test enumerates the registry, so a new
//! operation is automatically subjected to the commutativity and
//! merge-order-independence battery.

use crate::error::TxError;
use crate::ops::{Op, OpKind};
use crate::value::{IntSet, OrderedTuple, TopKSet, Value, ValueKind};

/// Semantics of one splittable commutative operation (§4).
///
/// Implementations must uphold the §4 laws — the `tests/split_op_laws.rs`
/// battery checks them for every registered operation:
///
/// * **commutativity**: `apply` over any permutation of a batch of
///   operations of this kind yields the same final value;
/// * **slice/merge equivalence**: folding a batch into per-core accumulators
///   (any assignment of operations to cores) and merging the accumulators
///   (in any order) equals applying the batch directly;
/// * **identity**: an accumulator into which nothing was folded merges as a
///   no-op (the slice layer guarantees this by never creating empty
///   accumulators).
pub trait SplitOp: Send + Sync + std::fmt::Debug {
    /// The operation kind this implementation handles.
    fn kind(&self) -> OpKind;

    /// The compatibility class: the value kind records split for this
    /// operation hold. Used for error reporting and sanity checks.
    fn value_kind(&self) -> ValueKind;

    /// Global-store semantics: the new value after applying `op` to
    /// `current` (`None` = the record does not exist yet, i.e. the
    /// operation's identity).
    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError>;

    /// Slice semantics: folds `op` into a per-core accumulator in place
    /// (`*state` is `None` before the first fold, `Some` afterwards).
    ///
    /// On `Err`, implementations must leave `state` unchanged — the slice
    /// layer relies on this so a rejected operation cannot wipe out the
    /// updates already folded this phase.
    ///
    /// The default — apply the operation to the partial state as if it were
    /// the record — is correct whenever the accumulator is a partial value of
    /// the record's own type (`Max` keeps a running maximum, …). Override it
    /// when the accumulator must differ from the stored value
    /// ([`BoundedAddOp`] accumulates the *unclamped* delta sum so clamping
    /// happens exactly once, at merge time) or to mutate a container
    /// accumulator without cloning it ([`TopKInsertOp`], [`SetUnionOp`]).
    fn fold(&self, state: &mut Option<Value>, op: &Op) -> Result<(), TxError> {
        *state = Some(self.apply(op, state.as_ref())?);
        Ok(())
    }

    /// True when `op` agrees with `first` (the first operation folded into a
    /// slice) on any static per-record parameters. Operations whose merge
    /// reads a parameter from the first folded op — [`BoundedAddOp`]'s bound,
    /// [`TopKInsertOp`]'s capacity — override this; the slice layer
    /// debug-asserts it so a workload mixing parameters on one key fails
    /// loudly in tests instead of silently diverging between engines.
    fn params_match(&self, _first: &Op, _op: &Op) -> bool {
        true
    }

    /// Merge semantics: converts a finished accumulator into the operations
    /// to apply to the global record at reconciliation. `first` is a copy of
    /// the first operation folded into the accumulator; it carries any static
    /// parameters the merge needs (`TopKInsert`'s capacity, `BoundedAdd`'s
    /// bound). Returning an empty vector skips the merge (the accumulator is
    /// the operation's absorbing identity, e.g. an `Add` slice that summed to
    /// zero).
    fn merge_ops(&self, state: Value, first: &Op) -> Vec<Op>;
}

/// Helper for integer-typed operations: extracts the current integer, using
/// `identity` for absent records.
fn int_state(kind: OpKind, current: Option<&Value>, identity: i64) -> Result<i64, TxError> {
    match current {
        None => Ok(identity),
        Some(Value::Int(n)) => Ok(*n),
        Some(v) => Err(TxError::type_mismatch(kind, v.kind())),
    }
}

/// Helper: the argument of an operation, or a type error naming this
/// implementation's value kind if the operation is of the wrong kind (a
/// logic error upstream).
macro_rules! expect_op {
    ($op:expr, $pat:pat => $out:expr, $vk:expr) => {
        match $op {
            $pat => $out,
            other => return Err(TxError::type_mismatch(other.kind(), $vk)),
        }
    };
}

/// `Max`: running maximum. Identity: −∞ (absent records take the argument).
#[derive(Debug)]
pub struct MaxOp;

impl SplitOp for MaxOp {
    fn kind(&self) -> OpKind {
        OpKind::Max
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Int
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let n = expect_op!(op, Op::Max(n) => *n, ValueKind::Int);
        Ok(Value::Int(int_state(OpKind::Max, current, i64::MIN)?.max(n)))
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state.as_int() {
            Some(n) => vec![Op::Max(n)],
            None => Vec::new(),
        }
    }
}

/// `Min`: running minimum. Identity: +∞.
#[derive(Debug)]
pub struct MinOp;

impl SplitOp for MinOp {
    fn kind(&self) -> OpKind {
        OpKind::Min
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Int
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let n = expect_op!(op, Op::Min(n) => *n, ValueKind::Int);
        Ok(Value::Int(int_state(OpKind::Min, current, i64::MAX)?.min(n)))
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state.as_int() {
            Some(n) => vec![Op::Min(n)],
            None => Vec::new(),
        }
    }
}

/// `Add`: wrapping sum. Identity: 0 (a zero-sum slice merges as a no-op).
#[derive(Debug)]
pub struct AddOp;

impl SplitOp for AddOp {
    fn kind(&self) -> OpKind {
        OpKind::Add
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Int
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let n = expect_op!(op, Op::Add(n) => *n, ValueKind::Int);
        Ok(Value::Int(int_state(OpKind::Add, current, 0)?.wrapping_add(n)))
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state.as_int() {
            Some(0) | None => Vec::new(),
            Some(n) => vec![Op::Add(n)],
        }
    }
}

/// `Mult`: wrapping product. Identity: 1 (a unit-product slice merges as a
/// no-op).
#[derive(Debug)]
pub struct MultOp;

impl SplitOp for MultOp {
    fn kind(&self) -> OpKind {
        OpKind::Mult
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Int
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let n = expect_op!(op, Op::Mult(n) => *n, ValueKind::Int);
        Ok(Value::Int(int_state(OpKind::Mult, current, 1)?.wrapping_mul(n)))
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state.as_int() {
            Some(1) | None => Vec::new(),
            Some(n) => vec![Op::Mult(n)],
        }
    }
}

/// `OPut`: ordered put — the tuple with the largest `(order, core)` wins.
/// Identity: order −∞ (absent records take any tuple).
#[derive(Debug)]
pub struct OPutOp;

impl SplitOp for OPutOp {
    fn kind(&self) -> OpKind {
        OpKind::OPut
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Tuple
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let mut state = current.cloned();
        self.fold(&mut state, op)?;
        Ok(state.expect("fold always leaves a value on success"))
    }

    fn fold(&self, state: &mut Option<Value>, op: &Op) -> Result<(), TxError> {
        // The single copy of the OPut semantics; `apply` delegates here with
        // a cloned current value, the slice path passes its accumulator so
        // the winning tuple is replaced in place.
        let (order, core, payload) = expect_op!(
            op,
            Op::OPut { order, core, payload } => (order, core, payload),
            ValueKind::Tuple
        );
        let new = OrderedTuple::new(order.clone(), *core, payload.clone());
        match state {
            None => {
                *state = Some(Value::Tuple(new));
                Ok(())
            }
            Some(Value::Tuple(cur)) => {
                if new.supersedes(cur) {
                    *cur = new;
                }
                Ok(())
            }
            Some(v) => Err(TxError::type_mismatch(OpKind::OPut, v.kind())),
        }
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state {
            Value::Tuple(t) => vec![Op::OPut { order: t.order, core: t.core, payload: t.payload }],
            _ => Vec::new(),
        }
    }
}

/// `TopKInsert`: bounded top-K set insertion. A slice is a local top-K set,
/// so its size — and the reconciliation cost — is bounded by K regardless of
/// how many operations ran during the split phase (§4 guideline 4).
#[derive(Debug)]
pub struct TopKInsertOp;

impl SplitOp for TopKInsertOp {
    fn kind(&self) -> OpKind {
        OpKind::TopKInsert
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::TopK
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let mut state = current.cloned();
        self.fold(&mut state, op)?;
        Ok(state.expect("fold always leaves a value on success"))
    }

    fn fold(&self, state: &mut Option<Value>, op: &Op) -> Result<(), TxError> {
        // The single copy of the TopKInsert semantics; `apply` delegates here
        // with a cloned current value, the slice path passes its accumulator
        // so the local top-K set is mutated in place.
        let (order, core, payload, k) = expect_op!(
            op,
            Op::TopKInsert { order, core, payload, k } => (order, core, payload, *k),
            ValueKind::TopK
        );
        match state {
            None => {
                let mut set = TopKSet::new(k);
                set.insert(order.clone(), *core, payload.clone());
                *state = Some(Value::TopK(set));
                Ok(())
            }
            Some(Value::TopK(cur)) => {
                cur.insert(order.clone(), *core, payload.clone());
                Ok(())
            }
            Some(v) => Err(TxError::type_mismatch(OpKind::TopKInsert, v.kind())),
        }
    }

    fn params_match(&self, first: &Op, op: &Op) -> bool {
        matches!(
            (first, op),
            (Op::TopKInsert { k: a, .. }, Op::TopKInsert { k: b, .. }) if a == b
        )
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state {
            Value::TopK(set) => {
                let k = set.capacity();
                set.iter()
                    .map(|t| Op::TopKInsert {
                        order: t.order.clone(),
                        core: t.core,
                        payload: t.payload.clone(),
                        k,
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// `BitOr`: flag accumulation — bitwise OR is commutative, associative and
/// idempotent. Identity: 0.
#[derive(Debug)]
pub struct BitOrOp;

impl SplitOp for BitOrOp {
    fn kind(&self) -> OpKind {
        OpKind::BitOr
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Int
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let n = expect_op!(op, Op::BitOr(n) => *n, ValueKind::Int);
        Ok(Value::Int(int_state(OpKind::BitOr, current, 0)? | n))
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state.as_int() {
            Some(0) | None => Vec::new(),
            Some(n) => vec![Op::BitOr(n)],
        }
    }
}

/// `BoundedAdd`: a counter saturating at a per-record bound (rate limiting,
/// strike counters).
///
/// Only *non-negative* increments keep clamp-at-a-bound commutative, so
/// negative arguments are treated as 0. The slice accumulator is the
/// **unclamped** sum of deltas — clamping per fold would bake the bound into
/// the partial sums and break merge equivalence for records whose stored
/// value is negative; clamping once at merge time gives exactly
/// `min(bound, v + Σdeltas)`, which equals direct per-operation application
/// for every starting value `v`.
#[derive(Debug)]
pub struct BoundedAddOp;

impl SplitOp for BoundedAddOp {
    fn kind(&self) -> OpKind {
        OpKind::BoundedAdd
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Int
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let (n, bound) = expect_op!(
            op,
            Op::BoundedAdd { n, bound } => (*n, *bound),
            ValueKind::Int
        );
        let cur = int_state(OpKind::BoundedAdd, current, 0)?;
        Ok(Value::Int(cur.saturating_add(n.max(0)).min(bound)))
    }

    fn fold(&self, state: &mut Option<Value>, op: &Op) -> Result<(), TxError> {
        let n = expect_op!(op, Op::BoundedAdd { n, .. } => *n, ValueKind::Int);
        let sum = int_state(OpKind::BoundedAdd, state.as_ref(), 0)?;
        *state = Some(Value::Int(sum.saturating_add(n.max(0))));
        Ok(())
    }

    fn params_match(&self, first: &Op, op: &Op) -> bool {
        matches!(
            (first, op),
            (Op::BoundedAdd { bound: a, .. }, Op::BoundedAdd { bound: b, .. }) if a == b
        )
    }

    fn merge_ops(&self, state: Value, first: &Op) -> Vec<Op> {
        let bound = match first {
            Op::BoundedAdd { bound, .. } => *bound,
            _ => return Vec::new(),
        };
        match state.as_int() {
            // Unlike `Add`, a zero sum is not skippable: `BoundedAdd(0)`
            // still clamps a record whose loaded value exceeds the bound.
            Some(n) => vec![Op::BoundedAdd { n, bound }],
            None => Vec::new(),
        }
    }
}

/// `SetUnion`: distinct-element accumulation. Union is commutative,
/// associative and idempotent; the identity is the empty set. A slice is the
/// set of elements this core saw, merged with one `SetUnion` operation.
#[derive(Debug)]
pub struct SetUnionOp;

impl SplitOp for SetUnionOp {
    fn kind(&self) -> OpKind {
        OpKind::SetUnion
    }

    fn value_kind(&self) -> ValueKind {
        ValueKind::Set
    }

    fn apply(&self, op: &Op, current: Option<&Value>) -> Result<Value, TxError> {
        let mut state = current.cloned();
        self.fold(&mut state, op)?;
        Ok(state.expect("fold always leaves a value on success"))
    }

    fn fold(&self, state: &mut Option<Value>, op: &Op) -> Result<(), TxError> {
        // The single copy of the SetUnion semantics; `apply` delegates here
        // with a cloned current value, the slice path passes its accumulator
        // in place — cloning the accumulated set on every fold would turn a
        // split phase's inserts into quadratic work.
        let elems = expect_op!(op, Op::SetUnion(s) => s, ValueKind::Set);
        match state {
            None => {
                let mut set = IntSet::new();
                set.union_with(elems);
                *state = Some(Value::Set(set));
                Ok(())
            }
            Some(Value::Set(cur)) => {
                cur.union_with(elems);
                Ok(())
            }
            Some(v) => Err(TxError::type_mismatch(OpKind::SetUnion, v.kind())),
        }
    }

    fn merge_ops(&self, state: Value, _first: &Op) -> Vec<Op> {
        match state {
            Value::Set(s) if !s.is_empty() => vec![Op::SetUnion(s)],
            _ => Vec::new(),
        }
    }
}

/// A registry of [`SplitOp`] implementations, indexed by [`OpKind`].
///
/// The registry is the single source of truth for which operation kinds are
/// splittable: the classifier, the split set and the slice layer all consult
/// it. [`split_ops`] returns the process-wide registry of built-in
/// operations; tests exercising custom operations can build their own with
/// [`SplitOpRegistry::builtin`] + [`SplitOpRegistry::register`].
#[derive(Debug)]
pub struct SplitOpRegistry {
    /// Implementations indexed by `OpKind` discriminant, so the lookup on
    /// every engine's apply path is a single array access.
    ops: [Option<&'static dyn SplitOp>; OpKind::ALL.len()],
}

impl Default for SplitOpRegistry {
    fn default() -> Self {
        SplitOpRegistry { ops: [None; OpKind::ALL.len()] }
    }
}

impl SplitOpRegistry {
    /// An empty registry (nothing is splittable).
    pub fn empty() -> Self {
        SplitOpRegistry::default()
    }

    /// The registry of built-in splittable operations: the paper's §4 set
    /// plus the `BitOr` / `BoundedAdd` / `SetUnion` extensions.
    pub fn builtin() -> Self {
        let mut r = SplitOpRegistry::empty();
        r.register(&MaxOp);
        r.register(&MinOp);
        r.register(&AddOp);
        r.register(&MultOp);
        r.register(&OPutOp);
        r.register(&TopKInsertOp);
        r.register(&BitOrOp);
        r.register(&BoundedAddOp);
        r.register(&SetUnionOp);
        r
    }

    /// Registers an implementation, replacing any previous one for the same
    /// kind.
    pub fn register(&mut self, op: &'static dyn SplitOp) {
        self.ops[op.kind() as usize] = Some(op);
    }

    /// The implementation for `kind`, or `None` when `kind` is not
    /// splittable.
    #[inline]
    pub fn get(&self, kind: OpKind) -> Option<&'static dyn SplitOp> {
        self.ops[kind as usize]
    }

    /// True when records may be split for `kind`.
    #[inline]
    pub fn is_splittable(&self, kind: OpKind) -> bool {
        self.get(kind).is_some()
    }

    /// Iterates over the registered implementations.
    pub fn iter(&self) -> impl Iterator<Item = &'static dyn SplitOp> + '_ {
        self.ops.iter().copied().flatten()
    }

    /// Number of registered operations.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

/// The process-wide registry of built-in splittable operations.
pub fn split_ops() -> &'static SplitOpRegistry {
    static REGISTRY: std::sync::OnceLock<SplitOpRegistry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(SplitOpRegistry::builtin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_splittable_kind() {
        let reg = split_ops();
        assert_eq!(reg.len(), 9);
        assert!(!reg.is_empty());
        for kind in OpKind::ALL {
            assert_eq!(
                reg.is_splittable(*kind),
                kind.splittable(),
                "registry and OpKind::splittable disagree on {kind}"
            );
            if let Some(op) = reg.get(*kind) {
                assert_eq!(op.kind(), *kind, "registered under the wrong kind");
            }
        }
        assert!(reg.get(OpKind::Get).is_none());
        assert!(reg.get(OpKind::Put).is_none());
    }

    #[test]
    fn register_replaces_existing_kind() {
        let mut reg = SplitOpRegistry::empty();
        reg.register(&AddOp);
        reg.register(&AddOp);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.iter().count(), 1);
    }

    #[test]
    fn apply_rejects_foreign_op() {
        // Handing an op of the wrong kind to an implementation is a logic
        // error upstream, reported as a type mismatch rather than a panic.
        let err = AddOp.apply(&Op::Max(3), None).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
        let err = SetUnionOp.apply(&Op::Add(1), None).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
    }

    #[test]
    fn bounded_add_fold_accumulates_unclamped() {
        let op = Op::BoundedAdd { n: 8, bound: 10 };
        let mut state = None;
        BoundedAddOp.fold(&mut state, &op).unwrap();
        BoundedAddOp.fold(&mut state, &op).unwrap();
        // The accumulator exceeds the bound: clamping is deferred to merge.
        assert_eq!(state, Some(Value::Int(16)));
        let merge = BoundedAddOp.merge_ops(state.unwrap(), &op);
        assert_eq!(merge, vec![Op::BoundedAdd { n: 16, bound: 10 }]);
        // Merging into a negative stored value stays exact.
        assert_eq!(merge[0].apply_to(Some(&Value::Int(-20))).unwrap(), Value::Int(-4));
    }

    #[test]
    fn failed_fold_leaves_state_untouched() {
        // A fold that rejects its input must not wipe the accumulator.
        let mut state = Some(Value::Int(5));
        let err = SetUnionOp.fold(&mut state, &Op::SetUnion(IntSet::singleton(1))).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
        assert_eq!(state, Some(Value::Int(5)));
    }

    #[test]
    fn params_match_detects_mixed_static_parameters() {
        let a = Op::BoundedAdd { n: 1, bound: 10 };
        let b = Op::BoundedAdd { n: 2, bound: 99 };
        assert!(BoundedAddOp.params_match(&a, &a));
        assert!(!BoundedAddOp.params_match(&a, &b));
        let t = |k| Op::TopKInsert {
            order: crate::OrderKey::from(1),
            core: 0,
            payload: bytes::Bytes::new(),
            k,
        };
        assert!(TopKInsertOp.params_match(&t(4), &t(4)));
        assert!(!TopKInsertOp.params_match(&t(4), &t(8)));
        // Operations without static parameters always match.
        assert!(AddOp.params_match(&Op::Add(1), &Op::Add(2)));
    }

    #[test]
    fn absorbing_identities_merge_to_nothing() {
        let probe = Op::Add(0);
        assert!(AddOp.merge_ops(Value::Int(0), &probe).is_empty());
        assert!(MultOp.merge_ops(Value::Int(1), &probe).is_empty());
        assert!(BitOrOp.merge_ops(Value::Int(0), &probe).is_empty());
        assert!(SetUnionOp.merge_ops(Value::Set(IntSet::new()), &probe).is_empty());
        // BoundedAdd deliberately merges even a zero sum (it still clamps).
        assert_eq!(
            BoundedAddOp.merge_ops(Value::Int(0), &Op::BoundedAdd { n: 0, bound: 5 }).len(),
            1
        );
    }
}
