//! Transaction abort reasons.

use crate::key::Key;
use crate::ops::OpKind;
use crate::value::ValueKind;
use std::fmt;

/// Why a transaction could not commit.
///
/// The workload harness treats [`TxError::Conflict`] and
/// [`TxError::LockBusy`] as retryable aborts (the paper's §8.1 retries them
/// "at a later time, chosen with exponential backoff"), while
/// [`TxError::Stash`] means the Doppel worker has taken ownership of the
/// transaction and will re-execute it in the next joined phase (§5.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// OCC validation failed: a record read by the transaction changed (or
    /// was locked by another transaction) before commit.
    Conflict {
        /// The record whose validation failed.
        key: Key,
    },
    /// A lock needed at commit (OCC) or access (2PL) time was held by another
    /// transaction and the engine chose to abort rather than wait.
    LockBusy {
        /// The record whose lock was busy.
        key: Key,
    },
    /// The transaction touched split data in a way that is not allowed during
    /// the current split phase: it read a split record, or used an operation
    /// other than the record's selected operation. The transaction is saved
    /// and re-executed in the next joined phase.
    Stash {
        /// The split record that triggered the stash.
        key: Key,
        /// The operation the transaction attempted.
        attempted: OpKind,
    },
    /// An operation was applied to a value of an incompatible type, e.g.
    /// `Add` on a byte-string record.
    TypeMismatch {
        /// The operation that was attempted.
        op: OpKind,
        /// The type of the value the record actually holds.
        found: ValueKind,
    },
    /// The transaction logic itself decided to abort (e.g. a business-rule
    /// violation). The harness does not retry these.
    UserAbort {
        /// Reason given by the transaction code.
        reason: &'static str,
    },
    /// The engine is shutting down; no further transactions are accepted.
    Shutdown,
}

impl TxError {
    /// Convenience constructor for [`TxError::TypeMismatch`].
    pub fn type_mismatch(op: OpKind, found: ValueKind) -> Self {
        TxError::TypeMismatch { op, found }
    }

    /// True if the harness should retry the transaction later (with backoff).
    pub fn is_retryable(&self) -> bool {
        matches!(self, TxError::Conflict { .. } | TxError::LockBusy { .. })
    }

    /// True if a Doppel worker stashed the transaction for the next joined
    /// phase.
    pub fn is_stash(&self) -> bool {
        matches!(self, TxError::Stash { .. })
    }
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Conflict { key } => write!(f, "conflict on {key}"),
            TxError::LockBusy { key } => write!(f, "lock busy on {key}"),
            TxError::Stash { key, attempted } => {
                write!(f, "stashed: {attempted} on split record {key}")
            }
            TxError::TypeMismatch { op, found } => {
                write!(f, "type mismatch: {op} applied to {found:?} value")
            }
            TxError::UserAbort { reason } => write!(f, "user abort: {reason}"),
            TxError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    #[test]
    fn retryability() {
        assert!(TxError::Conflict { key: Key::raw(1) }.is_retryable());
        assert!(TxError::LockBusy { key: Key::raw(1) }.is_retryable());
        assert!(!TxError::Stash { key: Key::raw(1), attempted: OpKind::Get }.is_retryable());
        assert!(!TxError::UserAbort { reason: "x" }.is_retryable());
        assert!(!TxError::Shutdown.is_retryable());
    }

    #[test]
    fn stash_detection() {
        assert!(TxError::Stash { key: Key::raw(1), attempted: OpKind::Get }.is_stash());
        assert!(!TxError::Conflict { key: Key::raw(1) }.is_stash());
    }

    #[test]
    fn display_messages() {
        let s = format!("{}", TxError::Conflict { key: Key::raw(2) });
        assert!(s.contains("conflict"));
        let s = format!("{}", TxError::Stash { key: Key::raw(2), attempted: OpKind::Get });
        assert!(s.contains("stashed"));
        let s = format!(
            "{}",
            TxError::TypeMismatch { op: OpKind::Add, found: ValueKind::Bytes }
        );
        assert!(s.contains("type mismatch"));
    }
}
