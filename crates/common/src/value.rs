//! Typed record values.
//!
//! Doppel records have typed values and each type supports one or more
//! operations (§3). The value types needed by the paper's operations are:
//!
//! * integers — `Max`, `Min`, `Add`, `Mult`, `Put`, `Get`;
//! * byte strings — `Put`, `Get`;
//! * ordered tuples — `OPut`, `Get`;
//! * top-K sets — `TopKInsert`, `Get`.

use crate::CoreId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The order component of an [`OrderedTuple`] or top-K entry.
///
/// The paper allows the order to be "a number (or several numbers in
/// lexicographic order)" (§4). `OrderKey` in this crate is re-exported from
/// [`crate::ops`]; this module only consumes it.
pub use crate::ops::OrderKey;

/// An ordered tuple `(order, core_id, payload)` as used by `OPut` (§4).
///
/// The order and core-id components make `OPut` commutative: when two cores
/// write the same key, the tuple with the larger order wins, and ties are
/// broken by the larger core id. Absent records behave as if they held a
/// tuple with order −∞.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderedTuple {
    /// The order (e.g. `[bid_amount, timestamp]` for RUBiS' max bidder).
    pub order: OrderKey,
    /// Id of the core that wrote the tuple; the commutativity tie-breaker.
    pub core: CoreId,
    /// Arbitrary byte-string payload.
    pub payload: Bytes,
}

impl OrderedTuple {
    /// Creates a new ordered tuple.
    pub fn new(order: OrderKey, core: CoreId, payload: impl Into<Bytes>) -> Self {
        OrderedTuple { order, core, payload: payload.into() }
    }

    /// Returns true if `self` should replace `other` under `OPut` semantics:
    /// strictly greater `(order, core, payload)`, compared lexicographically.
    ///
    /// The core id is the cross-core commutativity tie-breaker (§4); the
    /// payload comparison extends the tie-break to tuples the *same* core
    /// wrote with equal order, so that replacement is a total order on
    /// distinct tuples and `OPut` / `TopKInsert` commute unconditionally —
    /// without it, the first-applied tuple would win and the outcome would
    /// depend on application order.
    pub fn supersedes(&self, other: &OrderedTuple) -> bool {
        (&self.order, self.core, self.payload.as_ref())
            > (&other.order, other.core, other.payload.as_ref())
    }
}

/// A bounded set of ordered tuples, as used by `TopKInsert` (§4).
///
/// The set contains at most `k` tuples. At most one tuple per order value is
/// allowed: in case of duplicate order, the tuple with the highest core id is
/// kept. When more than `k` tuples are present, the tuple with the smallest
/// order is dropped.
///
/// # Examples
///
/// ```
/// use doppel_common::{OrderKey, TopKSet};
///
/// let mut top = TopKSet::new(2);
/// top.insert(OrderKey::from(10), 0, b"a".as_ref());
/// top.insert(OrderKey::from(20), 0, b"b".as_ref());
/// top.insert(OrderKey::from(15), 1, b"c".as_ref());
/// // Capacity 2: order 10 was evicted, 15 and 20 remain.
/// let orders: Vec<i64> = top.iter().map(|t| t.order.primary()).collect();
/// assert_eq!(orders, vec![20, 15]);
/// ```
///
/// The entry vector is shared copy-on-write (`Arc` + [`Arc::make_mut`]):
/// cloning a `TopKSet` — which every stamped read of a top-K record does —
/// bumps a refcount instead of deep-copying `K` tuples, and mutation only
/// copies when a reader still holds the previous version.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKSet {
    k: usize,
    /// Entries sorted descending by (order, core).
    entries: Arc<Vec<OrderedTuple>>,
}

impl TopKSet {
    /// Creates an empty top-K set with capacity `k`.
    pub fn new(k: usize) -> Self {
        TopKSet { k, entries: Arc::new(Vec::new()) }
    }

    /// The configured capacity `K`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of tuples currently held (≤ `K`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the set holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a tuple, applying the dedup-by-order and bounded-size rules.
    ///
    /// Returns `true` if the set changed.
    pub fn insert(&mut self, order: OrderKey, core: CoreId, payload: impl Into<Bytes>) -> bool {
        self.insert_tuple(OrderedTuple::new(order, core, payload))
    }

    /// Inserts an already-constructed tuple. See [`TopKSet::insert`].
    pub fn insert_tuple(&mut self, tuple: OrderedTuple) -> bool {
        // Dedup by order: keep the superseding tuple (highest core id, ties
        // broken by payload so insertion order never matters).
        if let Some(pos) = self.entries.iter().position(|e| e.order == tuple.order) {
            if tuple.supersedes(&self.entries[pos]) {
                Arc::make_mut(&mut self.entries)[pos] = tuple;
                return true;
            }
            return false;
        }
        let entries = Arc::make_mut(&mut self.entries);
        entries.push(tuple);
        entries.sort_by(|a, b| b.order.cmp(&a.order).then(b.core.cmp(&a.core)));
        if entries.len() > self.k {
            entries.truncate(self.k);
            // The inserted tuple may itself have been the one dropped.
        }
        true
    }

    /// Merges another top-K set into this one (used during reconciliation).
    pub fn merge_from(&mut self, other: &TopKSet) {
        if self.entries.is_empty() && other.entries.len() <= self.k {
            // O(1) adoption: the other side is already sorted and fits.
            self.entries = Arc::clone(&other.entries);
            return;
        }
        for t in other.entries.iter() {
            self.insert_tuple(t.clone());
        }
    }

    /// Iterates over the tuples in descending order.
    pub fn iter(&self) -> impl Iterator<Item = &OrderedTuple> {
        self.entries.iter()
    }

    /// The tuple with the largest order, if any.
    pub fn max(&self) -> Option<&OrderedTuple> {
        self.entries.first()
    }

    /// The tuple with the smallest retained order, if any.
    pub fn min(&self) -> Option<&OrderedTuple> {
        self.entries.last()
    }

    /// True if a tuple with exactly this order is present.
    pub fn contains_order(&self, order: &OrderKey) -> bool {
        self.entries.iter().any(|e| &e.order == order)
    }
}

/// A sorted set of 64-bit integers, as used by `SetUnion`.
///
/// `SetUnion` makes distinct-element accumulation (unique visitors, distinct
/// badge holders, …) a splittable operation: set union is commutative,
/// associative and idempotent, so per-core partial sets can be merged in any
/// order. The set's size is bounded by the number of *distinct* elements ever
/// inserted, not by the number of operations, which keeps reconciliation cost
/// independent of the split phase's operation count (§4 guideline 4).
///
/// Like [`TopKSet`], the element vector is shared copy-on-write so that
/// cloning a set-valued record (every stamped read) is a refcount bump, not
/// an O(n) copy.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntSet {
    /// Elements in ascending order, no duplicates.
    elems: Arc<Vec<i64>>,
}

impl IntSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntSet::default()
    }

    /// Creates a set holding exactly one element.
    pub fn singleton(e: i64) -> Self {
        IntSet { elems: Arc::new(vec![e]) }
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// True if `e` is in the set.
    pub fn contains(&self, e: i64) -> bool {
        self.elems.binary_search(&e).is_ok()
    }

    /// Inserts an element; returns `true` if the set changed.
    pub fn insert(&mut self, e: i64) -> bool {
        match self.elems.binary_search(&e) {
            Ok(_) => false,
            Err(pos) => {
                Arc::make_mut(&mut self.elems).insert(pos, e);
                true
            }
        }
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: &IntSet) {
        if other.elems.is_empty() {
            return;
        }
        if self.elems.is_empty() {
            // O(1) adoption of the other side's shared vector.
            self.elems = Arc::clone(&other.elems);
            return;
        }
        // Single-element unions (the common `set_insert` case) stay a binary
        // search + insert; larger ones get a linear two-way sorted merge
        // instead of per-element O(n) vector shifts.
        if other.elems.len() == 1 {
            self.insert(other.elems[0]);
            return;
        }
        let mut merged = Vec::with_capacity(self.elems.len() + other.elems.len());
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.elems[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.elems[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.elems[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.elems[i..]);
        merged.extend_from_slice(&other.elems[j..]);
        self.elems = Arc::new(merged);
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.elems.iter().copied()
    }
}

impl FromIterator<i64> for IntSet {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        let mut set = IntSet::new();
        for e in iter {
            set.insert(e);
        }
        set
    }
}

/// Discriminant of a [`Value`], used in error reporting and type checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// 64-bit signed integer.
    Int,
    /// Opaque byte string.
    Bytes,
    /// Ordered tuple (order, core, payload).
    Tuple,
    /// Bounded top-K set of ordered tuples.
    TopK,
    /// Sorted set of distinct 64-bit integers.
    Set,
}

/// A typed record value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (counters, maxima, ratings, …).
    Int(i64),
    /// Opaque byte string (serialized rows).
    Bytes(Bytes),
    /// Ordered tuple written by `OPut`.
    Tuple(OrderedTuple),
    /// Bounded top-K set written by `TopKInsert`.
    TopK(TopKSet),
    /// Distinct-integer set written by `SetUnion`.
    Set(IntSet),
}

impl Value {
    /// Integer zero, the default initial value for counter records.
    pub const ZERO: Value = Value::Int(0);

    /// The discriminant of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Bytes(_) => ValueKind::Bytes,
            Value::Tuple(_) => ValueKind::Tuple,
            Value::TopK(_) => ValueKind::TopK,
            Value::Set(_) => ValueKind::Set,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the byte-string payload, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the ordered tuple, if this is a [`Value::Tuple`].
    pub fn as_tuple(&self) -> Option<&OrderedTuple> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the top-K set, if this is a [`Value::TopK`].
    pub fn as_topk(&self) -> Option<&TopKSet> {
        match self {
            Value::TopK(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the integer set, if this is a [`Value::Set`].
    pub fn as_set(&self) -> Option<&IntSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by store statistics.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Bytes(b) => b.len(),
            Value::Tuple(t) => 24 + t.payload.len(),
            Value::TopK(t) => t.entries.iter().map(|e| 24 + e.payload.len()).sum::<usize>() + 16,
            Value::Set(s) => 8 * s.len() + 16,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Tuple(t) => write!(f, "tuple(order={:?}, core={})", t.order, t.core),
            Value::TopK(t) => write!(f, "topk[{}/{}]", t.len(), t.capacity()),
            Value::Set(s) => write!(f, "set[{}]", s.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(b))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Bytes(Bytes::copy_from_slice(s.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ord(n: i64) -> OrderKey {
        OrderKey::from(n)
    }

    #[test]
    fn ordered_tuple_supersedes_by_order_then_core() {
        let a = OrderedTuple::new(ord(10), 1, "a");
        let b = OrderedTuple::new(ord(11), 0, "b");
        let c = OrderedTuple::new(ord(10), 2, "c");
        assert!(b.supersedes(&a));
        assert!(!a.supersedes(&b));
        assert!(c.supersedes(&a));
        assert!(!a.supersedes(&c));
        assert!(!a.supersedes(&a));
    }

    #[test]
    fn topk_keeps_largest_k() {
        let mut t = TopKSet::new(3);
        for i in 0..10 {
            t.insert(ord(i), 0, format!("v{i}").into_bytes());
        }
        assert_eq!(t.len(), 3);
        let orders: Vec<i64> = t.iter().map(|e| e.order.primary()).collect();
        assert_eq!(orders, vec![9, 8, 7]);
        assert_eq!(t.max().unwrap().order, ord(9));
        assert_eq!(t.min().unwrap().order, ord(7));
    }

    #[test]
    fn topk_duplicate_order_keeps_highest_core() {
        let mut t = TopKSet::new(4);
        assert!(t.insert(ord(5), 1, "core1"));
        assert!(!t.insert(ord(5), 0, "core0"));
        assert!(t.insert(ord(5), 3, "core3"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.max().unwrap().core, 3);
        assert_eq!(t.max().unwrap().payload, Bytes::from_static(b"core3"));
    }

    #[test]
    fn topk_insert_below_min_when_full_is_dropped() {
        let mut t = TopKSet::new(2);
        t.insert(ord(10), 0, "a");
        t.insert(ord(20), 0, "b");
        t.insert(ord(1), 0, "tiny");
        assert_eq!(t.len(), 2);
        assert!(!t.contains_order(&ord(1)));
    }

    #[test]
    fn topk_merge_is_same_as_inserting_everything() {
        let mut a = TopKSet::new(3);
        let mut b = TopKSet::new(3);
        let mut all = TopKSet::new(3);
        for (i, n) in [5, 9, 1, 7, 3, 8].iter().enumerate() {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.insert(ord(*n), i, format!("{n}").into_bytes());
            all.insert(ord(*n), i, format!("{n}").into_bytes());
        }
        a.merge_from(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).kind(), ValueKind::Int);
        assert!(Value::from("hi").as_bytes().is_some());
        assert!(Value::Int(1).as_bytes().is_none());
        let t = Value::Tuple(OrderedTuple::new(ord(1), 0, "x"));
        assert!(t.as_tuple().is_some());
        assert!(t.as_int().is_none());
        let k = Value::TopK(TopKSet::new(5));
        assert!(k.as_topk().is_some());
    }

    #[test]
    fn value_display_and_size() {
        assert_eq!(format!("{}", Value::Int(3)), "3");
        assert_eq!(Value::Int(3).approx_size(), 8);
        assert_eq!(Value::from("abcd").approx_size(), 4);
        assert!(format!("{}", Value::from("abcd")).contains("bytes[4]"));
    }

    #[test]
    fn int_set_semantics() {
        let mut s = IntSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5), "duplicate insert does not change the set");
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5], "iteration is sorted");

        let other: IntSet = [5, 9, -3].into_iter().collect();
        s.union_with(&other);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![-3, 1, 5, 9]);

        // Union into an empty set clones the other side.
        let mut empty = IntSet::new();
        empty.union_with(&s);
        assert_eq!(empty, s);
        assert_eq!(IntSet::singleton(7).iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn int_set_union_is_commutative() {
        let a: IntSet = [1, 2, 3].into_iter().collect();
        let b: IntSet = [3, 4].into_iter().collect();
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn set_value_accessors() {
        let v = Value::Set(IntSet::singleton(4));
        assert_eq!(v.kind(), ValueKind::Set);
        assert!(v.as_set().unwrap().contains(4));
        assert!(v.as_int().is_none());
        assert_eq!(format!("{v}"), "set[1]");
        assert_eq!(v.approx_size(), 24);
    }

    #[test]
    fn serde_roundtrip() {
        let vals = vec![
            Value::Int(-4),
            Value::from("payload"),
            Value::Tuple(OrderedTuple::new(ord(9), 3, "p")),
            Value::TopK({
                let mut t = TopKSet::new(2);
                t.insert(ord(1), 0, "x");
                t
            }),
            Value::Set([3, 1, 4].into_iter().collect()),
        ];
        for v in vals {
            let s = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&s).unwrap();
            assert_eq!(back, v);
        }
    }
}
