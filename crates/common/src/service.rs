//! Types for the transaction service boundary.
//!
//! The paper's deployment model (§3, §6) is a *service*: clients submit
//! transactions in the form of procedures to one worker thread per core.
//! This module defines the vocabulary of that boundary — what a client hands
//! in and what it gets back — so that the service implementation
//! (`doppel_service`), the engines and the workload harness can all speak it
//! without depending on each other.
//!
//! The lifecycle of a submitted procedure:
//!
//! ```text
//! submit ──► queued ──► executing ──► Done(Committed tid)
//!    │                      │  ├────► Done(Aborted err)        (client retries
//!    │                      │  │                                if retryable)
//!    │                      │  └────► Deferred ─► replayed ─► Done(…, deferred)
//!    └────► SubmitError::Busy                    (Doppel stash, next joined
//!           (backpressure: queue full)            phase)
//! ```

use crate::error::TxError;
use crate::tid::Tid;
use std::fmt;

/// Client-chosen identifier of one submitted procedure. The service echoes it
/// back in every [`ServiceReply`] concerning that submission; uniqueness is
/// the client's responsibility (per reply channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Rejection at the submission boundary, before the procedure reaches a
/// worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The target worker's submission queue is at its depth cap. This is the
    /// service's backpressure signal: the client should back off (or shed
    /// load) and resubmit.
    Busy,
    /// The service is draining or has shut down; no new work is accepted.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "submission queue full (backpressure)"),
            SubmitError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Final result of one submitted procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceCompletion {
    /// The id the client chose at submission.
    pub request: RequestId,
    /// Commit TID, or the abort that ended the transaction.
    /// [`TxError::is_retryable`] tells the client whether resubmitting makes
    /// sense.
    pub result: Result<Tid, TxError>,
    /// True when the procedure was stash-deferred by a Doppel split phase and
    /// completed on replay in a later joined phase (a matching
    /// [`ServiceReply::Deferred`] was emitted earlier).
    pub deferred: bool,
}

/// One message on a client's reply channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceReply {
    /// The procedure finished (committed or aborted).
    Done(ServiceCompletion),
    /// The procedure touched split data incompatibly during a Doppel split
    /// phase; the worker stashed it and will re-execute it in the next joined
    /// phase. A [`ServiceReply::Done`] with the same request id (and
    /// `deferred == true`) follows.
    Deferred(RequestId),
}

impl ServiceReply {
    /// The request this reply concerns.
    pub fn request(&self) -> RequestId {
        match self {
            ServiceReply::Done(c) => c.request,
            ServiceReply::Deferred(id) => *id,
        }
    }

    /// The completion, when this reply is final.
    pub fn into_done(self) -> Option<ServiceCompletion> {
        match self {
            ServiceReply::Done(c) => Some(c),
            ServiceReply::Deferred(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_accessors() {
        let done = ServiceReply::Done(ServiceCompletion {
            request: RequestId(7),
            result: Ok(Tid::from_parts(1, 0)),
            deferred: false,
        });
        assert_eq!(done.request(), RequestId(7));
        assert!(done.clone().into_done().is_some());
        let deferred = ServiceReply::Deferred(RequestId(9));
        assert_eq!(deferred.request(), RequestId(9));
        assert!(deferred.into_done().is_none());
    }

    #[test]
    fn submit_error_display() {
        assert!(SubmitError::Busy.to_string().contains("backpressure"));
        assert!(SubmitError::Shutdown.to_string().contains("shutting down"));
        assert_eq!(RequestId(3).to_string(), "req#3");
    }
}
