//! Engine statistics counters.
//!
//! All counters are relaxed atomics: they are monitoring data, not part of
//! any correctness protocol, and relaxed updates keep them off the critical
//! path.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters updated by workers and read by coordinators, benchmarks
/// and tests.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Transactions that committed.
    pub commits: AtomicU64,
    /// Transactions that aborted due to a conflict (and were handed back to
    /// the caller for retry).
    pub conflicts: AtomicU64,
    /// Transactions stashed by Doppel workers during split phases.
    pub stashes: AtomicU64,
    /// Stashed transactions that eventually committed in a joined phase.
    pub stash_commits: AtomicU64,
    /// User-initiated aborts.
    pub user_aborts: AtomicU64,
    /// Operations applied to per-core slices (split-phase fast path).
    pub slice_ops: AtomicU64,
    /// Per-core slices merged into the global store during reconciliations.
    pub slices_merged: AtomicU64,
    /// Completed joined phases.
    pub joined_phases: AtomicU64,
    /// Completed split phases.
    pub split_phases: AtomicU64,
    /// Records currently marked as split (gauge).
    pub split_records: AtomicU64,
    /// Records that have ever been marked split.
    pub total_splits: AtomicU64,
    /// Records moved back from split to reconciled state.
    pub total_unsplits: AtomicU64,
    /// Records appended to the write-ahead log (commit records plus merged
    /// split-key delta records).
    pub log_records: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub log_bytes: AtomicU64,
    /// `fsync` calls issued by the log.
    pub fsyncs: AtomicU64,
    /// Group-commit batches flushed (each batch is one fsync covering one or
    /// more commit records).
    pub group_commit_batches: AtomicU64,
    /// Log records replayed into this engine during crash recovery.
    pub recovered_txns: AtomicU64,
    /// Procedures currently sitting in submission queues (gauge, maintained
    /// by the transaction service).
    pub queue_depth: AtomicU64,
    /// Procedures accepted into submission queues.
    pub queue_enqueued: AtomicU64,
    /// Submissions rejected with `Busy` because a queue was at its depth cap
    /// (the service's backpressure signal).
    pub queue_busy_rejections: AtomicU64,
    /// Batched dequeues performed by service workers. The mean batch size is
    /// `queue_enqueued / queue_batches`.
    pub queue_batches: AtomicU64,
}

impl EngineStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            stashes: self.stashes.load(Ordering::Relaxed),
            stash_commits: self.stash_commits.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            slice_ops: self.slice_ops.load(Ordering::Relaxed),
            slices_merged: self.slices_merged.load(Ordering::Relaxed),
            joined_phases: self.joined_phases.load(Ordering::Relaxed),
            split_phases: self.split_phases.load(Ordering::Relaxed),
            split_records: self.split_records.load(Ordering::Relaxed),
            total_splits: self.total_splits.load(Ordering::Relaxed),
            total_unsplits: self.total_unsplits.load(Ordering::Relaxed),
            log_records: self.log_records.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            recovered_txns: self.recovered_txns.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_enqueued: self.queue_enqueued.load(Ordering::Relaxed),
            queue_busy_rejections: self.queue_busy_rejections.load(Ordering::Relaxed),
            queue_batches: self.queue_batches.load(Ordering::Relaxed),
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }

    /// Folds a [`crate::engine::LogReceipt`] returned by a
    /// [`crate::engine::CommitSink`] into the WAL counters.
    pub fn absorb_log(&self, receipt: &crate::engine::LogReceipt) {
        if receipt.records != 0 {
            Self::add(&self.log_records, receipt.records);
        }
        if receipt.bytes != 0 {
            Self::add(&self.log_bytes, receipt.bytes);
        }
        if receipt.fsyncs != 0 {
            Self::add(&self.fsyncs, receipt.fsyncs);
        }
        if receipt.batches != 0 {
            Self::add(&self.group_commit_batches, receipt.batches);
        }
    }
}

/// A point-in-time copy of [`EngineStats`], safe to serialize and diff.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// See [`EngineStats::commits`].
    pub commits: u64,
    /// See [`EngineStats::conflicts`].
    pub conflicts: u64,
    /// See [`EngineStats::stashes`].
    pub stashes: u64,
    /// See [`EngineStats::stash_commits`].
    pub stash_commits: u64,
    /// See [`EngineStats::user_aborts`].
    pub user_aborts: u64,
    /// See [`EngineStats::slice_ops`].
    pub slice_ops: u64,
    /// See [`EngineStats::slices_merged`].
    pub slices_merged: u64,
    /// See [`EngineStats::joined_phases`].
    pub joined_phases: u64,
    /// See [`EngineStats::split_phases`].
    pub split_phases: u64,
    /// See [`EngineStats::split_records`].
    pub split_records: u64,
    /// See [`EngineStats::total_splits`].
    pub total_splits: u64,
    /// See [`EngineStats::total_unsplits`].
    pub total_unsplits: u64,
    /// See [`EngineStats::log_records`].
    pub log_records: u64,
    /// See [`EngineStats::log_bytes`].
    pub log_bytes: u64,
    /// See [`EngineStats::fsyncs`].
    pub fsyncs: u64,
    /// See [`EngineStats::group_commit_batches`].
    pub group_commit_batches: u64,
    /// See [`EngineStats::recovered_txns`].
    pub recovered_txns: u64,
    /// See [`EngineStats::queue_depth`] (gauge).
    pub queue_depth: u64,
    /// See [`EngineStats::queue_enqueued`].
    pub queue_enqueued: u64,
    /// See [`EngineStats::queue_busy_rejections`].
    pub queue_busy_rejections: u64,
    /// See [`EngineStats::queue_batches`].
    pub queue_batches: u64,
    /// Heap allocations performed during the measured interval, overlaid by
    /// [`StatsSnapshot::with_alloc_counters`]. Zero when the counting
    /// allocator is not installed (see [`crate::alloc`]).
    pub alloc_count: u64,
    /// Heap bytes requested during the measured interval (same caveat as
    /// [`StatsSnapshot::alloc_count`]).
    pub alloc_bytes: u64,
}

impl StatsSnapshot {
    /// Total transactions that finished (committed or aborted for the caller).
    pub fn attempts(&self) -> u64 {
        self.commits + self.conflicts + self.user_aborts
    }

    /// Abort rate among finished transactions, in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.conflicts as f64 / attempts as f64
        }
    }

    /// Overlays the submission-queue counters from `queues` onto this
    /// snapshot. The service layer owns the queues (and therefore those
    /// counters) while the engine owns everything else; this combines both
    /// into the single snapshot benchmarks and reports consume.
    pub fn with_queue_counters(mut self, queues: &StatsSnapshot) -> StatsSnapshot {
        self.queue_depth = queues.queue_depth;
        self.queue_enqueued = queues.queue_enqueued;
        self.queue_busy_rejections = queues.queue_busy_rejections;
        self.queue_batches = queues.queue_batches;
        self
    }

    /// Overlays allocation counters measured by [`crate::alloc`] onto this
    /// snapshot. The global allocator owns these counts (they are not
    /// per-engine atomics), so drivers stamp them on after computing the
    /// engine-side delta.
    pub fn with_alloc_counters(mut self, count: u64, bytes: u64) -> StatsSnapshot {
        self.alloc_count = count;
        self.alloc_bytes = bytes;
        self
    }

    /// Mean allocations per committed transaction, `None` when idle.
    pub fn allocs_per_commit(&self) -> Option<f64> {
        if self.commits == 0 {
            None
        } else {
            Some(self.alloc_count as f64 / self.commits as f64)
        }
    }

    /// Every counter as a `(name, value)` pair, for self-describing exports
    /// (the wire telemetry snapshot, generic renderers). Keep in sync with
    /// the field list — [`StatsSnapshot::delta`] already forces that
    /// discipline on any new counter.
    pub fn named_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("commits", self.commits),
            ("conflicts", self.conflicts),
            ("stashes", self.stashes),
            ("stash_commits", self.stash_commits),
            ("user_aborts", self.user_aborts),
            ("slice_ops", self.slice_ops),
            ("slices_merged", self.slices_merged),
            ("joined_phases", self.joined_phases),
            ("split_phases", self.split_phases),
            ("split_records", self.split_records),
            ("total_splits", self.total_splits),
            ("total_unsplits", self.total_unsplits),
            ("log_records", self.log_records),
            ("log_bytes", self.log_bytes),
            ("fsyncs", self.fsyncs),
            ("group_commit_batches", self.group_commit_batches),
            ("recovered_txns", self.recovered_txns),
            ("queue_depth", self.queue_depth),
            ("queue_enqueued", self.queue_enqueued),
            ("queue_busy_rejections", self.queue_busy_rejections),
            ("queue_batches", self.queue_batches),
            ("alloc_count", self.alloc_count),
            ("alloc_bytes", self.alloc_bytes),
        ]
    }

    /// Counter-wise sum, for pooling snapshots across independent runs
    /// (e.g. one benchmark row covering several engines). The two gauges —
    /// `split_records` and `queue_depth` — take the maximum instead: adding
    /// instantaneous levels from different runs means nothing.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits + other.commits,
            conflicts: self.conflicts + other.conflicts,
            stashes: self.stashes + other.stashes,
            stash_commits: self.stash_commits + other.stash_commits,
            user_aborts: self.user_aborts + other.user_aborts,
            slice_ops: self.slice_ops + other.slice_ops,
            slices_merged: self.slices_merged + other.slices_merged,
            joined_phases: self.joined_phases + other.joined_phases,
            split_phases: self.split_phases + other.split_phases,
            split_records: self.split_records.max(other.split_records),
            total_splits: self.total_splits + other.total_splits,
            total_unsplits: self.total_unsplits + other.total_unsplits,
            log_records: self.log_records + other.log_records,
            log_bytes: self.log_bytes + other.log_bytes,
            fsyncs: self.fsyncs + other.fsyncs,
            group_commit_batches: self.group_commit_batches + other.group_commit_batches,
            recovered_txns: self.recovered_txns + other.recovered_txns,
            queue_depth: self.queue_depth.max(other.queue_depth),
            queue_enqueued: self.queue_enqueued + other.queue_enqueued,
            queue_busy_rejections: self.queue_busy_rejections + other.queue_busy_rejections,
            queue_batches: self.queue_batches + other.queue_batches,
            alloc_count: self.alloc_count + other.alloc_count,
            alloc_bytes: self.alloc_bytes + other.alloc_bytes,
        }
    }

    /// Counter-wise difference `self - earlier` (for per-interval rates).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            conflicts: self.conflicts - earlier.conflicts,
            stashes: self.stashes - earlier.stashes,
            stash_commits: self.stash_commits - earlier.stash_commits,
            user_aborts: self.user_aborts - earlier.user_aborts,
            slice_ops: self.slice_ops - earlier.slice_ops,
            slices_merged: self.slices_merged - earlier.slices_merged,
            joined_phases: self.joined_phases - earlier.joined_phases,
            split_phases: self.split_phases - earlier.split_phases,
            split_records: self.split_records,
            total_splits: self.total_splits - earlier.total_splits,
            total_unsplits: self.total_unsplits - earlier.total_unsplits,
            log_records: self.log_records - earlier.log_records,
            log_bytes: self.log_bytes - earlier.log_bytes,
            fsyncs: self.fsyncs - earlier.fsyncs,
            group_commit_batches: self.group_commit_batches - earlier.group_commit_batches,
            recovered_txns: self.recovered_txns - earlier.recovered_txns,
            queue_depth: self.queue_depth,
            queue_enqueued: self.queue_enqueued - earlier.queue_enqueued,
            queue_busy_rejections: self.queue_busy_rejections - earlier.queue_busy_rejections,
            queue_batches: self.queue_batches - earlier.queue_batches,
            alloc_count: self.alloc_count - earlier.alloc_count,
            alloc_bytes: self.alloc_bytes - earlier.alloc_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = EngineStats::new();
        EngineStats::bump(&s.commits);
        EngineStats::bump(&s.commits);
        EngineStats::add(&s.conflicts, 3);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.conflicts, 3);
        assert_eq!(snap.attempts(), 5);
        assert!((snap.abort_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_zero_when_idle() {
        assert_eq!(StatsSnapshot::default().abort_rate(), 0.0);
    }

    #[test]
    fn absorb_log_folds_receipts() {
        let s = EngineStats::new();
        s.absorb_log(&crate::engine::LogReceipt { records: 3, bytes: 120, fsyncs: 1, batches: 1 });
        s.absorb_log(&crate::engine::LogReceipt { records: 1, bytes: 40, fsyncs: 0, batches: 0 });
        let snap = s.snapshot();
        assert_eq!(snap.log_records, 4);
        assert_eq!(snap.log_bytes, 160);
        assert_eq!(snap.fsyncs, 1);
        assert_eq!(snap.group_commit_batches, 1);
        assert_eq!(snap.recovered_txns, 0);
    }

    #[test]
    fn delta_covers_log_counters() {
        let a = StatsSnapshot { log_records: 5, log_bytes: 100, fsyncs: 2, ..Default::default() };
        let b = StatsSnapshot { log_records: 9, log_bytes: 260, fsyncs: 3, ..Default::default() };
        let d = b.delta(&a);
        assert_eq!(d.log_records, 4);
        assert_eq!(d.log_bytes, 160);
        assert_eq!(d.fsyncs, 1);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let a = StatsSnapshot {
            commits: 10,
            alloc_count: 100,
            queue_depth: 3,
            split_records: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            commits: 5,
            alloc_count: 40,
            queue_depth: 7,
            split_records: 1,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.commits, 15);
        assert_eq!(m.alloc_count, 140);
        assert_eq!(m.queue_depth, 7, "gauge takes the max");
        assert_eq!(m.split_records, 2, "gauge takes the max");
        assert_eq!(m.allocs_per_commit(), Some(140.0 / 15.0));
    }

    #[test]
    fn queue_counters_snapshot_and_delta() {
        let s = EngineStats::new();
        EngineStats::add(&s.queue_enqueued, 10);
        EngineStats::bump(&s.queue_busy_rejections);
        EngineStats::add(&s.queue_batches, 4);
        s.queue_depth.store(3, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.queue_enqueued, 10);
        assert_eq!(snap.queue_busy_rejections, 1);
        assert_eq!(snap.queue_batches, 4);
        assert_eq!(snap.queue_depth, 3);
        // The depth gauge passes through a delta unchanged; the counters
        // difference.
        let d = snap.delta(&StatsSnapshot { queue_enqueued: 4, ..Default::default() });
        assert_eq!(d.queue_enqueued, 6);
        assert_eq!(d.queue_depth, 3);
        // Overlaying queue counters replaces only the queue fields.
        let engine_side = StatsSnapshot { commits: 9, ..Default::default() };
        let merged = engine_side.with_queue_counters(&snap);
        assert_eq!(merged.commits, 9);
        assert_eq!(merged.queue_enqueued, 10);
    }

    #[test]
    fn alloc_counters_overlay_and_delta() {
        let snap = StatsSnapshot { commits: 4, ..Default::default() }
            .with_alloc_counters(20, 4096);
        assert_eq!(snap.alloc_count, 20);
        assert_eq!(snap.alloc_bytes, 4096);
        assert_eq!(snap.allocs_per_commit(), Some(5.0));
        assert_eq!(StatsSnapshot::default().allocs_per_commit(), None);
        let earlier = StatsSnapshot::default().with_alloc_counters(5, 1024);
        let d = snap.delta(&earlier);
        assert_eq!(d.alloc_count, 15);
        assert_eq!(d.alloc_bytes, 3072);
    }

    #[test]
    fn delta() {
        let a = StatsSnapshot { commits: 10, conflicts: 2, ..Default::default() };
        let b = StatsSnapshot { commits: 25, conflicts: 5, ..Default::default() };
        let d = b.delta(&a);
        assert_eq!(d.commits, 15);
        assert_eq!(d.conflicts, 3);
    }
}
