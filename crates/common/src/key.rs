//! Record keys.
//!
//! The paper's microbenchmarks use 16-byte keys over a flat key/value store,
//! while the RUBiS port needs composite keys (table, primary id, qualifier)
//! such as `MaxBidKey(item)` or `NumBidsKey(item)`. [`Key`] is a 16-byte
//! `Copy` struct that covers both uses: a table tag, a 64-bit primary id and
//! a 32-bit qualifier.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical table / namespace a key belongs to.
///
/// The flat microbenchmarks use [`Table::Raw`]; the applications (LIKE and
/// RUBiS) use one tag per logical table or materialized aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u32)]
pub enum Table {
    /// Flat key space used by the INCR microbenchmarks.
    Raw = 0,
    /// LIKE benchmark: per-user rows.
    User = 1,
    /// LIKE benchmark: per-page like counters.
    Page = 2,
    /// LIKE benchmark: individual "like" rows inserted by write transactions.
    Like = 3,
    /// FLAGS benchmark: per-account fraud-flag bitmasks.
    AccountFlags = 4,
    /// FLAGS benchmark: per-account saturating strike counters.
    AccountStrikes = 5,
    /// FLAGS benchmark: individual flag-event rows.
    FlagEvent = 6,
    /// VISITORS benchmark: per-page distinct-visitor sets.
    Audience = 7,
    /// VISITORS benchmark: per-page view counters.
    PageViews = 8,
    /// Cross-shard two-phase-commit markers: `Key::new(TxnMarker, txid, 0)`
    /// is written (atomically, inside the decide-apply transaction) when a
    /// prepared distributed transaction's writes land on a shard. A
    /// re-delivered `Decide` checks the marker to stay exactly-once.
    TxnMarker = 9,
    /// RUBiS: users table.
    RubisUser = 16,
    /// RUBiS: items table.
    RubisItem = 17,
    /// RUBiS: categories table.
    RubisCategory = 18,
    /// RUBiS: regions table.
    RubisRegion = 19,
    /// RUBiS: bids table.
    RubisBid = 20,
    /// RUBiS: buy-now table.
    RubisBuyNow = 21,
    /// RUBiS: comments table.
    RubisComment = 22,
    /// RUBiS materialized aggregate: highest bid per item.
    RubisMaxBid = 23,
    /// RUBiS materialized aggregate: highest bidder per item.
    RubisMaxBidder = 24,
    /// RUBiS materialized aggregate: number of bids per item.
    RubisNumBids = 25,
    /// RUBiS materialized aggregate: rating per user.
    RubisUserRating = 26,
    /// RUBiS top-K index: items per category.
    RubisItemsByCategory = 27,
    /// RUBiS top-K index: items per region.
    RubisItemsByRegion = 28,
    /// RUBiS top-K index: bids per item.
    RubisBidsPerItem = 29,
    /// RUBiS: per-user list of comments received (AboutMe).
    RubisCommentsByUser = 30,
    /// RUBiS: sequence counters used to allocate fresh ids.
    RubisSequence = 31,
}

impl Table {
    /// All tables, useful for iteration in tests.
    pub const ALL: &'static [Table] = &[
        Table::Raw,
        Table::User,
        Table::Page,
        Table::Like,
        Table::AccountFlags,
        Table::AccountStrikes,
        Table::FlagEvent,
        Table::Audience,
        Table::PageViews,
        Table::TxnMarker,
        Table::RubisUser,
        Table::RubisItem,
        Table::RubisCategory,
        Table::RubisRegion,
        Table::RubisBid,
        Table::RubisBuyNow,
        Table::RubisComment,
        Table::RubisMaxBid,
        Table::RubisMaxBidder,
        Table::RubisNumBids,
        Table::RubisUserRating,
        Table::RubisItemsByCategory,
        Table::RubisItemsByRegion,
        Table::RubisBidsPerItem,
        Table::RubisCommentsByUser,
        Table::RubisSequence,
    ];
}

/// A 16-byte record key: `(table, id, sub)`.
///
/// Keys are `Copy`, hashable and totally ordered. The total order is used by
/// the OCC commit protocol, which locks write sets "in a global order to
/// prevent deadlock" (§5.1, Figure 2).
///
/// # Examples
///
/// ```
/// use doppel_common::{Key, Table};
///
/// let k = Key::raw(42);
/// assert_eq!(k.id(), 42);
/// let max_bid = Key::new(Table::RubisMaxBid, 7, 0);
/// assert!(max_bid > k); // ordered first by table, then id, then sub
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key {
    table: Table,
    id: u64,
    sub: u32,
}

impl Key {
    /// Creates a key in an explicit table.
    #[inline]
    pub const fn new(table: Table, id: u64, sub: u32) -> Self {
        Key { table, id, sub }
    }

    /// Creates a key in the flat [`Table::Raw`] key space (microbenchmarks).
    #[inline]
    pub const fn raw(id: u64) -> Self {
        Key { table: Table::Raw, id, sub: 0 }
    }

    /// The table this key belongs to.
    #[inline]
    pub const fn table(&self) -> Table {
        self.table
    }

    /// The 64-bit primary id.
    #[inline]
    pub const fn id(&self) -> u64 {
        self.id
    }

    /// The 32-bit qualifier (0 unless the caller needs a composite key).
    #[inline]
    pub const fn sub(&self) -> u32 {
        self.sub
    }

    /// A stable 64-bit hash of the key, used for store sharding.
    ///
    /// This is a fixed mixing function (not `std`'s `RandomState`) so that
    /// shard placement is deterministic across runs, which keeps the
    /// benchmarks reproducible.
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        // SplitMix64-style mixing of the three fields.
        let mut x = (self.table as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.id)
            .wrapping_add((self.sub as u64) << 32);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// A *lossy* 64-bit packing of the key for the telemetry heat sketch:
    /// table in the top byte, the low 8 bits of `sub` next, the low 48 bits
    /// of `id` below. Collisions are possible for ids past 2^48 or subs past
    /// 255 — acceptable for a hot-key sketch, where the token is decoded
    /// back to `table/id` only for display.
    #[inline]
    pub const fn heat_token(&self) -> u64 {
        ((self.table as u64) << 56)
            | (((self.sub as u64) & 0xFF) << 48)
            | (self.id & 0x0000_FFFF_FFFF_FFFF)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sub == 0 {
            write!(f, "{:?}/{}", self.table, self.id)
        } else {
            write!(f, "{:?}/{}.{}", self.table, self.id, self.sub)
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Key {
    fn from(id: u64) -> Self {
        Key::raw(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn raw_key_roundtrip() {
        let k = Key::raw(123);
        assert_eq!(k.table(), Table::Raw);
        assert_eq!(k.id(), 123);
        assert_eq!(k.sub(), 0);
    }

    #[test]
    fn key_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Key>(), 16);
    }

    #[test]
    fn ordering_is_table_then_id_then_sub() {
        let a = Key::new(Table::Raw, 5, 0);
        let b = Key::new(Table::Raw, 6, 0);
        let c = Key::new(Table::User, 0, 0);
        let d = Key::new(Table::Raw, 5, 1);
        assert!(a < b);
        assert!(b < c);
        assert!(a < d);
        assert!(d < b);
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        let h1 = Key::raw(77).stable_hash();
        let h2 = Key::raw(77).stable_hash();
        assert_eq!(h1, h2);

        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(Key::raw(i).stable_hash() % 1024);
        }
        // All 1024 shard buckets should be hit by 10k sequential keys.
        assert_eq!(seen.len(), 1024);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Key::raw(3)), "Raw/3");
        assert_eq!(format!("{}", Key::new(Table::RubisMaxBid, 9, 2)), "RubisMaxBid/9.2");
    }

    #[test]
    fn from_u64() {
        let k: Key = 9u64.into();
        assert_eq!(k, Key::raw(9));
    }
}
