//! Database operations.
//!
//! Transactions interact with the database via calls to operations (§3). Each
//! operation accesses exactly one record. `Get` and `Put` are the ordinary
//! read/write operations; the remaining operations are the *splittable*
//! commutative updates of §4:
//!
//! * they commute with themselves,
//! * they return nothing,
//! * one splittable operation is selected per split record per split phase,
//! * the per-core slice they produce has size independent of how many
//!   operations were applied.

use crate::value::{IntSet, Value};
use crate::CoreId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when an [`OrderKey`] is constructed from no components.
///
/// Order keys are compared lexicographically, so an empty key would compare
/// below every other key and `primary()` would have nothing to return.
/// Workload code building keys from external data should handle this error
/// instead of panicking inside a worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptyOrderKey;

impl fmt::Display for EmptyOrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "order key must have at least one component")
    }
}

impl std::error::Error for EmptyOrderKey {}

/// A lexicographic order key used by `OPut` and `TopKInsert`.
///
/// The paper allows the order to be "a number (or several numbers in
/// lexicographic order)" (§4). RUBiS uses `[bid_amount, timestamp]` so that
/// the max-bidder record is determined by the highest bid, ties broken by
/// time.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrderKey(Vec<i64>);

impl OrderKey {
    /// Creates an order key from its components (compared lexicographically).
    ///
    /// Returns [`EmptyOrderKey`] when `components` is empty, so that
    /// malformed workload data surfaces as an error the caller can handle
    /// rather than a panic that aborts a worker thread.
    pub fn new(components: Vec<i64>) -> Result<Self, EmptyOrderKey> {
        if components.is_empty() {
            return Err(EmptyOrderKey);
        }
        Ok(OrderKey(components))
    }

    /// Creates a two-component order key.
    pub fn pair(a: i64, b: i64) -> Self {
        OrderKey(vec![a, b])
    }

    /// The first (most significant) component.
    ///
    /// Construction guarantees at least one component; a key deserialized
    /// from corrupt data could violate that, so absence is reported as the
    /// lowest possible order instead of a panic.
    pub fn primary(&self) -> i64 {
        self.0.first().copied().unwrap_or(i64::MIN)
    }

    /// All components.
    pub fn components(&self) -> &[i64] {
        &self.0
    }
}

impl From<i64> for OrderKey {
    fn from(n: i64) -> Self {
        OrderKey(vec![n])
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// The kind of an operation, without its arguments.
///
/// `OpKind` is what Doppel's classifier tracks per record: a record is split
/// *for a particular operation kind*, and during a split phase any operation
/// of a different kind on that record causes the transaction to be stashed
/// (§4 guideline 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read a record.
    Get,
    /// Overwrite a record (blind write); not splittable because it does not
    /// commute.
    Put,
    /// Replace an integer with the max of itself and the argument.
    Max,
    /// Replace an integer with the min of itself and the argument.
    Min,
    /// Add the argument to an integer.
    Add,
    /// Multiply an integer by the argument (the "more operations could easily
    /// be added (for instance, multiply)" extension from §4).
    Mult,
    /// Ordered put on ordered-tuple records.
    OPut,
    /// Insert into a bounded top-K set.
    TopKInsert,
    /// OR the argument's bits into an integer (flag accumulation).
    BitOr,
    /// Add the argument to an integer, saturating at a per-record bound
    /// (rate-limiting counters).
    BoundedAdd,
    /// Union the argument's elements into a distinct-integer set.
    SetUnion,
}

impl OpKind {
    /// True if records may be split for this operation kind.
    ///
    /// Splittable operations commute with themselves and return nothing (§4).
    /// The answer is delegated to the [`crate::split_op`] registry: an
    /// operation kind is splittable exactly when a [`crate::SplitOp`]
    /// implementation is registered for it.
    pub fn splittable(&self) -> bool {
        crate::split_op::split_ops().is_splittable(*self)
    }

    /// True if the operation modifies the database.
    pub fn is_write(&self) -> bool {
        !matches!(self, OpKind::Get)
    }

    /// All operation kinds (for tests and exhaustive tables).
    pub const ALL: &'static [OpKind] = &[
        OpKind::Get,
        OpKind::Put,
        OpKind::Max,
        OpKind::Min,
        OpKind::Add,
        OpKind::Mult,
        OpKind::OPut,
        OpKind::TopKInsert,
        OpKind::BitOr,
        OpKind::BoundedAdd,
        OpKind::SetUnion,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A write operation with its arguments (the read operation `Get` is handled
/// separately by the transaction interface because it returns a value).
///
/// `Op` values are buffered in transaction write sets and applied at commit
/// time, or — for splittable operations on split records during a split
/// phase — applied to the local core's slice.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Blind overwrite with a new value.
    Put(Value),
    /// `v[k] ← max(v[k], n)` on integer records.
    Max(i64),
    /// `v[k] ← min(v[k], n)` on integer records.
    Min(i64),
    /// `v[k] ← v[k] + n` on integer records.
    Add(i64),
    /// `v[k] ← v[k] * n` on integer records.
    Mult(i64),
    /// Ordered put: replace the tuple if `(order, core)` is larger.
    OPut {
        /// Order of the new tuple.
        order: OrderKey,
        /// Id of the writing core (commutativity tie-breaker).
        core: CoreId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Insert `(order, core, payload)` into a top-K set of capacity `k`.
    TopKInsert {
        /// Order of the inserted tuple.
        order: OrderKey,
        /// Id of the writing core (dedup tie-breaker).
        core: CoreId,
        /// Payload bytes.
        payload: Bytes,
        /// Capacity of the top-K set (used when the record is created lazily).
        k: usize,
    },
    /// `v[k] ← v[k] | n` on integer records (bitwise OR).
    BitOr(i64),
    /// `v[k] ← min(bound, v[k] + max(n, 0))` on integer records: a counter
    /// that saturates at `bound`.
    ///
    /// Negative deltas are treated as 0 — only non-negative increments keep
    /// the saturating semantics commutative. Like `TopKInsert`'s capacity,
    /// the bound is a static property of the record: all `BoundedAdd`
    /// operations on one key must agree on it.
    BoundedAdd {
        /// The (non-negative) increment.
        n: i64,
        /// The saturation bound.
        bound: i64,
    },
    /// `v[k] ← v[k] ∪ elems` on distinct-integer-set records.
    SetUnion(IntSet),
}

impl Op {
    /// The kind of this operation.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Put(_) => OpKind::Put,
            Op::Max(_) => OpKind::Max,
            Op::Min(_) => OpKind::Min,
            Op::Add(_) => OpKind::Add,
            Op::Mult(_) => OpKind::Mult,
            Op::OPut { .. } => OpKind::OPut,
            Op::TopKInsert { .. } => OpKind::TopKInsert,
            Op::BitOr(_) => OpKind::BitOr,
            Op::BoundedAdd { .. } => OpKind::BoundedAdd,
            Op::SetUnion(_) => OpKind::SetUnion,
        }
    }

    /// Applies this operation to a value in place, returning the new value.
    ///
    /// `current` is `None` when the record does not exist yet; each operation
    /// defines its behaviour on absent records:
    ///
    /// * `Put` creates the record;
    /// * `Max`/`Min`/`Add`/`Mult` treat the record as the integer identity of
    ///   the operation (−∞ / +∞ / 0 / 1 respectively), i.e. the argument (or
    ///   for `Mult`, the value 1 × n);
    /// * `OPut` treats absent records as order −∞ (§4);
    /// * `TopKInsert` creates an empty top-K set first.
    ///
    /// This is the *global-store* semantics used by the joined phase and by
    /// the OCC / 2PL baselines; the split phase applies operations to
    /// per-core slices instead and merges them later, with the same overall
    /// effect (§4).
    ///
    /// For every operation except `Put`, the semantics live in the
    /// operation's [`crate::SplitOp`] implementation, so the global-store
    /// path, the per-core slice path and the reconciliation merge are
    /// guaranteed to agree — a new splittable operation defines all three in
    /// one place.
    pub fn apply_to(&self, current: Option<&Value>) -> Result<Value, crate::TxError> {
        match self {
            Op::Put(v) => Ok(v.clone()),
            op => crate::split_op::split_ops()
                .get(op.kind())
                .expect("every non-Put operation has a registered SplitOp implementation")
                .apply(op, current),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Put(v) => write!(f, "Put({v})"),
            Op::Max(n) => write!(f, "Max({n})"),
            Op::Min(n) => write!(f, "Min({n})"),
            Op::Add(n) => write!(f, "Add({n})"),
            Op::Mult(n) => write!(f, "Mult({n})"),
            Op::OPut { order, core, .. } => write!(f, "OPut(order={order}, core={core})"),
            Op::TopKInsert { order, core, k, .. } => {
                write!(f, "TopKInsert(order={order}, core={core}, k={k})")
            }
            Op::BitOr(n) => write!(f, "BitOr({n:#x})"),
            Op::BoundedAdd { n, bound } => write!(f, "BoundedAdd({n}, bound={bound})"),
            Op::SetUnion(s) => write!(f, "SetUnion[{}]", s.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxError;

    #[test]
    fn order_key_lexicographic() {
        assert!(OrderKey::pair(1, 9) < OrderKey::pair(2, 0));
        assert!(OrderKey::pair(2, 1) < OrderKey::pair(2, 3));
        assert_eq!(OrderKey::from(5).primary(), 5);
        assert_eq!(OrderKey::pair(5, 6).components(), &[5, 6]);
        assert_eq!(OrderKey::new(vec![4, 2]).unwrap(), OrderKey::pair(4, 2));
    }

    #[test]
    fn empty_order_key_is_an_error_not_a_panic() {
        assert_eq!(OrderKey::new(vec![]), Err(EmptyOrderKey));
        assert!(format!("{EmptyOrderKey}").contains("at least one component"));
    }

    #[test]
    fn splittability_matches_paper() {
        assert!(!OpKind::Get.splittable());
        assert!(!OpKind::Put.splittable());
        for k in [
            OpKind::Max,
            OpKind::Min,
            OpKind::Add,
            OpKind::Mult,
            OpKind::OPut,
            OpKind::TopKInsert,
            OpKind::BitOr,
            OpKind::BoundedAdd,
            OpKind::SetUnion,
        ] {
            assert!(k.splittable(), "{k} must be splittable");
        }
    }

    #[test]
    fn writes_vs_reads() {
        assert!(!OpKind::Get.is_write());
        assert!(OpKind::Put.is_write());
        assert!(OpKind::Add.is_write());
    }

    #[test]
    fn apply_max_min_add_mult() {
        assert_eq!(Op::Max(5).apply_to(Some(&Value::Int(3))).unwrap(), Value::Int(5));
        assert_eq!(Op::Max(5).apply_to(Some(&Value::Int(9))).unwrap(), Value::Int(9));
        assert_eq!(Op::Max(5).apply_to(None).unwrap(), Value::Int(5));
        assert_eq!(Op::Min(5).apply_to(Some(&Value::Int(9))).unwrap(), Value::Int(5));
        assert_eq!(Op::Min(5).apply_to(None).unwrap(), Value::Int(5));
        assert_eq!(Op::Add(5).apply_to(Some(&Value::Int(2))).unwrap(), Value::Int(7));
        assert_eq!(Op::Add(5).apply_to(None).unwrap(), Value::Int(5));
        assert_eq!(Op::Mult(5).apply_to(Some(&Value::Int(3))).unwrap(), Value::Int(15));
        assert_eq!(Op::Mult(5).apply_to(None).unwrap(), Value::Int(5));
    }

    #[test]
    fn apply_bitor_accumulates_flags() {
        assert_eq!(Op::BitOr(0b0101).apply_to(None).unwrap(), Value::Int(0b0101));
        assert_eq!(
            Op::BitOr(0b0011).apply_to(Some(&Value::Int(0b0101))).unwrap(),
            Value::Int(0b0111)
        );
        let err = Op::BitOr(1).apply_to(Some(&Value::from("str"))).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
    }

    #[test]
    fn apply_bounded_add_saturates() {
        let op = |n| Op::BoundedAdd { n, bound: 10 };
        assert_eq!(op(4).apply_to(None).unwrap(), Value::Int(4));
        assert_eq!(op(4).apply_to(Some(&Value::Int(4))).unwrap(), Value::Int(8));
        assert_eq!(op(4).apply_to(Some(&Value::Int(8))).unwrap(), Value::Int(10));
        assert_eq!(op(4).apply_to(Some(&Value::Int(10))).unwrap(), Value::Int(10));
        // Negative deltas are clamped to 0 to preserve commutativity.
        assert_eq!(op(-7).apply_to(Some(&Value::Int(3))).unwrap(), Value::Int(3));
    }

    #[test]
    fn apply_set_union_deduplicates() {
        let v = Op::SetUnion(IntSet::singleton(3)).apply_to(None).unwrap();
        let v = Op::SetUnion([3, 8].into_iter().collect()).apply_to(Some(&v)).unwrap();
        assert_eq!(v.as_set().unwrap().iter().collect::<Vec<_>>(), vec![3, 8]);
        let err = Op::SetUnion(IntSet::new()).apply_to(Some(&Value::Int(1))).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
    }

    #[test]
    fn apply_put_overwrites_any_type() {
        let v = Op::Put(Value::from("new")).apply_to(Some(&Value::Int(1))).unwrap();
        assert_eq!(v, Value::from("new"));
        let v = Op::Put(Value::Int(2)).apply_to(None).unwrap();
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn apply_oput_semantics() {
        let op_hi = Op::OPut { order: OrderKey::from(10), core: 1, payload: Bytes::from_static(b"hi") };
        let op_lo = Op::OPut { order: OrderKey::from(3), core: 9, payload: Bytes::from_static(b"lo") };
        let v1 = op_hi.apply_to(None).unwrap();
        let v2 = op_lo.apply_to(Some(&v1)).unwrap();
        // Lower order does not replace.
        assert_eq!(v2.as_tuple().unwrap().payload, Bytes::from_static(b"hi"));
        // Equal order, higher core replaces.
        let op_tie = Op::OPut { order: OrderKey::from(10), core: 2, payload: Bytes::from_static(b"tie") };
        let v3 = op_tie.apply_to(Some(&v1)).unwrap();
        assert_eq!(v3.as_tuple().unwrap().core, 2);
    }

    #[test]
    fn apply_topk_creates_and_bounds() {
        let mk = |o: i64| Op::TopKInsert {
            order: OrderKey::from(o),
            core: 0,
            payload: Bytes::from_static(b"x"),
            k: 2,
        };
        let v = mk(1).apply_to(None).unwrap();
        let v = mk(5).apply_to(Some(&v)).unwrap();
        let v = mk(3).apply_to(Some(&v)).unwrap();
        let set = v.as_topk().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.max().unwrap().order, OrderKey::from(5));
    }

    #[test]
    fn type_mismatch_errors() {
        let err = Op::Add(1).apply_to(Some(&Value::from("str"))).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
        let err = Op::OPut { order: OrderKey::from(1), core: 0, payload: Bytes::new() }
            .apply_to(Some(&Value::Int(3)))
            .unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
        let err = Op::TopKInsert { order: OrderKey::from(1), core: 0, payload: Bytes::new(), k: 3 }
            .apply_to(Some(&Value::Int(3)))
            .unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
    }

    #[test]
    fn op_kind_roundtrip_and_display() {
        assert_eq!(Op::Add(1).kind(), OpKind::Add);
        assert_eq!(Op::Put(Value::Int(0)).kind(), OpKind::Put);
        assert_eq!(format!("{}", Op::Add(3)), "Add(3)");
        assert_eq!(format!("{}", OpKind::Max), "Max");
    }

    /// Property: the integer splittable operations commute with themselves —
    /// applying a batch in any order yields the same final value (§4
    /// guideline 1). The full battery lives in `tests/split_op_laws.rs`.
    #[test]
    fn commutativity_smoke() {
        let args = [3i64, -7, 42, 0, 13];
        let makers: [fn(i64) -> Op; 6] = [
            Op::Max,
            Op::Min,
            Op::Add,
            Op::Mult,
            Op::BitOr,
            |n| Op::BoundedAdd { n, bound: 40 },
        ];
        for make in makers {
            let forward = args.iter().fold(Value::Int(1), |acc, &n| {
                make(n).apply_to(Some(&acc)).unwrap()
            });
            let backward = args.iter().rev().fold(Value::Int(1), |acc, &n| {
                make(n).apply_to(Some(&acc)).unwrap()
            });
            assert_eq!(forward, backward);
        }
    }
}
