//! Tuning hooks: the interface between the adaptive contention controller
//! (the `doppel_tuner` crate) and the engine it steers.
//!
//! The paper hand-tunes its knobs — a 20 ms phase length, fixed split
//! thresholds, manually labelled hot records for some experiments (§5.5,
//! §8.1). The tuner closes that loop: every epoch it reads the live signals
//! (the telemetry heat sketch, engine counters, the stash-replay latency
//! histogram) and applies decisions through a [`TuneSink`]. The trait lives
//! here, next to [`crate::config::DoppelConfig`], so the controller crate
//! depends only on the common vocabulary — not on the engine — and tests can
//! drive the control logic against a mock sink.

use crate::key::Key;
use crate::ops::OpKind;
use crate::stats::StatsSnapshot;
use std::time::Duration;

/// The classifier thresholds the tuner may adjust at runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TuneThresholds {
    /// Minimum sampled conflicts per joined phase before a record is split
    /// (mirrors [`crate::config::DoppelConfig::split_min_conflicts`]).
    pub split_min_conflicts: u64,
    /// Stash-to-write ratio above which a split record is moved back
    /// (mirrors [`crate::config::DoppelConfig::unsplit_stash_ratio`]).
    pub unsplit_stash_ratio: f64,
}

/// Everything the engine reports when the tuner samples it.
#[derive(Clone, Debug)]
pub struct TuneObservation {
    /// The engine's cumulative counters.
    pub stats: StatsSnapshot,
    /// The current split set with each key's selected operation.
    pub split_keys: Vec<(Key, OpKind)>,
    /// Cumulative split-phase writes per currently-split key — the paper's
    /// write-sampling signal ("split records in the split phase will not
    /// cause conflicts", §5.5), which is why heat alone cannot decide
    /// demotion: a split key's conflict heat goes cold by design.
    pub split_activity: Vec<(Key, u64)>,
    /// The phase length currently in effect (live, not the configured value).
    pub phase_len: Duration,
    /// The classifier thresholds currently in effect.
    pub thresholds: TuneThresholds,
}

/// The engine-side hook the tuner applies decisions through.
///
/// Implemented by `DoppelDb`; every method must be cheap and safe to call
/// from the tuner's own thread while workers run.
pub trait TuneSink: Send + Sync {
    /// Samples the engine's current state.
    fn observe(&self) -> TuneObservation;
    /// Promotes the record behind heat-sketch `token` to split. Returns the
    /// resolved key and operation, or `None` when the token cannot be
    /// resolved (evicted from the conflict sample), the key is already
    /// split, or the split-record cap is reached.
    fn promote(&self, token: u64) -> Option<(Key, OpKind)>;
    /// Moves `key` back to reconciled state. Returns `false` when the key
    /// was not split.
    fn demote(&self, key: Key) -> bool;
    /// Sets the phase length for subsequent phases (the coordinator reads it
    /// at every cycle). Zero-length requests are ignored.
    fn set_phase_len(&self, len: Duration);
    /// Installs new classifier thresholds.
    fn set_thresholds(&self, thresholds: TuneThresholds);
}

/// One decision the tuner took, kept in a bounded history for
/// `GetStats` / `doppel-stat` and mirrored onto the trace timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneDecision {
    /// The tuner epoch (tick number) the decision was taken in.
    pub epoch: u64,
    /// Short machine-readable action, e.g. `promote Raw/7`,
    /// `phase_len 16ms`.
    pub action: String,
    /// Human-readable justification, e.g. `61 conflicts in epoch`.
    pub reason: String,
}

impl std::fmt::Display for TuneDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} ({})", self.epoch, self.action, self.reason)
    }
}
