//! A counting global allocator, so allocation traffic is a first-class
//! metric.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every `alloc` /
//! `alloc_zeroed` / `realloc` call (and its requested bytes) into relaxed
//! process-wide totals plus per-thread counters. The counters are monitoring
//! data only: they impose two relaxed atomic adds and two thread-local adds
//! per allocation and nothing on `dealloc`.
//!
//! A Rust binary admits exactly one `#[global_allocator]`. In this workspace
//! it is registered by `doppel_bench` (which the benchmark binaries and the
//! root integration tests all link), so benchmarks and the allocation
//! discipline tests observe real counts while library unit tests — which
//! don't link `doppel_bench` — read zeros. Code consuming the counters must
//! therefore treat `0` as "allocator not installed", never as proof that no
//! allocation happened.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialised Cells: no lazy init, no destructor, so touching them
    // from inside the allocator cannot recurse or abort during thread exit.
    static THREAD_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn record(bytes: usize) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let _ = THREAD_ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

/// System allocator wrapper that counts allocations. Register with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Process-wide `(allocation count, allocated bytes)` since start.
pub fn alloc_totals() -> (u64, u64) {
    (ALLOC_COUNT.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// This thread's `(allocation count, allocated bytes)` since it started.
pub fn thread_alloc_totals() -> (u64, u64) {
    let count = THREAD_ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = THREAD_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}

/// A point-in-time mark of the process-wide totals, for measuring an
/// interval: `let cp = AllocCheckpoint::now(); work(); cp.delta()`.
#[derive(Clone, Copy, Debug)]
pub struct AllocCheckpoint {
    count: u64,
    bytes: u64,
}

impl AllocCheckpoint {
    /// Marks the current process-wide totals.
    pub fn now() -> AllocCheckpoint {
        let (count, bytes) = alloc_totals();
        AllocCheckpoint { count, bytes }
    }

    /// `(allocations, bytes)` since this checkpoint was taken.
    pub fn delta(&self) -> (u64, u64) {
        let (count, bytes) = alloc_totals();
        (count.saturating_sub(self.count), bytes.saturating_sub(self.bytes))
    }
}

/// Like [`AllocCheckpoint`] but over this thread's counters only, immune to
/// allocation noise from other threads.
#[derive(Clone, Copy, Debug)]
pub struct ThreadAllocCheckpoint {
    count: u64,
    bytes: u64,
}

impl ThreadAllocCheckpoint {
    /// Marks the current thread-local totals.
    pub fn now() -> ThreadAllocCheckpoint {
        let (count, bytes) = thread_alloc_totals();
        ThreadAllocCheckpoint { count, bytes }
    }

    /// `(allocations, bytes)` on this thread since the checkpoint.
    pub fn delta(&self) -> (u64, u64) {
        let (count, bytes) = thread_alloc_totals();
        (count.saturating_sub(self.count), bytes.saturating_sub(self.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this crate's unit tests, so only the
    // bookkeeping itself can be exercised here; end-to-end counting is pinned
    // by the root `alloc_discipline` integration tests.
    #[test]
    fn record_accumulates_globally_and_per_thread() {
        let before_global = alloc_totals();
        let before_thread = thread_alloc_totals();
        record(128);
        record(64);
        let global = alloc_totals();
        let thread = thread_alloc_totals();
        assert!(global.0 >= before_global.0 + 2);
        assert!(global.1 >= before_global.1 + 192);
        assert_eq!(thread.0, before_thread.0 + 2);
        assert_eq!(thread.1, before_thread.1 + 192);
    }

    #[test]
    fn checkpoints_measure_intervals() {
        let cp = AllocCheckpoint::now();
        let tcp = ThreadAllocCheckpoint::now();
        record(32);
        let (count, bytes) = cp.delta();
        assert!(count >= 1);
        assert!(bytes >= 32);
        let (tcount, tbytes) = tcp.delta();
        assert_eq!(tcount, 1);
        assert_eq!(tbytes, 32);
    }
}
