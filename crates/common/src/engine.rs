//! Engine-agnostic execution interface.
//!
//! The paper compares Doppel against OCC, 2PL and an "Atomic" baseline, all
//! "implemented in the same framework" (§8.1). This module is that framework:
//!
//! * a [`Procedure`] is a one-shot transaction (§3) — a closed description of
//!   the work, submitted to a worker and rerunnable (Doppel may stash it and
//!   re-execute it in the next joined phase);
//! * a [`Tx`] is the operation interface a procedure uses while it runs;
//! * a [`TxHandle`] is a per-worker execution handle (one per core);
//! * an [`Engine`] creates handles and exposes statistics.

use crate::error::TxError;
use crate::key::Key;
use crate::ops::{Op, OpKind, OrderKey};
use crate::stats::StatsSnapshot;
use crate::tid::Tid;
use crate::value::Value;
use crate::CoreId;
use bytes::Bytes;
use std::sync::Arc;

/// Operation interface available to a running transaction.
///
/// Write operations are buffered in the transaction's write set and applied
/// at commit, so their effects are not visible through [`Tx::get`] until the
/// transaction commits — with the exception of `Put`, whose buffered value is
/// returned by a subsequent `get` of the same key (read-your-writes), because
/// several RUBiS transactions rely on reading a row they just created.
pub trait Tx {
    /// The core / worker this transaction runs on.
    fn core(&self) -> CoreId;

    /// Reads a record, returning `None` when it does not exist.
    fn get(&mut self, k: Key) -> Result<Option<Value>, TxError>;

    /// Buffers a write operation against a record.
    fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError>;

    /// Overwrites a record with a new value.
    fn put(&mut self, k: Key, v: Value) -> Result<(), TxError> {
        self.write_op(k, Op::Put(v))
    }

    /// `v[k] ← max(v[k], n)` (splittable).
    fn max(&mut self, k: Key, n: i64) -> Result<(), TxError> {
        self.write_op(k, Op::Max(n))
    }

    /// `v[k] ← min(v[k], n)` (splittable).
    fn min(&mut self, k: Key, n: i64) -> Result<(), TxError> {
        self.write_op(k, Op::Min(n))
    }

    /// `v[k] ← v[k] + n` (splittable).
    fn add(&mut self, k: Key, n: i64) -> Result<(), TxError> {
        self.write_op(k, Op::Add(n))
    }

    /// `v[k] ← v[k] * n` (splittable).
    fn mult(&mut self, k: Key, n: i64) -> Result<(), TxError> {
        self.write_op(k, Op::Mult(n))
    }

    /// Ordered put: replaces the tuple at `k` when `(order, core)` is larger
    /// than the stored tuple's (splittable). The core id is filled in
    /// automatically from [`Tx::core`].
    fn oput(&mut self, k: Key, order: OrderKey, payload: Bytes) -> Result<(), TxError> {
        let core = self.core();
        self.write_op(k, Op::OPut { order, core, payload })
    }

    /// Inserts `(order, core, payload)` into the top-K set at `k`
    /// (splittable). `k_cap` bounds the set if the record is created by this
    /// operation.
    fn topk_insert(
        &mut self,
        k: Key,
        order: OrderKey,
        payload: Bytes,
        k_cap: usize,
    ) -> Result<(), TxError> {
        let core = self.core();
        self.write_op(k, Op::TopKInsert { order, core, payload, k: k_cap })
    }

    /// `v[k] ← v[k] | n` (splittable): accumulates flag bits.
    fn bit_or(&mut self, k: Key, n: i64) -> Result<(), TxError> {
        self.write_op(k, Op::BitOr(n))
    }

    /// `v[k] ← min(bound, v[k] + max(n, 0))` (splittable): a counter that
    /// saturates at `bound` (rate limiting). All `bounded_add` calls on one
    /// key must use the same bound.
    fn bounded_add(&mut self, k: Key, n: i64, bound: i64) -> Result<(), TxError> {
        self.write_op(k, Op::BoundedAdd { n, bound })
    }

    /// `v[k] ← v[k] ∪ {elem}` (splittable): records a distinct element
    /// (e.g. a unique visitor id).
    fn set_insert(&mut self, k: Key, elem: i64) -> Result<(), TxError> {
        self.write_op(k, Op::SetUnion(crate::IntSet::singleton(elem)))
    }

    /// Reads an integer record, treating a missing record as 0.
    fn get_int(&mut self, k: Key) -> Result<i64, TxError> {
        match self.get(k)? {
            None => Ok(0),
            Some(Value::Int(n)) => Ok(n),
            Some(v) => Err(TxError::type_mismatch(OpKind::Get, v.kind())),
        }
    }
}

/// A one-shot transaction procedure (§3: "clients submit transactions in the
/// form of procedures").
///
/// Procedures must be deterministic functions of the database state they
/// read: Doppel may abort and re-execute them (OCC retry) or stash and replay
/// them in a later joined phase, and the serializability argument of §5.6
/// relies on re-execution producing the same decisions when reads return the
/// same values.
pub trait Procedure: Send + Sync {
    /// Executes the transaction body against `tx`.
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError>;

    /// Short, static name used in statistics and latency breakdowns.
    fn name(&self) -> &'static str {
        "procedure"
    }

    /// True when the procedure issues no writes; used by the harness to
    /// report read and write latencies separately (Table 3 of the paper).
    fn is_read_only(&self) -> bool {
        false
    }

    /// The per-procedure counters of this procedure's registry entry, when it
    /// is a [`crate::proc::RegisteredCall`]. The transaction service uses the
    /// hook to account commits, aborts and stash-deferrals per registered
    /// procedure; closure procedures return `None` and are not tracked.
    fn proc_stats(&self) -> Option<&crate::proc::ProcStats> {
        None
    }
}

/// A [`Procedure`] built from a closure, convenient in examples and tests.
///
/// # Examples
///
/// ```
/// use doppel_common::{Key, ProcedureFn, Procedure};
///
/// let incr = ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1));
/// assert_eq!(incr.name(), "incr");
/// ```
pub struct ProcedureFn<F> {
    name: &'static str,
    read_only: bool,
    f: F,
}

impl<F> ProcedureFn<F>
where
    F: Fn(&mut dyn Tx) -> Result<(), TxError> + Send + Sync,
{
    /// Wraps a closure as a (read-write) procedure.
    pub fn new(name: &'static str, f: F) -> Self {
        ProcedureFn { name, read_only: false, f }
    }

    /// Wraps a closure as a read-only procedure.
    pub fn read_only(name: &'static str, f: F) -> Self {
        ProcedureFn { name, read_only: true, f }
    }
}

impl<F> Procedure for ProcedureFn<F>
where
    F: Fn(&mut dyn Tx) -> Result<(), TxError> + Send + Sync,
{
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        (self.f)(tx)
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn is_read_only(&self) -> bool {
        self.read_only
    }
}

/// Identifier handed back when a Doppel worker stashes a transaction; the
/// matching [`Completion`] carries the same ticket once the transaction
/// finally commits or aborts in a later joined phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// Result of submitting a procedure to a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The transaction committed with the given TID.
    Committed(Tid),
    /// The transaction aborted; [`TxError::is_retryable`] tells the caller
    /// whether resubmitting later makes sense.
    Aborted(TxError),
    /// The transaction touched split data incompatibly during a split phase;
    /// the worker stashed it and will re-execute it in the next joined phase.
    /// A [`Completion`] with the same ticket will be reported by
    /// [`TxHandle::take_completions`].
    Stashed(Ticket),
}

impl Outcome {
    /// True if the transaction committed immediately.
    pub fn is_committed(&self) -> bool {
        matches!(self, Outcome::Committed(_))
    }

    /// True if the transaction was stashed.
    pub fn is_stashed(&self) -> bool {
        matches!(self, Outcome::Stashed(_))
    }

    /// The commit TID, if committed.
    pub fn tid(&self) -> Option<Tid> {
        match self {
            Outcome::Committed(t) => Some(*t),
            _ => None,
        }
    }
}

/// Deferred result of a stashed transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Ticket returned by the original [`Outcome::Stashed`].
    pub ticket: Ticket,
    /// Final result: commit TID or the abort that ended the transaction.
    pub result: Result<Tid, TxError>,
}

/// Per-worker execution handle. Exactly one handle exists per core, and a
/// handle must only be used from one thread at a time.
pub trait TxHandle: Send {
    /// The core this handle is bound to.
    fn core(&self) -> CoreId;

    /// Executes a procedure as one transaction.
    ///
    /// The call participates in phase changes: a Doppel worker first passes a
    /// safepoint where it may acknowledge a pending phase transition, merge
    /// its per-core slices (reconciliation), or drain its stash.
    fn execute(&mut self, proc: Arc<dyn Procedure>) -> Outcome;

    /// Passes a safepoint without executing anything. Idle workers should
    /// call this periodically so that they do not hold up phase transitions.
    fn safepoint(&mut self);

    /// Returns completions of previously stashed transactions that have since
    /// been re-executed.
    fn take_completions(&mut self) -> Vec<Completion>;

    /// Number of transactions currently stashed on this worker.
    fn stash_len(&self) -> usize {
        0
    }
}

/// Accounting returned by every [`CommitSink`] call: what the call appended
/// and whether it triggered a group-commit flush.
///
/// Engines fold receipts into their [`crate::EngineStats`] via
/// [`crate::EngineStats::absorb_log`], so the WAL itself stays
/// engine-agnostic while each engine's statistics reflect its own logging
/// activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogReceipt {
    /// Log records appended by this call.
    pub records: u64,
    /// Bytes appended by this call.
    pub bytes: u64,
    /// `fsync` calls performed by this call (0 or 1: appends only sync when
    /// they close a group-commit batch).
    pub fsyncs: u64,
    /// Group-commit batches flushed by this call.
    pub batches: u64,
}

impl LogReceipt {
    /// Component-wise sum of two receipts.
    pub fn merge(self, other: LogReceipt) -> LogReceipt {
        LogReceipt {
            records: self.records + other.records,
            bytes: self.bytes + other.bytes,
            fsyncs: self.fsyncs + other.fsyncs,
            batches: self.batches + other.batches,
        }
    }
}

/// Destination for durability records — the commit-hook half of write-ahead
/// logging.
///
/// The log crate provides the real implementation (an append-only,
/// CRC-checksummed, group-committed file); this trait lives in `common` so
/// every engine can log without depending on the log's mechanics.
///
/// Engines call it at two points, reflecting the paper's durability
/// observation that phase reconciliation makes logging *cheaper*:
///
/// * [`CommitSink::log_commit`] — a conventionally committed transaction's
///   write set (OCC / 2PL / Atomic commits, and Doppel's joined-phase and
///   non-split split-phase writes). One record per transaction, O(write set)
///   bytes.
/// * [`CommitSink::log_merged_delta`] — Doppel's split-phase fast path:
///   slice operations are **not** logged individually; instead each worker
///   emits one merged-delta record per split key while acknowledging the
///   split→joined transition, i.e. O(split keys) records per phase instead of
///   O(operations).
///
/// Calls must be made while the caller still holds whatever exclusivity
/// protects the records being logged (OCC record locks, 2PL logical locks,
/// the reconciliation record lock), so that log order is a valid
/// serialization order for replay.
pub trait CommitSink: Send + Sync {
    /// Appends one commit record for a transaction's write set.
    ///
    /// The write set is streamed as borrowed `(key, &op)` pairs so callers
    /// log straight out of their in-place write sets — the commit hot path
    /// must not have to materialize an owned `Vec<(Key, Op)>` (cloning every
    /// op) just to cross this trait boundary. `ExactSizeIterator` lets
    /// implementations emit the entry count up front. Slice-shaped callers
    /// (tests, recovery replay) can use [`CommitSinkExt::log_commit_slice`].
    fn log_commit(
        &self,
        tid: Tid,
        writes: &mut dyn ExactSizeIterator<Item = (Key, &Op)>,
    ) -> LogReceipt;

    /// Appends one merged-delta record for a split key's reconciliation
    /// (`ops` are the merge operations produced by the per-core slice).
    fn log_merged_delta(&self, tid: Tid, key: Key, ops: &[Op]) -> LogReceipt;

    /// Blocks until everything appended so far is durable (flush + fsync).
    fn sync(&self) -> LogReceipt;
}

/// Slice-shaped convenience over [`CommitSink::log_commit`] for callers that
/// already hold an owned `&[(Key, Op)]` (tests, recovery replay, captured
/// write logs). Blanket-implemented for every sink, including trait objects.
pub trait CommitSinkExt {
    /// Appends one commit record from a `(key, op)` slice.
    fn log_commit_slice(&self, tid: Tid, writes: &[(Key, Op)]) -> LogReceipt;
}

impl<T: CommitSink + ?Sized> CommitSinkExt for T {
    fn log_commit_slice(&self, tid: Tid, writes: &[(Key, Op)]) -> LogReceipt {
        self.log_commit(tid, &mut writes.iter().map(|(k, op)| (*k, op)))
    }
}

/// A transactional engine: creates per-core handles and exposes global state.
pub trait Engine: Send + Sync {
    /// Engine name used in benchmark output ("Doppel", "OCC", "2PL", …).
    fn name(&self) -> &'static str;

    /// Number of workers the engine was configured with.
    fn workers(&self) -> usize;

    /// Creates the execution handle for `core`. Must be called at most once
    /// per core id in `0..workers()`.
    fn handle(&self, core: CoreId) -> Box<dyn TxHandle>;

    /// Point-in-time statistics snapshot.
    fn stats(&self) -> StatsSnapshot;

    /// Reads a record directly from the global store, bypassing concurrency
    /// control. Only meaningful when the engine is quiescent (no concurrent
    /// transactions and, for Doppel, no split phase in progress); intended
    /// for test assertions and benchmark validation.
    fn global_get(&self, k: Key) -> Option<Value>;

    /// Loads a record directly into the global store, bypassing concurrency
    /// control. Intended for benchmark pre-population ("we pre-allocate all
    /// the records", §8.1).
    fn load(&self, k: Key, v: Value);

    /// Signals the engine to stop background activity (e.g. Doppel's
    /// coordinator thread). Engines without background threads ignore this.
    fn shutdown(&self) {}

    /// Worker-ownership hook: a service that owns this engine's workers is
    /// starting a graceful drain. No new procedures will be submitted; the
    /// workers will keep passing safepoints until their stashes are empty.
    ///
    /// Engines whose stash replay depends on a phase transition (Doppel)
    /// nudge their phase machinery here so the drain does not have to wait a
    /// full phase length; engines without deferred work ignore the call.
    /// Unlike [`Engine::shutdown`] the engine must keep executing
    /// transactions normally afterwards — stash replays still run through
    /// the ordinary commit path.
    fn begin_drain(&self) {}

    /// Attaches a durability sink: from now on the engine logs every
    /// committed transaction's write set (and, for Doppel, merged split-key
    /// deltas at reconciliation) through `sink`.
    ///
    /// Attach **before** creating handles: engines are allowed to capture the
    /// sink per handle at creation time. The default implementation ignores
    /// the sink (an engine without durability support stays volatile).
    fn attach_commit_sink(&self, sink: Arc<dyn CommitSink>) {
        let _ = sink;
    }

    /// Applies `f` to every `(key, value)` pair in the store. Only meaningful
    /// when the engine is quiescent; used by checkpointing and recovery
    /// assertions. The default implementation visits nothing (such an engine
    /// produces empty checkpoints).
    fn for_each_record(&self, f: &mut dyn FnMut(Key, &Value)) {
        let _ = f;
    }

    /// Notes that `records` log records were replayed into this engine during
    /// crash recovery (surfaces as `recovered_txns` in the statistics). The
    /// default implementation ignores the notification.
    fn note_recovered(&self, records: u64) {
        let _ = records;
    }

    /// The engine's telemetry registry (phase-duration and stash-latency
    /// histograms, the conflict heat sketch), when the engine is
    /// instrumented. Baseline engines return `None`: their behavior is fully
    /// described by [`Engine::stats`] counters.
    fn telemetry(&self) -> Option<Arc<doppel_telemetry::Registry>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NopTx(CoreId, Vec<(Key, Op)>);

    impl Tx for NopTx {
        fn core(&self) -> CoreId {
            self.0
        }
        fn get(&mut self, _k: Key) -> Result<Option<Value>, TxError> {
            Ok(Some(Value::Int(7)))
        }
        fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
            self.1.push((k, op));
            Ok(())
        }
    }

    #[test]
    fn tx_default_methods_build_ops() {
        let mut tx = NopTx(3, vec![]);
        tx.add(Key::raw(1), 5).unwrap();
        tx.max(Key::raw(2), 9).unwrap();
        tx.min(Key::raw(3), 9).unwrap();
        tx.mult(Key::raw(4), 2).unwrap();
        tx.put(Key::raw(5), Value::Int(1)).unwrap();
        tx.oput(Key::raw(6), OrderKey::from(10), "x".into()).unwrap();
        tx.topk_insert(Key::raw(7), OrderKey::from(10), "y".into(), 8).unwrap();
        tx.bit_or(Key::raw(8), 0b100).unwrap();
        tx.bounded_add(Key::raw(9), 1, 50).unwrap();
        tx.set_insert(Key::raw(10), 77).unwrap();
        assert_eq!(tx.1.len(), 10);
        assert_eq!(tx.1[0].1.kind(), OpKind::Add);
        assert_eq!(tx.1[7].1, Op::BitOr(0b100));
        assert_eq!(tx.1[8].1, Op::BoundedAdd { n: 1, bound: 50 });
        match &tx.1[9].1 {
            Op::SetUnion(s) => assert!(s.contains(77)),
            other => panic!("unexpected op {other:?}"),
        }
        // The core id is threaded into OPut / TopKInsert automatically.
        match &tx.1[5].1 {
            Op::OPut { core, .. } => assert_eq!(*core, 3),
            other => panic!("unexpected op {other:?}"),
        }
        match &tx.1[6].1 {
            Op::TopKInsert { core, k, .. } => {
                assert_eq!(*core, 3);
                assert_eq!(*k, 8);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn get_int_defaults_missing_to_zero() {
        struct Missing;
        impl Tx for Missing {
            fn core(&self) -> CoreId {
                0
            }
            fn get(&mut self, _k: Key) -> Result<Option<Value>, TxError> {
                Ok(None)
            }
            fn write_op(&mut self, _k: Key, _op: Op) -> Result<(), TxError> {
                Ok(())
            }
        }
        assert_eq!(Missing.get_int(Key::raw(1)).unwrap(), 0);
        let mut t = NopTx(0, vec![]);
        assert_eq!(t.get_int(Key::raw(1)).unwrap(), 7);
    }

    #[test]
    fn procedure_fn_metadata() {
        let p = ProcedureFn::new("write", |tx| tx.add(Key::raw(1), 1));
        assert_eq!(p.name(), "write");
        assert!(!p.is_read_only());
        let r = ProcedureFn::read_only("read", |tx| tx.get(Key::raw(1)).map(|_| ()));
        assert!(r.is_read_only());
        let mut tx = NopTx(0, vec![]);
        p.run(&mut tx).unwrap();
        r.run(&mut tx).unwrap();
        assert_eq!(tx.1.len(), 1);
    }

    #[test]
    fn outcome_helpers() {
        let c = Outcome::Committed(Tid::from_parts(1, 0));
        assert!(c.is_committed());
        assert!(!c.is_stashed());
        assert!(c.tid().is_some());
        let s = Outcome::Stashed(Ticket(9));
        assert!(s.is_stashed());
        assert_eq!(s.tid(), None);
        let a = Outcome::Aborted(TxError::Shutdown);
        assert!(!a.is_committed());
    }
}
