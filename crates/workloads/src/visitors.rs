//! The VISITORS unique-audience benchmark.
//!
//! An analytics service tracks, per page, the *set of distinct visitors*
//! (audience measurement) next to a raw view counter. Each *visit*
//! transaction inserts the visitor's id into the page's audience set
//! (`SetUnion` — idempotent, so repeat visits are free) and increments the
//! page's view counter (`Add`). Each *report* transaction reads a page's
//! audience size and view count.
//!
//! Pages are chosen from a Zipfian distribution, so the audience sets and
//! view counters of viral pages are heavily contended — and both update
//! operations commute, letting Doppel split the same record for `SetUnion`
//! in one phase. This workload exists to exercise the `SetUnion` splittable
//! operation end-to-end through the shared benchmark driver.

use crate::driver::{GeneratedTxn, TxnGenerator, Workload};
use crate::zipf::ZipfSampler;
use doppel_common::{Engine, IntSet, Key, Procedure, Table, Tx, TxError, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Key of a page's distinct-visitor set.
pub fn audience_key(page: u64) -> Key {
    Key::new(Table::Audience, page, 0)
}

/// Key of a page's raw view counter.
pub fn views_key(page: u64) -> Key {
    Key::new(Table::PageViews, page, 0)
}

/// Write transaction: a visitor views a page.
pub struct Visit {
    /// The visiting user.
    pub visitor: u64,
    /// The visited page.
    pub page: u64,
}

impl Procedure for Visit {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        // Distinct-audience set (contended for viral pages, commutative and
        // idempotent).
        tx.set_insert(audience_key(self.page), self.visitor as i64)?;
        // Raw view counter.
        tx.add(views_key(self.page), 1)
    }

    fn name(&self) -> &'static str {
        "VISITORS-visit"
    }
}

/// Read transaction: an audience report for one page.
pub struct AudienceReport {
    /// The reported page.
    pub page: u64,
}

impl Procedure for AudienceReport {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let _audience = tx.get(audience_key(self.page))?;
        let _views = tx.get_int(views_key(self.page))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "VISITORS-report"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// The VISITORS workload: a mix of visit and report transactions over
/// Zipf-popular pages and uniformly chosen visitors.
pub struct VisitorsWorkload {
    /// Number of distinct visitors.
    pub visitors: u64,
    /// Number of pages.
    pub pages: u64,
    /// Fraction of transactions that are visits, in `[0, 1]`.
    pub write_fraction: f64,
    /// Zipf parameter for page popularity.
    pub alpha: f64,
    sampler: Arc<ZipfSampler>,
}

impl VisitorsWorkload {
    /// Builds a VISITORS workload.
    pub fn new(visitors: u64, pages: u64, write_fraction: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be in [0,1]");
        VisitorsWorkload {
            visitors,
            pages,
            write_fraction,
            alpha,
            sampler: Arc::new(ZipfSampler::new(pages, alpha)),
        }
    }

    /// A viral-traffic preset: write-heavy, strongly skewed pages.
    pub fn viral(visitors: u64, pages: u64) -> Self {
        VisitorsWorkload::new(visitors, pages, 0.9, 1.4)
    }
}

impl Workload for VisitorsWorkload {
    fn name(&self) -> String {
        format!(
            "VISITORS(writes={:.0}%, alpha={:.2})",
            self.write_fraction * 100.0,
            self.alpha
        )
    }

    fn load(&self, engine: &dyn Engine) {
        for p in 0..self.pages {
            engine.load(audience_key(p), Value::Set(IntSet::new()));
            engine.load(views_key(p), Value::Int(0));
        }
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(VisitorsGenerator {
            visitors: self.visitors,
            write_fraction: self.write_fraction,
            sampler: Arc::clone(&self.sampler),
            rng: SmallRng::seed_from_u64(seed.wrapping_add(core as u64).wrapping_mul(0x9E3779B9)),
        })
    }
}

struct VisitorsGenerator {
    visitors: u64,
    write_fraction: f64,
    sampler: Arc<ZipfSampler>,
    rng: SmallRng,
}

impl TxnGenerator for VisitorsGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        let page = self.sampler.sample(&mut self.rng);
        if self.rng.gen::<f64>() < self.write_fraction {
            let visitor = self.rng.gen_range(0..self.visitors);
            GeneratedTxn { proc: Arc::new(Visit { visitor, page }), is_write: true }
        } else {
            GeneratedTxn { proc: Arc::new(AudienceReport { page }), is_write: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BenchOptions, Driver};
    use std::time::Duration;

    #[test]
    fn visit_updates_audience_and_views() {
        let engine = doppel_occ::OccEngine::new(1, 64);
        let w = VisitorsWorkload::new(16, 16, 1.0, 0.0);
        w.load(&engine);
        let mut h = engine.handle(0);
        for visitor in [3, 5, 3] {
            assert!(h.execute(Arc::new(Visit { visitor, page: 7 })).is_committed());
        }
        let audience = engine.global_get(audience_key(7)).unwrap();
        assert_eq!(audience.as_set().unwrap().len(), 2, "repeat visits dedupe");
        assert_eq!(engine.global_get(views_key(7)), Some(Value::Int(3)));
    }

    #[test]
    fn full_run_views_match_committed_writes() {
        let engine = doppel_occ::OccEngine::new(2, 128);
        let w = VisitorsWorkload::new(64, 32, 1.0, 1.4);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(80)));
        let mut views = 0i64;
        for p in 0..32 {
            views += engine.global_get(views_key(p)).unwrap().as_int().unwrap();
            let audience = engine.global_get(audience_key(p)).unwrap();
            assert!(audience.as_set().unwrap().len() <= 64, "audience bounded by visitors");
        }
        assert_eq!(views as u64, result.committed);
    }

    #[test]
    fn doppel_runs_visitors_under_contention_to_completion() {
        // Acceptance: the SetUnion-based workload runs through the shared
        // driver on Doppel with aggressive splitting; the view counters must
        // survive splitting + reconciliation exactly, and every audience
        // member must be a real visitor id.
        let cfg = doppel_common::DoppelConfig {
            workers: 2,
            phase_len: Duration::from_millis(4),
            split_min_conflicts: 2,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let engine = doppel_db::DoppelDb::start(cfg);
        let w = VisitorsWorkload::new(32, 8, 1.0, 1.8);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(200)));
        let mut views = 0i64;
        for p in 0..8 {
            views += engine.global_get(views_key(p)).unwrap().as_int().unwrap();
            let audience = engine.global_get(audience_key(p)).unwrap();
            assert!(audience.as_set().unwrap().iter().all(|v| (0..32).contains(&v)));
        }
        assert_eq!(views as u64, result.committed);
    }

    #[test]
    fn write_fraction_is_respected() {
        let w = VisitorsWorkload::new(100, 100, 0.75, 0.0);
        let mut gen = w.generator(0, 42);
        let n = 10_000;
        let writes = (0..n).filter(|_| gen.next_txn().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn name_and_presets() {
        assert!(VisitorsWorkload::viral(10, 10).name().contains("90%"));
        assert_eq!(VisitorsWorkload::viral(10, 10).alpha, 1.4);
    }

    #[test]
    #[should_panic(expected = "write_fraction")]
    fn invalid_write_fraction_panics() {
        let _ = VisitorsWorkload::new(10, 10, -0.1, 1.0);
    }
}
