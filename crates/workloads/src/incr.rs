//! The INCR1 and INCRZ microbenchmarks (§8.2–§8.4).
//!
//! * **INCR1**: "There are 1M 16-byte keys, and each transaction increments
//!   the value of a single key. There is a single popular key and we vary the
//!   percentage of transactions which increment that key; each other
//!   transaction randomly chooses from the not-popular keys."
//! * **INCRZ**: "There are 1M 16-byte keys. Each transaction increments the
//!   value of one key, chosen with a Zipfian distribution of popularity."
//!
//! The INCR1 workload can also rotate the identity of the hot key every few
//! seconds, which is how Figure 10 ("Changing Workloads") is produced.

use crate::driver::{GeneratedTxn, TxnGenerator, Workload};
use crate::zipf::ZipfSampler;
use doppel_common::{Args, Engine, Key, Procedure, ProcId, ProcRegistry, Tx, TxError, Value};
use doppel_service::procs::kv_registry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A single-key increment transaction (the closure-style form; the INCR
/// workloads themselves invoke the registered `kv.add` procedure so the
/// microbenchmark family exercises the stored-procedure path end to end).
pub struct IncrTxn {
    /// The key to increment.
    pub key: Key,
    /// The amount to add (the paper always adds 1).
    pub amount: i64,
}

impl Procedure for IncrTxn {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        tx.add(self.key, self.amount)
    }

    fn name(&self) -> &'static str {
        "INCR"
    }
}

/// INCR1: one hot key receiving a configurable fraction of the increments.
pub struct Incr1Workload {
    /// Total number of keys (1M in the paper).
    pub keys: u64,
    /// Fraction of transactions hitting the hot key, in `[0, 1]`.
    pub hot_fraction: f64,
    /// How often the identity of the hot key changes (`None` = never); used
    /// by the Figure 10 experiment, where it changes every 5 seconds.
    pub hot_key_rotation: Option<Duration>,
    registry: Arc<ProcRegistry>,
    kv_add: ProcId,
}

impl Incr1Workload {
    /// The standard INCR1 workload with `keys` keys and the given hot-key
    /// write fraction.
    pub fn new(keys: u64, hot_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction), "hot_fraction must be in [0,1]");
        let registry = kv_registry();
        let kv_add = registry.lookup("kv.add").expect("kv pack registers kv.add");
        Incr1Workload { keys, hot_fraction, hot_key_rotation: None, registry, kv_add }
    }

    /// Enables hot-key rotation every `period` (Figure 10).
    pub fn with_rotation(mut self, period: Duration) -> Self {
        self.hot_key_rotation = Some(period);
        self
    }

    /// The hot key in effect for rotation epoch `epoch`.
    pub fn hot_key_for_epoch(&self, epoch: u64) -> Key {
        // Spread rotated hot keys far apart so they never collide with the
        // uniform traffic pattern of previous epochs' cold keys.
        Key::raw(epoch * 7_919 % self.keys)
    }
}

impl Workload for Incr1Workload {
    fn name(&self) -> String {
        match self.hot_key_rotation {
            Some(period) => format!(
                "INCR1(hot={:.0}%, rotate={}s)",
                self.hot_fraction * 100.0,
                period.as_secs_f64()
            ),
            None => format!("INCR1(hot={:.0}%)", self.hot_fraction * 100.0),
        }
    }

    fn load(&self, engine: &dyn Engine) {
        for k in 0..self.keys {
            engine.load(Key::raw(k), Value::Int(0));
        }
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(Incr1Generator {
            keys: self.keys,
            hot_fraction: self.hot_fraction,
            rotation: self.hot_key_rotation,
            started: Instant::now(),
            workload_hot_key: self.hot_key_for_epoch(0),
            rng: SmallRng::seed_from_u64(seed.wrapping_add(core as u64)),
            rotation_base: self.keys,
            registry: Arc::clone(&self.registry),
            kv_add: self.kv_add,
        })
    }

    fn proc_registry(&self) -> Option<Arc<ProcRegistry>> {
        Some(Arc::clone(&self.registry))
    }
}

struct Incr1Generator {
    keys: u64,
    hot_fraction: f64,
    rotation: Option<Duration>,
    started: Instant,
    workload_hot_key: Key,
    rng: SmallRng,
    rotation_base: u64,
    registry: Arc<ProcRegistry>,
    kv_add: ProcId,
}

impl Incr1Generator {
    fn current_hot_key(&self) -> Key {
        match self.rotation {
            None => self.workload_hot_key,
            Some(period) => {
                let epoch = (self.started.elapsed().as_nanos() / period.as_nanos()) as u64;
                Key::raw(epoch * 7_919 % self.rotation_base)
            }
        }
    }
}

impl TxnGenerator for Incr1Generator {
    fn next_txn(&mut self) -> GeneratedTxn {
        let key = if self.rng.gen::<f64>() < self.hot_fraction {
            self.current_hot_key()
        } else {
            // A uniformly chosen non-hot key.
            let hot = self.current_hot_key();
            loop {
                let k = Key::raw(self.rng.gen_range(0..self.keys));
                if k != hot {
                    break k;
                }
            }
        };
        GeneratedTxn {
            proc: self.registry.call(self.kv_add, Args::new().key(key).int(1)),
            is_write: true,
        }
    }
}

/// INCRZ: increments with Zipfian key popularity.
pub struct IncrZWorkload {
    /// Total number of keys (1M in the paper).
    pub keys: u64,
    /// Zipf skew parameter α.
    pub alpha: f64,
    sampler: Arc<ZipfSampler>,
    registry: Arc<ProcRegistry>,
    kv_add: ProcId,
}

impl IncrZWorkload {
    /// Builds the INCRZ workload over `keys` keys with skew `alpha`.
    pub fn new(keys: u64, alpha: f64) -> Self {
        let registry = kv_registry();
        let kv_add = registry.lookup("kv.add").expect("kv pack registers kv.add");
        IncrZWorkload { keys, alpha, sampler: Arc::new(ZipfSampler::new(keys, alpha)), registry, kv_add }
    }

    /// The shared Zipf sampler (exposed so Table 1 / Table 2 experiments can
    /// query exact probabilities).
    pub fn sampler(&self) -> &Arc<ZipfSampler> {
        &self.sampler
    }
}

impl Workload for IncrZWorkload {
    fn name(&self) -> String {
        format!("INCRZ(alpha={:.2})", self.alpha)
    }

    fn load(&self, engine: &dyn Engine) {
        for k in 0..self.keys {
            engine.load(Key::raw(k), Value::Int(0));
        }
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(IncrZGenerator {
            sampler: Arc::clone(&self.sampler),
            rng: SmallRng::seed_from_u64(seed.wrapping_add(core as u64)),
            registry: Arc::clone(&self.registry),
            kv_add: self.kv_add,
        })
    }

    fn proc_registry(&self) -> Option<Arc<ProcRegistry>> {
        Some(Arc::clone(&self.registry))
    }
}

struct IncrZGenerator {
    sampler: Arc<ZipfSampler>,
    rng: SmallRng,
    registry: Arc<ProcRegistry>,
    kv_add: ProcId,
}

impl TxnGenerator for IncrZGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        // Rank r maps directly to key r: the paper's keys are equally "real",
        // popularity is purely a property of the access distribution.
        let key = Key::raw(self.sampler.sample(&mut self.rng));
        GeneratedTxn {
            proc: self.registry.call(self.kv_add, Args::new().key(key).int(1)),
            is_write: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BenchOptions, Driver};

    #[test]
    fn incr1_hot_fraction_statistics_via_engine() {
        // Run the generator against a real engine and verify the hot key got
        // roughly its configured share of increments.
        let keys = 256u64;
        let w = Incr1Workload::new(keys, 0.3);
        let engine = doppel_occ::OccEngine::new(1, 64);
        w.load(&engine);
        let mut gen = w.generator(0, 99);
        let mut handle = engine.handle(0);
        let n = 20_000;
        for _ in 0..n {
            let txn = gen.next_txn();
            assert!(handle.execute(txn.proc).is_committed());
        }
        let hot = engine
            .global_get(w.hot_key_for_epoch(0))
            .unwrap()
            .as_int()
            .unwrap();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "hot fraction was {frac}");
        // Every increment landed somewhere.
        let mut total = 0;
        for k in 0..keys {
            total += engine.global_get(Key::raw(k)).unwrap().as_int().unwrap();
        }
        assert_eq!(total, n as i64);
    }

    #[test]
    fn incrz_skews_towards_low_ranks() {
        let keys = 512u64;
        let w = IncrZWorkload::new(keys, 1.4);
        let engine = doppel_occ::OccEngine::new(1, 64);
        w.load(&engine);
        let mut gen = w.generator(0, 3);
        let mut handle = engine.handle(0);
        let n = 20_000;
        for _ in 0..n {
            let txn = gen.next_txn();
            assert!(handle.execute(txn.proc).is_committed());
        }
        let top = engine.global_get(Key::raw(0)).unwrap().as_int().unwrap() as f64 / n as f64;
        let expected = w.sampler().probability(0);
        assert!((top - expected).abs() < 0.05, "rank 0 share {top}, expected {expected}");
    }

    #[test]
    fn incr1_full_driver_run_is_consistent() {
        let keys = 128u64;
        let w = Incr1Workload::new(keys, 1.0);
        let engine = doppel_occ::OccEngine::new(2, 64);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(80)));
        let hot = engine.global_get(w.hot_key_for_epoch(0)).unwrap().as_int().unwrap();
        assert_eq!(hot as u64, result.committed, "100% hot: every commit hits the hot key");
        // The increments ran as registered kv.add invocations, and the
        // per-procedure counters rode along in the result.
        let add = result.proc_stats.iter().find(|s| s.name == "kv.add").unwrap();
        assert_eq!(add.commits, result.committed);

        // A second run with the same workload (same registry instance)
        // reports only its own counts — the snapshot is a per-run delta.
        let engine2 = doppel_occ::OccEngine::new(2, 64);
        let result2 = Driver::run(&engine2, &w, &BenchOptions::new(2, Duration::from_millis(80)));
        let add2 = result2.proc_stats.iter().find(|s| s.name == "kv.add").unwrap();
        assert_eq!(add2.commits, result2.committed, "proc stats must not accumulate across runs");
    }

    #[test]
    fn rotation_changes_hot_key() {
        let w = Incr1Workload::new(1_000, 1.0).with_rotation(Duration::from_millis(10));
        let mut gen = w.generator(0, 1);
        // Force a couple of rotation epochs to elapse.
        let first = gen.next_txn();
        std::thread::sleep(Duration::from_millis(25));
        let later = gen.next_txn();
        // We cannot read the key out of the procedure directly, but the
        // workload-level epoch function must differ across epochs.
        assert_ne!(w.hot_key_for_epoch(0), w.hot_key_for_epoch(1));
        assert_ne!(w.hot_key_for_epoch(1), w.hot_key_for_epoch(2));
        let _ = (first, later);
    }

    #[test]
    fn names_are_descriptive() {
        assert!(Incr1Workload::new(10, 0.25).name().contains("25%"));
        assert!(IncrZWorkload::new(10, 1.4).name().contains("1.40"));
        assert!(Incr1Workload::new(10, 0.1)
            .with_rotation(Duration::from_secs(5))
            .name()
            .contains("rotate"));
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn invalid_hot_fraction_panics() {
        let _ = Incr1Workload::new(10, 1.5);
    }
}
